// Standard-cell characterization by numerical transient simulation — LORE's
// stand-in for the SPICE characterization loop of Fig. 3. Each grid point
// integrates the output-node ODE with the alpha-power-law device model, so
// characterizing a full library is genuinely expensive; that cost is what the
// ML-based characterizer ([9], E2) removes.
#pragma once

#include <cstddef>

#include "src/circuit/liberty.hpp"
#include "src/common/campaign.hpp"
#include "src/device/selfheat.hpp"
#include "src/device/transistor.hpp"
#include "src/obs/metrics.hpp"

namespace lore::circuit {

struct CharacterizerConfig {
  std::vector<double> slew_axis_ps = default_slew_axis_ps();
  std::vector<double> load_axis_ff = default_load_axis_ff();
  /// Transient integration timestep (ps). Smaller = more SPICE-like cost.
  double timestep_ps = 0.05;
  /// Toggle rate assumed when filling the library's SHE temperature tables;
  /// instances scale it by their own activity.
  double she_reference_toggle_ghz = 1.0;
};

class Characterizer {
 public:
  Characterizer(CharacterizerConfig cfg, device::SelfHeatingModel she_model)
      : cfg_(std::move(cfg)),
        she_(she_model),
        evaluations_(obs::MetricsRegistry::global().counter("characterize.evaluations")) {}

  const CharacterizerConfig& config() const { return cfg_; }

  /// Transient simulation of one switching event. Returns 50-50 delay and
  /// 10-90 output slew (ps).
  device::StageTiming simulate(const Cell& cell, bool rising_output, double in_slew_ps,
                               double load_ff, const device::OperatingPoint& op) const;

  /// Fill all timing arcs and the SHE table of one cell at the given corner.
  /// When `cancel` is given it is polled once per slew row, so a library
  /// campaign's per-trial deadline can interrupt a pathological grid sweep.
  void characterize_cell(Cell& cell, const device::OperatingPoint& op,
                         const lore::CancelToken* cancel = nullptr) const;

  /// Characterize every cell of the library and record the corner. Cells are
  /// independent grid sweeps, so they run across `threads` workers
  /// (0 = hardware_concurrency, 1 = the legacy serial path); the tables are
  /// bit-identical for every thread count.
  void characterize_library(CellLibrary& lib, const device::OperatingPoint& op,
                            unsigned threads = 0) const;

  /// Spec-driven library characterization on the resilient campaign runtime:
  /// one trial per cell (spec.trials is overridden to lib.size()), each trial
  /// producing the cell's flattened tables, with checkpoint/resume and
  /// per-cell deadlines. Cells whose trial completed are written back into
  /// `lib`; the rest keep their prior tables (see the returned report). The
  /// grids are deterministic functions of (cell, corner), so the resulting
  /// library is bit-identical to `characterize_library` above whenever the
  /// report is complete.
  lore::CampaignReport characterize_library(CellLibrary& lib,
                                            const device::OperatingPoint& op,
                                            const lore::CampaignSpec& spec) const;

  /// SHE temperature rise (K) of the cell at one grid condition and the
  /// reference toggle rate.
  double she_rise(const Cell& cell, double in_slew_ps, double load_ff,
                  const device::OperatingPoint& op) const;

  /// Total transient simulations performed so far (cost/speed metric). Reads
  /// the process-wide `characterize.evaluations` counter — the evaluation
  /// budget accounting of the Fig. 3 flows (she_flow, benches) consumes it as
  /// before/after deltas, and the observability exports see the same number.
  std::size_t evaluations() const { return evaluations_.value(); }
  void reset_evaluations() { evaluations_.reset(); }

 private:
  CharacterizerConfig cfg_;
  device::SelfHeatingModel she_;
  /// Resolved once; concurrent cell workers bump it lock-free. Counts are
  /// functional outputs (evaluation budgets), so this is not gated on
  /// obs::enabled().
  obs::Counter& evaluations_;
};

}  // namespace lore::circuit
