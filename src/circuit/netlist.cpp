#include "src/circuit/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace lore::circuit {

std::size_t Netlist::add_primary_input() {
  nets_.push_back(Net{});
  primary_inputs_.push_back(nets_.size() - 1);
  return nets_.size() - 1;
}

std::size_t Netlist::add_instance(std::size_t cell_id, std::vector<std::size_t> input_nets,
                                  std::string name) {
  assert(cell_id < lib_->size());
  const auto& cell = lib_->cell(cell_id);
  assert(input_nets.size() == cell.num_inputs());
  const std::size_t inst_id = instances_.size();

  Net out_net;
  out_net.driver_instance = static_cast<int>(inst_id);
  nets_.push_back(out_net);
  const std::size_t out_net_id = nets_.size() - 1;

  for (std::size_t pin = 0; pin < input_nets.size(); ++pin) {
    assert(input_nets[pin] < nets_.size());
    nets_[input_nets[pin]].sinks.emplace_back(inst_id, pin);
  }

  Instance inst;
  inst.name = name.empty() ? cell.name + "_i" + std::to_string(inst_id) : std::move(name);
  inst.cell_id = cell_id;
  inst.input_nets = std::move(input_nets);
  inst.output_net = out_net_id;
  instances_.push_back(std::move(inst));
  return inst_id;
}

void Netlist::mark_primary_output(std::size_t net) {
  assert(net < nets_.size());
  nets_[net].is_primary_output = true;
}

void Netlist::set_toggle_rate(std::size_t instance, double rate_ghz) {
  assert(instance < instances_.size() && rate_ghz >= 0.0);
  instances_[instance].toggle_rate_ghz = rate_ghz;
}

std::vector<std::size_t> Netlist::primary_outputs() const {
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < nets_.size(); ++n)
    if (nets_[n].is_primary_output) out.push_back(n);
  return out;
}

double Netlist::net_load_ff(std::size_t net) const {
  assert(net < nets_.size());
  double load = kWireCapBaseFf + kWireCapPerSinkFf * static_cast<double>(nets_[net].sinks.size());
  for (const auto& [inst, pin] : nets_[net].sinks)
    load += lib_->cell(instances_[inst].cell_id).input_cap_ff;
  return load;
}

std::vector<std::size_t> Netlist::topological_order() const {
  // Kahn's algorithm over combinational edges. DFFs are sources: their input
  // is a timing endpoint, not a combinational dependency, so a DFF has
  // indegree 0 and its output feeds consumers like a primary input does.
  auto is_seq = [&](std::size_t inst) {
    return lib_->cell(instances_[inst].cell_id).is_sequential();
  };
  std::vector<std::size_t> indegree(instances_.size(), 0);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (is_seq(i)) continue;
    for (auto net : instances_[i].input_nets)
      if (nets_[net].driver_instance >= 0) ++indegree[i];
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < instances_.size(); ++i)
    if (indegree[i] == 0) ready.push_back(i);

  std::vector<std::size_t> order;
  order.reserve(instances_.size());
  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    const std::size_t inst = ready[cursor++];
    order.push_back(inst);
    for (const auto& [sink, pin] : nets_[instances_[inst].output_net].sinks) {
      if (is_seq(sink)) continue;  // edge into a DFF D-pin ends the cone
      assert(indegree[sink] > 0);
      if (--indegree[sink] == 0) ready.push_back(sink);
    }
  }
  assert(order.size() == instances_.size() && "combinational cycle detected");
  return order;
}

std::size_t Netlist::distinct_cell_types() const {
  std::set<std::size_t> types;
  for (const auto& inst : instances_) types.insert(inst.cell_id);
  return types.size();
}

namespace {

/// Cell ids of all combinational (non-DFF) cells in the library.
std::vector<std::size_t> combinational_cells(const CellLibrary& lib) {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < lib.size(); ++i)
    if (!lib.cell(i).is_sequential()) ids.push_back(i);
  return ids;
}

std::vector<std::size_t> dff_cells(const CellLibrary& lib) {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < lib.size(); ++i)
    if (lib.cell(i).is_sequential()) ids.push_back(i);
  return ids;
}

}  // namespace

Netlist generate_random_logic(const CellLibrary& lib, const RandomLogicConfig& cfg) {
  assert(cfg.num_inputs >= 3 && cfg.num_gates > 0);
  lore::Rng rng(cfg.seed);
  Netlist nl(&lib);
  const auto comb = combinational_cells(lib);
  assert(!comb.empty());

  std::vector<std::size_t> candidate_nets;
  for (std::size_t i = 0; i < cfg.num_inputs; ++i)
    candidate_nets.push_back(nl.add_primary_input());

  for (std::size_t g = 0; g < cfg.num_gates; ++g) {
    const std::size_t cell_id = comb[rng.uniform_index(comb.size())];
    const std::size_t fanin = lib.cell(cell_id).num_inputs();
    std::vector<std::size_t> ins;
    const std::size_t window = std::min(cfg.max_fanin_window, candidate_nets.size());
    for (std::size_t p = 0; p < fanin; ++p) {
      const std::size_t pick =
          candidate_nets.size() - 1 - rng.uniform_index(window);
      ins.push_back(candidate_nets[pick]);
    }
    const auto inst = nl.add_instance(cell_id, std::move(ins));
    candidate_nets.push_back(nl.instance(inst).output_net);
    nl.set_toggle_rate(inst, rng.uniform(0.05, 1.0));
  }
  // Any net without sinks becomes a primary output.
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    if (nl.net(n).sinks.empty()) nl.mark_primary_output(n);
  return nl;
}

Netlist generate_core_like(const CellLibrary& lib, const CoreLikeConfig& cfg) {
  assert(cfg.pipeline_stages >= 1 && cfg.regs_per_stage >= 2);
  lore::Rng rng(cfg.seed);
  Netlist nl(&lib);
  const auto comb = combinational_cells(lib);
  const auto dffs = dff_cells(lib);
  assert(!comb.empty() && !dffs.empty());

  // Activity: lognormal around 20% of the clock, long tail of hot cells.
  const double log_mu = std::log(0.2 * cfg.clock_ghz);
  auto draw_activity = [&] {
    return std::min(cfg.clock_ghz, rng.lognormal(log_mu, cfg.activity_sigma));
  };

  // Stage 0 register rank driven by primary inputs.
  std::vector<std::size_t> rank_nets;
  for (std::size_t r = 0; r < cfg.regs_per_stage; ++r) {
    const auto pi = nl.add_primary_input();
    const auto ff = nl.add_instance(dffs[rng.uniform_index(dffs.size())], {pi});
    nl.set_toggle_rate(ff, draw_activity());
    rank_nets.push_back(nl.instance(ff).output_net);
  }

  for (std::size_t stage = 0; stage < cfg.pipeline_stages; ++stage) {
    // Combinational cloud reading from the current rank.
    std::vector<std::size_t> cloud_nets = rank_nets;
    for (std::size_t g = 0; g < cfg.gates_per_stage; ++g) {
      const std::size_t cell_id = comb[rng.uniform_index(comb.size())];
      const std::size_t fanin = lib.cell(cell_id).num_inputs();
      std::vector<std::size_t> ins;
      const std::size_t window = std::min<std::size_t>(40, cloud_nets.size());
      for (std::size_t p = 0; p < fanin; ++p)
        ins.push_back(cloud_nets[cloud_nets.size() - 1 - rng.uniform_index(window)]);
      const auto inst = nl.add_instance(cell_id, std::move(ins));
      nl.set_toggle_rate(inst, draw_activity());
      cloud_nets.push_back(nl.instance(inst).output_net);
    }
    // Next register rank samples cloud outputs.
    std::vector<std::size_t> next_rank;
    for (std::size_t r = 0; r < cfg.regs_per_stage; ++r) {
      const auto d_net = cloud_nets[cloud_nets.size() - 1 -
                                    rng.uniform_index(std::min<std::size_t>(
                                        cfg.gates_per_stage, cloud_nets.size()))];
      const auto ff = nl.add_instance(dffs[rng.uniform_index(dffs.size())], {d_net});
      nl.set_toggle_rate(ff, draw_activity());
      next_rank.push_back(nl.instance(ff).output_net);
    }
    rank_nets = std::move(next_rank);
  }
  for (auto n : rank_nets) nl.mark_primary_output(n);
  // Dangling combinational outputs also terminate at outputs.
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    if (nl.net(n).sinks.empty()) nl.mark_primary_output(n);
  return nl;
}

}  // namespace lore::circuit
