#include "src/arch/crossbar.hpp"

#include <gtest/gtest.h>

#include "src/ml/metrics.hpp"

namespace lore::arch {
namespace {

/// Mission DNN for crossbar deployment: 8-dim 3-class blobs.
struct Mission {
  ml::MlpClassifier classifier{ml::MlpConfig{.hidden = {16, 12}, .epochs = 150}};
  ml::Matrix inputs;
  std::vector<int> labels;

  Mission() {
    lore::Rng rng(910);
    std::vector<std::vector<double>> centers(3, std::vector<double>(8));
    for (auto& c : centers)
      for (auto& v : c) v = rng.uniform(-1.0, 1.0);
    std::vector<double> row(8);
    for (int i = 0; i < 240; ++i) {
      const int cls = i % 3;
      for (std::size_t c = 0; c < 8; ++c)
        row[c] = centers[static_cast<std::size_t>(cls)][c] + rng.normal(0.0, 0.15);
      inputs.push_row(row);
      labels.push_back(cls);
    }
    classifier.fit(inputs, labels);
  }
};

TEST(Crossbar, FaultFreeInferenceMatchesSourceNetwork) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network(), /*g_max=*/10.0);  // no clipping
  std::size_t agree = 0;
  for (std::size_t i = 0; i < m.inputs.rows(); ++i)
    agree += accel.classify(m.inputs.row(i)) == m.classifier.predict(m.inputs.row(i));
  EXPECT_EQ(agree, m.inputs.rows());
}

TEST(Crossbar, GeometryAndCellCount) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  EXPECT_EQ(accel.num_layers(), 3u);
  EXPECT_EQ(accel.layer_rows(0), 8u);
  EXPECT_EQ(accel.layer_cols(0), 16u);
  EXPECT_EQ(accel.num_cells(), 8u * 16u + 16u * 12u + 12u * 3u);
}

TEST(Crossbar, StuckCellOverridesWeight) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  CrossbarFault f{.layer = 0, .row = 2, .col = 3, .type = CrossbarFaultType::kStuckAtHigh};
  EXPECT_DOUBLE_EQ(accel.stuck_value(f), 2.0);
  f.type = CrossbarFaultType::kStuckAtLow;
  EXPECT_DOUBLE_EQ(accel.stuck_value(f), -2.0);
  // Faulty inference must differ from clean inference for at least some
  // inputs when the struck weight changes a lot.
  const double w = accel.cell_weight(f);
  if (std::abs(w - accel.stuck_value(f)) > 1.0) {
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < 50; ++i) {
      const auto clean = accel.infer(m.inputs.row(i));
      const auto faulty = accel.infer(m.inputs.row(i), &f);
      for (std::size_t o = 0; o < clean.size(); ++o)
        diffs += std::abs(clean[o] - faulty[o]) > 1e-12;
    }
    EXPECT_GT(diffs, 0u);
  }
}

TEST(Crossbar, CriticalityBoundsAndVariation) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  lore::Rng rng(911);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 60; ++i) {
    const auto fault = accel.random_fault(rng);
    const double c = fault_criticality(accel, fault, m.inputs);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  // Some faults are benign, some harmful — the [28] selective-protection
  // premise.
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.1);
}

TEST(Crossbar, FeatureDimAndContent) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  const auto activity = mean_line_activations(accel, m.classifier.network(), m.inputs);
  CrossbarFault f{.layer = 2, .row = 1, .col = 0, .type = CrossbarFaultType::kStuckAtHigh};
  const auto features = crossbar_fault_features(accel, f, activity);
  ASSERT_EQ(features.size(), kCrossbarFaultFeatureDim);
  EXPECT_DOUBLE_EQ(features[2], 1.0);  // stuck-high polarity
  EXPECT_DOUBLE_EQ(features[3], 1.0);  // last layer
  EXPECT_DOUBLE_EQ(features[6], 1.0);  // output-layer flag
  EXPECT_GE(features[7], 0.0);         // line activity
  EXPECT_NEAR(features[8], features[1] * features[7], 1e-12);
}

TEST(Crossbar, ActivationProfileMatchesNetworkLayers) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  const auto activity = mean_line_activations(accel, m.classifier.network(), m.inputs);
  ASSERT_EQ(activity.size(), accel.num_layers());
  for (std::size_t l = 0; l < activity.size(); ++l) {
    ASSERT_EQ(activity[l].size(), accel.layer_rows(l));
    for (double a : activity[l]) EXPECT_GE(a, 0.0);
  }
}

TEST(Crossbar, RandomFaultStaysInsideGeometry) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  lore::Rng rng(913);
  for (int i = 0; i < 300; ++i) {
    const auto f = accel.random_fault(rng);
    ASSERT_LT(f.layer, accel.num_layers());
    EXPECT_LT(f.row, accel.layer_rows(f.layer));
    EXPECT_LT(f.col, accel.layer_cols(f.layer));
  }
}

TEST(Crossbar, RandomFaultSequenceDeterministicUnderSeed) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  lore::Rng a(914), b(914);
  for (int i = 0; i < 100; ++i) {
    const auto fa = accel.random_fault(a);
    const auto fb = accel.random_fault(b);
    EXPECT_EQ(fa.layer, fb.layer);
    EXPECT_EQ(fa.row, fb.row);
    EXPECT_EQ(fa.col, fb.col);
    EXPECT_EQ(fa.type, fb.type);
  }
}

TEST(Crossbar, FaultMapsToSourceNetworkWeight) {
  // Fault mapping: the cell a fault strikes must carry the (clipped) weight
  // of the corresponding source-network connection.
  Mission m;
  CrossbarAccelerator accel(m.classifier.network(), /*g_max=*/2.0);
  lore::Rng rng(915);
  for (int i = 0; i < 100; ++i) {
    const auto f = accel.random_fault(rng);
    const double w = accel.cell_weight(f);
    EXPECT_GE(w, -2.0);
    EXPECT_LE(w, 2.0);
    // A stuck cell overrides toward the matching conductance rail.
    EXPECT_DOUBLE_EQ(std::abs(accel.stuck_value(f)), 2.0);
  }
}

TEST(Crossbar, FaultDatasetReproducibleUnderSeed) {
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  lore::Rng a(916), b(916);
  const auto da =
      crossbar_fault_dataset(accel, m.classifier.network(), m.inputs, 60, 0.02, a);
  const auto db =
      crossbar_fault_dataset(accel, m.classifier.network(), m.inputs, 60, 0.02, b);
  ASSERT_EQ(da.size(), db.size());
  EXPECT_EQ(da.labels, db.labels);
  for (std::size_t r = 0; r < da.size(); ++r) {
    const auto ra = da.x.row(r);
    const auto rb = db.x.row(r);
    for (std::size_t c = 0; c < ra.size(); ++c) EXPECT_EQ(ra[c], rb[c]);
  }
}

TEST(Crossbar, SmallNnPredictsCriticality) {
  // The [28] experiment: train a small NN to classify critical faults.
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  lore::Rng rng(912);
  const auto train =
      crossbar_fault_dataset(accel, m.classifier.network(), m.inputs, 350, 0.02, rng);
  const auto test =
      crossbar_fault_dataset(accel, m.classifier.network(), m.inputs, 150, 0.02, rng);

  ml::MlpClassifier predictor(ml::MlpConfig{.hidden = {12}, .epochs = 200});
  predictor.fit(train.x, train.labels);
  const double acc = ml::accuracy(test.labels, predictor.predict_batch(test.x));
  EXPECT_GT(acc, 0.85) << "criticality prediction accuracy " << acc;
}

}  // namespace
}  // namespace lore::arch
