#include "src/arch/symptom.hpp"

#include <gtest/gtest.h>

namespace lore::arch {
namespace {

/// Mission task: classify 16-dimensional "sensor frames" into 3 prototype
/// patterns. The dimensionality lets an input monitor estimate noise levels
/// from a single frame (the WarningNet setting).
struct Mission {
  static constexpr std::size_t kDim = 16;
  ml::MlpClassifier classifier{ml::MlpConfig{.hidden = {48, 48}, .epochs = 150}};
  ml::Matrix inputs;

  Mission() {
    lore::Rng rng(800);
    // Prototypes share a base pattern and differ in three components each, so
    // moderate input noise plausibly crosses a decision boundary (the
    // WarningNet failure regime).
    std::vector<double> base(kDim);
    for (auto& v : base) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
    std::vector<std::vector<double>> prototypes(3, base);
    for (std::size_t k = 0; k < 3; ++k)
      for (std::size_t c = 3 * k; c < 3 * k + 3; ++c) prototypes[k][c] = -base[c];
    std::vector<int> y;
    std::vector<double> row(kDim);
    for (int i = 0; i < 300; ++i) {
      const int cls = i % 3;
      for (std::size_t c = 0; c < kDim; ++c)
        row[c] = prototypes[static_cast<std::size_t>(cls)][c] + rng.normal(0.0, 0.3);
      inputs.push_row(row);
      y.push_back(cls);
    }
    classifier.fit(inputs, y);
  }
};

TEST(ActivationStatistics, FourPerLayer) {
  const std::vector<std::vector<double>> layers{{1.0, -1.0}, {2.0, 2.0, 2.0}};
  const auto stats = activation_statistics(layers);
  ASSERT_EQ(stats.size(), 8u);
  EXPECT_DOUBLE_EQ(stats[0], 0.0);  // mean of layer 0
  EXPECT_DOUBLE_EQ(stats[2], 1.0);  // maxabs of layer 0
  EXPECT_DOUBLE_EQ(stats[3], 2.0);  // margin of layer 0 (1 - (-1))
  EXPECT_DOUBLE_EQ(stats[4], 2.0);  // mean of layer 1
  EXPECT_DOUBLE_EQ(stats[5], 0.0);  // std of layer 1
  EXPECT_DOUBLE_EQ(stats[7], 0.0);  // margin of layer 1 (all equal)
}

TEST(ActivationAnomalyDetector, HighRecallSmallOverhead) {
  Mission mission;
  ActivationAnomalyDetector detector(AnomalyDetectorConfig{});
  detector.train(mission.classifier.network(), mission.inputs);
  const auto eval = detector.evaluate(mission.classifier.network(), mission.inputs, 300, 9);
  // [30] reports 99% recall / 97% precision; we require the same shape:
  // strong detection at small overhead.
  EXPECT_GT(eval.recall, 0.8) << "recall " << eval.recall;
  EXPECT_GT(eval.precision, 0.6) << "precision " << eval.precision;
  EXPECT_LT(eval.overhead, 1.0);
}

TEST(ActivationAnomalyDetector, CleanInferencesMostlyPass) {
  Mission mission;
  ActivationAnomalyDetector detector(AnomalyDetectorConfig{});
  detector.train(mission.classifier.network(), mission.inputs);
  std::size_t false_alarms = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto layers = mission.classifier.network().forward_layers(mission.inputs.row(i));
    false_alarms += detector.flags(layers);
  }
  EXPECT_LT(false_alarms, 30u);
}

TEST(InputPerturbationMonitor, RanksFailuresAboveCleanRuns) {
  Mission mission;
  InputPerturbationMonitor monitor(WarningNetConfig{});
  monitor.train(mission.classifier.network(), mission.inputs);
  const auto eval = monitor.evaluate(mission.classifier.network(), mission.inputs, 500, 10);
  // Failure base rates are low, so the warning is judged as a ranking: the
  // score must order failing inputs above benign ones.
  EXPECT_GT(eval.auc, 0.7) << "auc " << eval.auc;
  // WarningNet's selling point: the monitor is much smaller than the mission.
  EXPECT_GT(eval.speedup, 2.0);
}

TEST(InputPerturbationMonitor, ScoreGrowsWithNoiseLevel) {
  Mission mission;
  InputPerturbationMonitor monitor(WarningNetConfig{});
  monitor.train(mission.classifier.network(), mission.inputs);
  lore::Rng rng(11);
  std::vector<double> perturbed(Mission::kDim);
  double prev = -1.0;
  for (double noise : {0.2, 1.2, 2.6}) {
    double mean_score = 0.0;
    for (int s = 0; s < 80; ++s) {
      const auto row = mission.inputs.row(rng.uniform_index(mission.inputs.rows()));
      for (std::size_t c = 0; c < perturbed.size(); ++c)
        perturbed[c] = row[c] + rng.normal(0.0, noise);
      mean_score += monitor.warning_score(perturbed);
    }
    mean_score /= 80.0;
    EXPECT_GT(mean_score, prev) << "noise " << noise;
    prev = mean_score;
  }
}

TEST(InputPerturbationMonitor, CleanInputsScoreLow) {
  Mission mission;
  InputPerturbationMonitor monitor(WarningNetConfig{});
  monitor.train(mission.classifier.network(), mission.inputs);
  double mean_score = 0.0;
  for (std::size_t i = 0; i < 50; ++i) mean_score += monitor.warning_score(mission.inputs.row(i));
  mean_score /= 50.0;
  EXPECT_LT(mean_score, 0.45);
}

// The EWMA symptom machinery (re-exported from the obs health loop) flags
// injected spikes in simulated fleet telemetry and ignores stationary noise.
TEST(EwmaSymptom, FlagsInjectedTelemetrySpikes) {
  lore::Rng rng(31);
  std::vector<double> series(200);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 55.0 + rng.normal(0.0, 1.0);  // stable die temperature (°C)
  series[80] = 95.0;   // thermal runaway epochs
  series[150] = 110.0;
  const auto flagged = ewma_symptom_epochs(series, 0.3, 6.0, 5);
  EXPECT_EQ(flagged, (std::vector<std::size_t>{80, 150}));

  // The streaming detector behind the helper is the same class.
  EwmaSymptomDetector d(0.3, 6.0, 5);
  bool any = false;
  for (double x : series) any = d.update(x) || any;
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace lore::arch
