#include "src/arch/isa.hpp"

#include <gtest/gtest.h>

namespace lore::arch {
namespace {

TEST(Isa, FactoriesSetFields) {
  const auto ins = add(1, 2, 3);
  EXPECT_EQ(ins.op, Opcode::kAdd);
  EXPECT_EQ(ins.rd, 1);
  EXPECT_EQ(ins.rs1, 2);
  EXPECT_EQ(ins.rs2, 3);
  const auto load = ld(4, 5, -8);
  EXPECT_EQ(load.op, Opcode::kLd);
  EXPECT_EQ(load.imm, -8);
}

TEST(Isa, Classification) {
  EXPECT_TRUE(writes_register(Opcode::kAdd));
  EXPECT_TRUE(writes_register(Opcode::kLd));
  EXPECT_FALSE(writes_register(Opcode::kSt));
  EXPECT_FALSE(writes_register(Opcode::kBeq));
  EXPECT_TRUE(is_branch(Opcode::kJmp));
  EXPECT_TRUE(is_memory(Opcode::kSt));
  EXPECT_FALSE(is_memory(Opcode::kAdd));
}

TEST(Isa, SourceRegisters) {
  EXPECT_EQ(source_registers(add(1, 2, 3)), (std::vector<unsigned>{2, 3}));
  EXPECT_EQ(source_registers(li(1, 5)), (std::vector<unsigned>{}));
  EXPECT_EQ(source_registers(st(7, 2, 0)), (std::vector<unsigned>{2, 7}));
  EXPECT_EQ(source_registers(addi(1, 4, 2)), (std::vector<unsigned>{4}));
}

TEST(Isa, ToStringRoundTrips) {
  EXPECT_EQ(to_string(add(1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(to_string(li(5, -7)), "li r5, -7");
  EXPECT_EQ(to_string(ld(2, 3, 4)), "ld r2, 4(r3)");
  EXPECT_EQ(to_string(halt()), "halt");
}

TEST(Assembler, BasicProgram) {
  const auto prog = assemble("li r1, 10\naddi r2, r1, 5\nhalt\n");
  ASSERT_TRUE(prog.has_value());
  ASSERT_EQ(prog->size(), 3u);
  EXPECT_EQ((*prog)[0].op, Opcode::kLi);
  EXPECT_EQ((*prog)[1].imm, 5);
  EXPECT_EQ((*prog)[2].op, Opcode::kHalt);
}

TEST(Assembler, LabelsResolve) {
  const auto prog = assemble(
      "  li r1, 0\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  blt r1, r2, loop\n"
      "  halt\n");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ((*prog)[2].imm, 1);  // loop points at the addi
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto prog = assemble("; header comment\n\n  li r1, 1 ; trailing\n  halt\n");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->size(), 2u);
}

TEST(Assembler, MemorySyntax) {
  const auto prog = assemble("ld r1, 8(r2)\nst r3, -4(r5)\nhalt\n");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ((*prog)[0].rs1, 2);
  EXPECT_EQ((*prog)[0].imm, 8);
  EXPECT_EQ((*prog)[1].rs2, 3);
  EXPECT_EQ((*prog)[1].imm, -4);
}

TEST(Assembler, ErrorsReported) {
  std::string err;
  EXPECT_FALSE(assemble("frobnicate r1, r2\n", &err).has_value());
  EXPECT_NE(err.find("unknown opcode"), std::string::npos);
  EXPECT_FALSE(assemble("add r1, r2\n", &err).has_value());
  EXPECT_FALSE(assemble("li r99, 4\n", &err).has_value());
}

}  // namespace
}  // namespace lore::arch
