// End-to-end predict-and-prune fault-injection campaign (DESIGN.md §13):
// FaultSiteFeaturizer determinism, the online observe → train → prune loop
// on a real workload, audit=1.0 outcome identity with the full campaign at
// multiple thread counts, and the fallback rules.
#include <gtest/gtest.h>

#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/features.hpp"
#include "src/arch/workloads.hpp"
#include "src/ml/predictor.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

CampaignSpec plain_spec(std::size_t trials, unsigned threads) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 4242;
  spec.threads = threads;
  return spec;
}

ml::PredictorConfig quick_config() {
  ml::PredictorConfig cfg;
  cfg.model = ml::PredictorModel::kGbdt;
  cfg.min_train_samples = 48;
  cfg.gbdt.num_rounds = 10;
  return cfg;
}

TEST(FaultSiteFeaturizer, DeterministicAndNormalized) {
  const auto w = make_checksum(8, 3);
  const FaultInjector injector(w);
  const FaultSiteFeaturizer featurizer(w, injector.golden().cycles);
  Rng rng(5);
  for (const auto target :
       {FaultTarget::kRegister, FaultTarget::kMemory, FaultTarget::kInstruction}) {
    for (int i = 0; i < 20; ++i) {
      const FaultSite site = injector.random_site(rng, target);
      std::vector<double> a(kFaultSiteFeatureDim), b(kFaultSiteFeatureDim);
      featurizer.featurize(site, a);
      featurizer.featurize(site, b);
      ASSERT_EQ(a, b);
      // One-hot target marker and normalized descriptor coordinates.
      ASSERT_EQ(a[static_cast<std::size_t>(target)], 1.0);
      ASSERT_GE(a[3], 0.0);
      ASSERT_LE(a[3], 1.0);
      ASSERT_LE(a[4], 1.0);
      ASSERT_LE(a[5], 1.0);
      if (target != FaultTarget::kRegister) {
        for (std::size_t f = 6; f < kFaultSiteFeatureDim; ++f) ASSERT_EQ(a[f], 0.0);
      }
    }
  }
}

TEST(PrunedFaultCampaign, UntrainedPredictorExecutesEverythingAndFeedsModel) {
  const auto w = make_checksum(8, 3);
  const FaultInjector injector(w);
  ml::Predictor predictor(quick_config());
  PruneCampaignOptions opt;
  opt.feedback_stride = 2;
  const auto result =
      injector.campaign_run_pruned(plain_spec(400, 2), FaultTarget::kRegister,
                                   predictor, opt);
  EXPECT_EQ(result.report.pruned, 0u);  // no snapshot yet: nothing prunes
  EXPECT_EQ(result.report.completed, 400u);
  EXPECT_GE(predictor.observed(), 200u);  // every 2nd trial fed back
}

TEST(PrunedFaultCampaign, FullAuditMatchesFullCampaignAtAnyThreadCount) {
  const auto w = make_checksum(8, 3);
  const FaultInjector injector(w);
  ml::Predictor predictor(quick_config());
  // Warm up + train so the prune stage actually scores.
  injector.campaign_run_pruned(plain_spec(400, 1), FaultTarget::kRegister, predictor,
                               PruneCampaignOptions{.feedback_stride = 1});
  predictor.train_now();

  const auto spec1 = plain_spec(600, 1);
  const auto full = injector.campaign_run(spec1, FaultTarget::kRegister);
  PruneCampaignOptions opt;
  opt.audit_fraction = 1.0;  // audit everything: outcomes must be identical
  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto pruned = injector.campaign_run_pruned(plain_spec(600, threads),
                                                     FaultTarget::kRegister,
                                                     predictor, opt);
    ASSERT_EQ(pruned.records, full.records) << "threads=" << threads;
    ASSERT_EQ(pruned.status, full.status);
    ASSERT_EQ(pruned.report.pruned, 0u);
  }
}

TEST(PrunedFaultCampaign, TrainedPredictorPrunesAndAccountsAudits) {
  const auto w = make_checksum(8, 3);
  const FaultInjector injector(w);
  ml::Predictor predictor(quick_config());
  injector.campaign_run_pruned(plain_spec(600, 1), FaultTarget::kRegister, predictor,
                               PruneCampaignOptions{.feedback_stride = 1});
  ASSERT_TRUE(predictor.train_now());

  PruneCampaignOptions opt;
  opt.audit_fraction = 0.1;
  opt.benign_threshold = 0.6;  // low bar so register faults (mostly benign) prune
  const auto spec = plain_spec(1000, 2);
  const auto result =
      injector.campaign_run_pruned(spec, FaultTarget::kRegister, predictor, opt);
  EXPECT_GT(result.report.pruned, 0u);
  EXPECT_EQ(result.report.completed + result.report.pruned, spec.trials);
  // Pruned slots carry no fabricated outcome.
  for (std::size_t i = 0; i < spec.trials; ++i) {
    if (result.status[i] == TrialStatus::kPruned) {
      ASSERT_EQ(result.records[i], FaultRecord{});
    }
  }
  // Executed trials are bit-identical to the full campaign at their index.
  const auto full = injector.campaign_run(spec, FaultTarget::kRegister);
  for (std::size_t i = 0; i < spec.trials; ++i) {
    if (result.status[i] == TrialStatus::kOk) {
      ASSERT_EQ(result.records[i], full.records[i]) << i;
    }
  }
}

TEST(PrunedFaultCampaign, NonPlainSpecFallsBackToFullExecution) {
  const auto w = make_checksum(8, 3);
  const FaultInjector injector(w);
  ml::Predictor predictor(quick_config());
  auto spec = plain_spec(100, 1);
  spec.max_trials_per_run = 100;  // non-plain: reference engine, never prunes
  const auto result =
      injector.campaign_run_pruned(spec, FaultTarget::kRegister, predictor);
  EXPECT_EQ(result.report.pruned, 0u);
  EXPECT_EQ(result.report.completed, 100u);
}

}  // namespace
