#include "src/arch/fault.hpp"

#include <gtest/gtest.h>

namespace lore::arch {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : workload_(make_dot_product(12, 42)), injector_(workload_) {}
  Workload workload_;
  FaultInjector injector_;
};

TEST_F(FaultTest, GoldenRunCaptured) {
  EXPECT_GT(injector_.golden().cycles, 0u);
  EXPECT_EQ(injector_.golden().output.size(), 1u);
}

TEST_F(FaultTest, InjectionIsDeterministic) {
  const FaultSite site{FaultTarget::kRegister, 3, 7, 20};
  const auto a = injector_.inject(site);
  const auto b = injector_.inject(site);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.active_instruction, b.active_instruction);
}

TEST_F(FaultTest, LateInjectionIsBenign) {
  // Injection after program completion cannot corrupt the output.
  FaultSite site{FaultTarget::kRegister, 3, 7, injector_.golden().cycles + 100};
  EXPECT_EQ(injector_.inject(site).outcome, Outcome::kBenign);
}

TEST_F(FaultTest, UnusedRegisterIsBenign) {
  // r15 is never used by the dot product kernel.
  FaultSite site{FaultTarget::kRegister, 15, 5, 10};
  EXPECT_EQ(injector_.inject(site).outcome, Outcome::kBenign);
}

TEST_F(FaultTest, AccumulatorFaultCausesSdc) {
  // r3 is the accumulator; flipping a high bit just before the store must
  // change the stored result.
  FaultSite site{FaultTarget::kRegister, 3, 30, injector_.golden().cycles - 3};
  EXPECT_EQ(injector_.inject(site).outcome, Outcome::kSdc);
}

TEST_F(FaultTest, OutputMemoryFaultAfterStoreIsSdc) {
  FaultSite site{FaultTarget::kMemory, workload_.output_base, 4,
                 injector_.golden().cycles - 1};
  EXPECT_EQ(injector_.inject(site).outcome, Outcome::kSdc);
}

TEST_F(FaultTest, CampaignProducesAllRecords) {
  lore::Rng rng(1);
  const auto records = injector_.campaign(200, FaultTarget::kRegister, rng.next_u64());
  EXPECT_EQ(records.size(), 200u);
  const auto mix = summarize(records);
  EXPECT_EQ(mix.total(), 200u);
  EXPECT_GT(mix.benign, 0u);             // most register bits are dead
  EXPECT_GT(mix.sdc + mix.crash + mix.hang, 0u);  // some must fail
}

TEST_F(FaultTest, AvfMatchesSummary) {
  lore::Rng rng(2);
  const auto records = injector_.campaign(150, FaultTarget::kRegister, rng.next_u64());
  const auto mix = summarize(records);
  EXPECT_DOUBLE_EQ(avf(records), mix.fraction_failure());
}

TEST_F(FaultTest, InstructionFaultsCanCrash) {
  lore::Rng rng(3);
  const auto records = injector_.campaign(300, FaultTarget::kInstruction, rng.next_u64());
  const auto mix = summarize(records);
  // Opcode/field corruption is much more disruptive than register noise.
  EXPECT_GT(mix.fraction_failure(), 0.05);
}

TEST_F(FaultTest, RandomSitesRespectBounds) {
  lore::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto site = injector_.random_site(rng, FaultTarget::kRegister);
    EXPECT_LT(site.index, kNumRegisters);
    EXPECT_LT(site.bit, 32u);
    EXPECT_LE(site.cycle, injector_.golden().cycles);
    const auto isite = injector_.random_site(rng, FaultTarget::kInstruction);
    EXPECT_LT(isite.index, workload_.program.size());
  }
}

TEST(OutcomeNames, AllDistinct) {
  EXPECT_EQ(outcome_name(Outcome::kBenign), "benign");
  EXPECT_EQ(outcome_name(Outcome::kSdc), "sdc");
  EXPECT_EQ(outcome_name(Outcome::kCrash), "crash");
  EXPECT_EQ(outcome_name(Outcome::kHang), "hang");
  EXPECT_EQ(outcome_name(Outcome::kDetected), "detected");
}

}  // namespace
}  // namespace lore::arch
