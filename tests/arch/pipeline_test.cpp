#include "src/arch/pipeline.hpp"

#include <gtest/gtest.h>

#include "src/arch/fault.hpp"

namespace lore::arch {
namespace {

TEST(PipelineCpu, SimpleArithmetic) {
  PipelineCpu cpu(64);
  cpu.load_program({li(1, 6), li(2, 7), mul(3, 1, 2), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kHalted);
  EXPECT_EQ(cpu.reg(3), 42u);
  EXPECT_EQ(cpu.instructions_retired(), 4u);
  // 4 instructions + 4 fill cycles on a 5-stage pipe.
  EXPECT_EQ(cpu.cycles(), 8u);
}

TEST(PipelineCpu, ForwardingBackToBackDependency) {
  PipelineCpu cpu(64);
  cpu.load_program({li(1, 5), add(2, 1, 1), add(3, 2, 2), sub(4, 3, 1), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kHalted);
  EXPECT_EQ(cpu.reg(2), 10u);
  EXPECT_EQ(cpu.reg(3), 20u);
  EXPECT_EQ(cpu.reg(4), 15u);
  EXPECT_EQ(cpu.stall_cycles(), 0u);  // pure ALU chains never stall
}

TEST(PipelineCpu, LoadUseHazardStallsOnce) {
  PipelineCpu cpu(64);
  cpu.set_mem(5, 99);
  cpu.load_program({li(1, 5), ld(2, 1, 0), add(3, 2, 2), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kHalted);
  EXPECT_EQ(cpu.reg(3), 198u);
  EXPECT_EQ(cpu.stall_cycles(), 1u);
}

TEST(PipelineCpu, BranchFlushesWrongPath) {
  // beq taken skips the li r5 on the wrong path.
  const auto prog = assemble(
      "  li r1, 1\n"
      "  beq r1, r1, target\n"
      "  li r5, 99\n"
      "  li r5, 98\n"
      "target:\n"
      "  halt\n");
  ASSERT_TRUE(prog.has_value());
  PipelineCpu cpu(64);
  cpu.load_program(*prog);
  EXPECT_EQ(cpu.run(100), RunState::kHalted);
  EXPECT_EQ(cpu.reg(5), 0u);  // wrong path squashed
  EXPECT_GT(cpu.flush_cycles(), 0u);
}

TEST(PipelineCpu, LoopsExecuteCorrectly) {
  const auto prog = assemble(
      "  li r1, 0\n"
      "  li r2, 10\n"
      "  li r3, 0\n"
      "loop:\n"
      "  add r3, r3, r1\n"
      "  addi r1, r1, 1\n"
      "  blt r1, r2, loop\n"
      "  halt\n");
  ASSERT_TRUE(prog.has_value());
  PipelineCpu cpu(64);
  cpu.load_program(*prog);
  EXPECT_EQ(cpu.run(1000), RunState::kHalted);
  EXPECT_EQ(cpu.reg(3), 45u);
  EXPECT_GT(cpu.cpi(), 1.0);  // branch flushes cost cycles
}

TEST(PipelineCpu, InvalidMemoryTraps) {
  PipelineCpu cpu(16);
  cpu.load_program({li(1, 9999), ld(2, 1, 0), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kTrapped);
}

TEST(PipelineCpu, FallingOffProgramTraps) {
  PipelineCpu cpu(16);
  cpu.load_program({nop(), nop()});
  EXPECT_EQ(cpu.run(100), RunState::kTrapped);
}

TEST(PipelineCpu, InfiniteLoopTimesOut) {
  PipelineCpu cpu(16);
  cpu.load_program({jmp(0)});
  EXPECT_EQ(cpu.run(300), RunState::kTimedOut);
}

class PipelineEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineEquivalence, MatchesFunctionalCpuOnStandardWorkloads) {
  const auto workloads = standard_workloads(2, 555);
  const auto& w = workloads[GetParam()];
  EXPECT_TRUE(pipeline_matches_golden(w)) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, PipelineEquivalence,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u),
                         [](const auto& info) {
                           return "workload" + std::to_string(info.param);
                         });

TEST(PipelineEquivalence, MatchesOnRandomPrograms) {
  for (std::uint64_t seed : {101u, 102u, 103u, 104u, 105u, 106u})
    EXPECT_TRUE(pipeline_matches_golden(make_random_program(100, seed))) << seed;
}

TEST(PipelineFaults, LateInjectionBenign) {
  const auto w = make_dot_product(10, 3);
  const PipelineFaultSite site{LatchField::kExMemAlu, 5, 1000000};
  EXPECT_EQ(pipeline_inject(w, site), Outcome::kBenign);
}

TEST(PipelineFaults, CampaignMixContainsFailures) {
  const auto w = make_checksum(10, 5);
  lore::Rng rng(7);
  const auto records = pipeline_campaign(w, 200, rng.next_u64());
  EXPECT_EQ(records.size(), 200u);
  const auto mix = summarize(records);
  EXPECT_GT(mix.benign, 0u);
  EXPECT_GT(mix.sdc + mix.crash + mix.hang, 0u);
  const double factor = architectural_corruption_factor(records);
  EXPECT_GT(factor, 0.0);
  EXPECT_LT(factor, 1.0);
}

TEST(PipelineFaults, DeterministicOutcome) {
  const auto w = make_fibonacci(12);
  const PipelineFaultSite site{LatchField::kIdExOperandA, 3, 9};
  EXPECT_EQ(pipeline_inject(w, site), pipeline_inject(w, site));
}

TEST(PipelineFaults, EveryLatchFieldClassifies) {
  // Flip-flop state advance: injection into each pipeline latch field must
  // yield a valid outcome class, at an early and a mid-execution cycle.
  const auto w = make_dot_product(8, 2);
  for (auto field : {LatchField::kPc, LatchField::kIfIdInstr, LatchField::kIdExOperandA,
                     LatchField::kIdExOperandB, LatchField::kExMemAlu,
                     LatchField::kMemWbValue}) {
    for (std::uint64_t cycle : {2ull, 25ull}) {
      const auto outcome = pipeline_inject(w, PipelineFaultSite{field, 4, cycle});
      EXPECT_FALSE(outcome_name(outcome).empty());
      EXPECT_NE(outcome_name(outcome), "?");
    }
  }
}

TEST(PipelineFaults, CampaignReproducibleFromSeed) {
  const auto w = make_checksum(8, 3);
  lore::Rng a(21), b(21);
  const auto first = pipeline_campaign(w, 120, a.next_u64());
  const auto second = pipeline_campaign(w, 120, b.next_u64());
  EXPECT_TRUE(first == second);
}

TEST(FaultCampaign, SerialVsParallelEquivalence) {
  // The FaultInjector campaign engine must produce bit-identical records
  // whether it runs on one worker or many (counter-based per-trial seeding).
  const auto w = make_checksum(10, 4);
  const FaultInjector injector(w);
  const auto serial = injector.campaign(300, FaultTarget::kRegister, 77, 1);
  for (unsigned threads : {2u, 8u})
    EXPECT_TRUE(serial == injector.campaign(300, FaultTarget::kRegister, 77, threads))
        << "threads=" << threads;
}

TEST(FaultCampaign, RecordsCarryReplayableSeeds) {
  const auto w = make_dot_product(8, 6);
  const FaultInjector injector(w);
  const auto records = injector.campaign(50, FaultTarget::kInstruction, 13, 0);
  ASSERT_EQ(records.size(), 50u);
  for (const auto& rec : records)
    EXPECT_TRUE(injector.replay_trial(rec.trial_seed, FaultTarget::kInstruction) == rec);
}

}  // namespace
}  // namespace lore::arch
