#include <gtest/gtest.h>

#include "src/arch/fault.hpp"
#include "src/arch/replicate.hpp"

namespace lore::arch {
namespace {

TEST(RandomProgram, AlwaysTerminatesCleanly) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const auto w = make_random_program(120, seed);
    Cpu cpu(w.memory_words);
    cpu.load_program(w.program);
    for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
    EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted) << "seed " << seed;
  }
}

TEST(RandomProgram, RequestedSizeRespected) {
  const auto w = make_random_program(150, 11);
  EXPECT_LE(w.program.size(), 150u);
  EXPECT_GE(w.program.size(), 140u);
}

TEST(RandomProgram, DeterministicPerSeed) {
  const auto a = make_random_program(100, 21);
  const auto b = make_random_program(100, 21);
  ASSERT_EQ(a.program.size(), b.program.size());
  for (std::size_t i = 0; i < a.program.size(); ++i) {
    EXPECT_EQ(a.program[i].op, b.program[i].op);
    EXPECT_EQ(a.program[i].imm, b.program[i].imm);
  }
}

TEST(RandomProgram, InjectableAndClassifiable) {
  const auto w = make_random_program(100, 31);
  FaultInjector injector(w);
  lore::Rng rng(32);
  const auto records = injector.campaign(150, FaultTarget::kRegister, rng.next_u64());
  const auto mix = summarize(records);
  EXPECT_EQ(mix.total(), 150u);
  // Random programs have dense dataflow into stores: some failures expected.
  EXPECT_GT(mix.sdc + mix.crash + mix.hang, 0u);
}

TEST(ProtectTopK, SelectsHighestScores) {
  const auto w = make_random_program(60, 41);
  std::vector<double> scores(w.program.size(), 0.0);
  scores[3] = 3.0;
  scores[7] = 2.0;
  scores[11] = 1.0;
  const auto mask = protect_top_k(w.program, scores, 2);
  EXPECT_TRUE(mask[3]);
  EXPECT_TRUE(mask[7]);
  EXPECT_FALSE(mask[11]);
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 2);
}

TEST(ProtectTopK, KLargerThanProgramProtectsAll) {
  const auto w = make_random_program(40, 43);
  std::vector<double> scores(w.program.size(), 1.0);
  const auto mask = protect_top_k(w.program, scores, 1000);
  EXPECT_EQ(static_cast<std::size_t>(std::count(mask.begin(), mask.end(), true)),
            w.program.size());
}

}  // namespace
}  // namespace lore::arch
