#include "src/arch/cpu.hpp"

#include <gtest/gtest.h>

#include "src/arch/workloads.hpp"
#include "src/common/rng.hpp"

namespace lore::arch {
namespace {

TEST(Cpu, ArithmeticExecution) {
  Cpu cpu(64);
  cpu.load_program({li(1, 6), li(2, 7), mul(3, 1, 2), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kHalted);
  EXPECT_EQ(cpu.reg(3), 42u);
  EXPECT_EQ(cpu.cycles(), 4u);
}

TEST(Cpu, MemoryLoadStore) {
  Cpu cpu(64);
  cpu.set_mem(10, 123);
  cpu.load_program({li(1, 10), ld(2, 1, 0), addi(2, 2, 1), st(2, 1, 5), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kHalted);
  EXPECT_EQ(cpu.mem(15), 124u);
}

TEST(Cpu, BranchLoop) {
  // Sum 1..5 via blt loop.
  Cpu cpu(64);
  const auto prog = assemble(
      "  li r1, 1\n"
      "  li r2, 6\n"
      "  li r3, 0\n"
      "loop:\n"
      "  add r3, r3, r1\n"
      "  addi r1, r1, 1\n"
      "  blt r1, r2, loop\n"
      "  halt\n");
  ASSERT_TRUE(prog.has_value());
  cpu.load_program(*prog);
  EXPECT_EQ(cpu.run(1000), RunState::kHalted);
  EXPECT_EQ(cpu.reg(3), 15u);
}

TEST(Cpu, InvalidMemoryTraps) {
  Cpu cpu(16);
  cpu.load_program({li(1, 9999), ld(2, 1, 0), halt()});
  EXPECT_EQ(cpu.run(100), RunState::kTrapped);
}

TEST(Cpu, FallingOffProgramTraps) {
  Cpu cpu(16);
  cpu.load_program({nop(), nop()});
  EXPECT_EQ(cpu.run(100), RunState::kTrapped);
}

TEST(Cpu, InfiniteLoopTimesOut) {
  Cpu cpu(16);
  cpu.load_program({jmp(0)});
  EXPECT_EQ(cpu.run(500), RunState::kTimedOut);
  EXPECT_GE(cpu.cycles(), 500u);
}

TEST(Cpu, ResetRestoresCleanState) {
  Cpu cpu(16);
  cpu.load_program({li(1, 42), halt()});
  cpu.run(10);
  EXPECT_EQ(cpu.reg(1), 42u);
  cpu.reset();
  EXPECT_EQ(cpu.reg(1), 0u);
  EXPECT_EQ(cpu.cycles(), 0u);
  EXPECT_EQ(cpu.state(), RunState::kRunning);
}

TEST(Cpu, UsageCountersTrackAccesses) {
  Cpu cpu(16);
  cpu.load_program({li(1, 2), add(2, 1, 1), halt()});
  cpu.run(10);
  EXPECT_EQ(cpu.register_writes()[1], 1u);
  EXPECT_EQ(cpu.register_reads()[1], 2u);
  EXPECT_EQ(cpu.register_writes()[2], 1u);
  EXPECT_EQ(cpu.instruction_counts()[0], 1u);
}

TEST(Cpu, FlipRegisterBitChangesValue) {
  Cpu cpu(16);
  cpu.set_reg(3, 0b100);
  cpu.flip_register_bit(3, 2);
  EXPECT_EQ(cpu.reg(3), 0u);
  cpu.flip_register_bit(3, 31);
  EXPECT_EQ(cpu.reg(3), 0x80000000u);
}

TEST(Workloads, GoldenResultsMatchHostComputation) {
  // Dot product of known vectors computed both on host and on the CPU.
  const auto w = make_dot_product(16, 99);
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  std::uint64_t expected = 0;
  std::vector<std::uint32_t> a(16), b(16);
  for (const auto& [addr, value] : w.memory_init) {
    cpu.set_mem(addr, value);
    if (addr < 16) a[addr] = value;
    else b[addr - 16] = value;
  }
  for (int i = 0; i < 16; ++i) expected += static_cast<std::uint64_t>(a[i]) * b[i];
  EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted);
  EXPECT_EQ(cpu.mem(w.output_base), static_cast<std::uint32_t>(expected));
}

TEST(Workloads, BubbleSortSorts) {
  const auto w = make_bubble_sort(12, 5);
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted);
  for (std::size_t i = 0; i + 1 < 12; ++i) EXPECT_LE(cpu.mem(i), cpu.mem(i + 1));
}

TEST(Workloads, FibonacciValue) {
  const auto w = make_fibonacci(10);
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted);
  EXPECT_EQ(cpu.mem(w.output_base), 55u);  // fib(10)
}

TEST(Workloads, FindMaxValue) {
  const auto w = make_find_max(20, 7);
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  std::uint32_t expected = 0;
  for (const auto& [addr, value] : w.memory_init) {
    cpu.set_mem(addr, value);
    expected = std::max(expected, value);
  }
  EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted);
  EXPECT_EQ(cpu.mem(w.output_base), expected);
}

TEST(Workloads, MatmulSmallCase) {
  const auto w = make_matmul(3, 11);
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  std::uint32_t a[9] = {}, b[9] = {};
  for (const auto& [addr, value] : w.memory_init) {
    cpu.set_mem(addr, value);
    if (addr < 9) a[addr] = value;
    else b[addr - 9] = value;
  }
  EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      std::uint32_t c = 0;
      for (int k = 0; k < 3; ++k) c += a[i * 3 + k] * b[k * 3 + j];
      EXPECT_EQ(cpu.mem(w.output_base + static_cast<std::size_t>(i * 3 + j)), c);
    }
}

TEST(Workloads, StandardSuiteAllHalt) {
  for (const auto& w : standard_workloads(2, 123)) {
    Cpu cpu(w.memory_words);
    cpu.load_program(w.program);
    for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
    EXPECT_EQ(cpu.run(w.max_cycles), RunState::kHalted) << w.name;
  }
}

}  // namespace
}  // namespace lore::arch
