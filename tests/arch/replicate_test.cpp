#include "src/arch/replicate.hpp"

#include <gtest/gtest.h>

#include "src/arch/features.hpp"
#include "src/ml/svm.hpp"

namespace lore::arch {
namespace {

class ReplicateTest : public ::testing::Test {
 protected:
  ReplicateTest() : workload_(make_checksum(10, 21)) {}
  Workload workload_;
};

TEST_F(ReplicateTest, SlowdownOrdering) {
  SelectiveReplication none(workload_, protect_none(workload_.program));
  SelectiveReplication heur(workload_, protect_heuristic(workload_.program));
  SelectiveReplication full(workload_, protect_all(workload_.program));
  EXPECT_DOUBLE_EQ(none.slowdown(), 1.0);
  EXPECT_GT(heur.slowdown(), 1.0);
  EXPECT_GT(full.slowdown(), heur.slowdown());
  EXPECT_DOUBLE_EQ(full.slowdown(), 3.0);  // every dynamic instr pays +2
}

TEST_F(ReplicateTest, NoProtectionDetectsNothing) {
  SelectiveReplication none(workload_, protect_none(workload_.program));
  lore::Rng rng(9);
  FaultInjector injector(workload_);
  for (int i = 0; i < 30; ++i)
    EXPECT_FALSE(none.detects(injector.random_site(rng, FaultTarget::kRegister)));
}

TEST_F(ReplicateTest, FullProtectionCatchesAccumulatorFault) {
  SelectiveReplication full(workload_, protect_all(workload_.program));
  FaultInjector injector(workload_);
  // Fault the checksum accumulator early: the next protected use must catch it.
  const FaultSite site{FaultTarget::kRegister, 3, 12, 15};
  ASSERT_EQ(injector.inject(site).outcome, Outcome::kSdc);
  EXPECT_TRUE(full.detects(site));
  EXPECT_EQ(full.protected_outcome(site, injector), Outcome::kDetected);
}

TEST_F(ReplicateTest, CoverageOrderingAcrossPolicies) {
  lore::Rng rng_a(10), rng_c(10);
  const auto eval_none = evaluate_policy(workload_, protect_none(workload_.program), 120, rng_a);
  const auto eval_full = evaluate_policy(workload_, protect_all(workload_.program), 120, rng_c);
  EXPECT_DOUBLE_EQ(eval_none.coverage, 0.0);
  EXPECT_GT(eval_full.coverage, 0.5);
  EXPECT_GT(eval_full.slowdown, eval_none.slowdown);
}

TEST_F(ReplicateTest, ModelDrivenPolicyProtectsSubset) {
  // Train an SVM on labels from an instruction campaign, as IPAS does.
  FaultInjector injector(workload_);
  lore::Rng rng(11);
  const auto campaign = injector.campaign(600, FaultTarget::kInstruction, rng.next_u64());
  const auto labels = instruction_vulnerability_labels(workload_.program, campaign, 0.3);

  ml::Matrix x;
  std::vector<int> y;
  for (std::size_t i = 0; i < workload_.program.size(); ++i) {
    x.push_row(instruction_features(workload_.program, i));
    y.push_back(labels[i]);
  }
  ml::LinearSvm svm;
  svm.fit(x, y);
  const auto policy = protect_by_model(workload_.program, svm);
  const std::size_t count = std::count(policy.begin(), policy.end(), true);
  EXPECT_GT(count, 0u);

  SelectiveReplication repl(workload_, policy);
  SelectiveReplication full(workload_, protect_all(workload_.program));
  EXPECT_LE(repl.slowdown(), full.slowdown());
}

TEST_F(ReplicateTest, ProtectedOutcomeFallsBackToBaseline) {
  SelectiveReplication none(workload_, protect_none(workload_.program));
  FaultInjector injector(workload_);
  const FaultSite site{FaultTarget::kRegister, 15, 3, 5};  // dead register
  EXPECT_EQ(none.protected_outcome(site, injector), Outcome::kBenign);
}

}  // namespace
}  // namespace lore::arch
