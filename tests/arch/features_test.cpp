#include "src/arch/features.hpp"

#include <gtest/gtest.h>

namespace lore::arch {
namespace {

TEST(RegisterFeatures, DimensionAndContent) {
  const auto w = make_dot_product(8, 1);
  const auto f_acc = register_features(w, 3);  // accumulator: heavily used
  const auto f_dead = register_features(w, 15);
  ASSERT_EQ(f_acc.size(), kRegisterFeatureDim);
  ASSERT_EQ(f_dead.size(), kRegisterFeatureDim);
  EXPECT_GT(f_acc[0], f_dead[0]);  // more reads per cycle
  EXPECT_GT(f_acc[3], f_dead[3]);  // larger fanout
}

TEST(InstructionFeatures, FlagsReflectOpcode) {
  Program p{li(1, 5), ld(2, 1, 0), st(2, 1, 1), beq(1, 2, 0), halt()};
  const auto f_ld = instruction_features(p, 1);
  ASSERT_EQ(f_ld.size(), kInstructionFeatureDim);
  EXPECT_DOUBLE_EQ(f_ld[2], 1.0);  // memory flag
  const auto f_beq = instruction_features(p, 3);
  EXPECT_DOUBLE_EQ(f_beq[3], 1.0);  // branch flag
  const auto f_li = instruction_features(p, 0);
  EXPECT_DOUBLE_EQ(f_li[1], 1.0);  // writes register
}

TEST(InstructionFeatures, FanoutCountsUsesUntilRedefinition) {
  Program p{li(1, 5), add(2, 1, 1), add(3, 1, 2), li(1, 0), add(4, 1, 1), halt()};
  const auto f = instruction_features(p, 0);
  // r1 defined at 0 is read by instructions 1 and 2, then redefined at 3.
  EXPECT_DOUBLE_EQ(f[6], 2.0);
}

TEST(ProgramGraph, NodesEdgesAndTypes) {
  Program p{li(1, 5), add(2, 1, 1), st(2, 0, 0), halt()};
  const auto g = build_program_graph(p);
  EXPECT_EQ(g.num_nodes(), 4u);
  // Data dependencies 0->1 (r1) and 1->2 (r2), control chain 0->1->2->3;
  // every edge exists in both directions with a distinct type.
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.num_edge_types(), 4);
  // Node 1: data-fwd from 0, data-back from 2, control-fwd from 0,
  // control-back from 2.
  EXPECT_EQ(g.in_neighbours(1).size(), 4u);
}

TEST(ProgramGraph, BranchTargetGetsControlEdge) {
  Program p{li(1, 0), beq(1, 1, 0), halt()};
  const auto g = build_program_graph(p);
  // Node 0 has a forward control in-edge from the branch at 1.
  bool found = false;
  for (const auto& [src, type] : g.in_neighbours(0))
    if (src == 1 && type == 2) found = true;
  EXPECT_TRUE(found);
}

TEST(VulnerabilityDataset, LabelsFollowThreshold) {
  const auto w = make_checksum(10, 3);
  FaultInjector injector(w);
  lore::Rng rng(5);
  const auto records = injector.campaign(400, FaultTarget::kRegister, rng.next_u64());
  const auto d = register_vulnerability_dataset(w, records, 0.2);
  EXPECT_GT(d.size(), 4u);
  EXPECT_EQ(d.features(), kRegisterFeatureDim);
  // Targets carry the raw failure rates aligned with labels.
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d.labels[i], d.targets[i] > 0.2 ? 1 : 0);
}

TEST(InstructionLabels, OutcomeArgmaxAndUnlabeled) {
  Program p{li(1, 5), halt()};
  std::vector<FaultRecord> records;
  FaultRecord r;
  r.site = {FaultTarget::kInstruction, 0, 3, 1};
  r.outcome = Outcome::kSdc;
  records.push_back(r);
  records.push_back(r);
  r.outcome = Outcome::kBenign;
  records.push_back(r);
  const auto labels = instruction_outcome_labels(p, records);
  EXPECT_EQ(labels[0], 1);   // SDC-dominant
  EXPECT_EQ(labels[1], -1);  // no observations
}

}  // namespace
}  // namespace lore::arch
