#include "src/arch/avf_report.hpp"

#include <gtest/gtest.h>

namespace lore::arch {
namespace {

class AvfReportTest : public ::testing::Test {
 protected:
  AvfReportTest() : workload_(make_dot_product(12, 9)), injector_(workload_) {}
  Workload workload_;
  FaultInjector injector_;
};

TEST_F(AvfReportTest, PerRegisterRowsSumToCampaign) {
  lore::Rng rng(1);
  const auto campaign = injector_.campaign(300, FaultTarget::kRegister, rng.next_u64());
  const auto rows = avf_by_register(campaign);
  std::size_t total = 0;
  for (const auto& r : rows) {
    total += r.injections;
    EXPECT_GE(r.avf, 0.0);
    EXPECT_LE(r.avf, 1.0);
    EXPECT_DOUBLE_EQ(r.avf, r.mix.fraction_failure());
  }
  EXPECT_EQ(total, campaign.size());
}

TEST_F(AvfReportTest, LiveRegistersMoreVulnerableThanDead) {
  lore::Rng rng(2);
  const auto campaign = injector_.campaign(1500, FaultTarget::kRegister, rng.next_u64());
  const auto rows = avf_by_register(campaign);
  double acc_avf = 0.0, dead_avf = 1.0;
  for (const auto& r : rows) {
    if (r.structure == "r3") acc_avf = r.avf;   // accumulator
    if (r.structure == "r15") dead_avf = r.avf; // unused
  }
  EXPECT_GT(acc_avf, dead_avf);
  EXPECT_DOUBLE_EQ(dead_avf, 0.0);
}

TEST_F(AvfReportTest, InstructionClassesPresent) {
  lore::Rng rng(3);
  const auto campaign = injector_.campaign(600, FaultTarget::kInstruction, rng.next_u64());
  const auto rows = avf_by_instruction_class(workload_.program, campaign);
  bool saw_alu = false, saw_mem = false, saw_branch = false;
  for (const auto& r : rows) {
    saw_alu |= r.structure == "alu";
    saw_mem |= r.structure == "memory";
    saw_branch |= r.structure == "branch";
  }
  EXPECT_TRUE(saw_alu);
  EXPECT_TRUE(saw_mem);
  EXPECT_TRUE(saw_branch);
}

TEST_F(AvfReportTest, BitRangesPartitionInjections) {
  lore::Rng rng(4);
  const auto campaign = injector_.campaign(400, FaultTarget::kRegister, rng.next_u64());
  const auto rows = avf_by_bit_range(campaign);
  ASSERT_EQ(rows.size(), 3u);
  std::size_t total = 0;
  for (const auto& r : rows) total += r.injections;
  EXPECT_EQ(total, campaign.size());
}

TEST_F(AvfReportTest, RenderContainsStructuresAndHeader) {
  lore::Rng rng(5);
  const auto campaign = injector_.campaign(120, FaultTarget::kRegister, rng.next_u64());
  const auto text = render_avf_report(avf_by_register(campaign));
  EXPECT_NE(text.find("structure"), std::string::npos);
  EXPECT_NE(text.find("avf"), std::string::npos);
  EXPECT_NE(text.find("r3"), std::string::npos);
}

}  // namespace
}  // namespace lore::arch
