// Unit tests of the RL governor's mechanics (state encoding, action
// application, freeze semantics) independent of full simulations.
#include "src/os/governor.hpp"

#include <gtest/gtest.h>

namespace lore::os {
namespace {

SystemStatus make_status(std::size_t cores, double util, double temp_k) {
  SystemStatus s;
  s.core_utilization.assign(cores, util);
  s.core_temperature_k.assign(cores, temp_k);
  return s;
}

TEST(RlDvfsGovernor, ActionsMoveVfWithinBounds) {
  Platform platform({make_big_core()});
  RlGovernorConfig cfg;
  cfg.learner.epsilon = 1.0;  // fully random: exercise every action
  cfg.learner.epsilon_min = 1.0;
  RlDvfsGovernor governor(platform.ladder().size(), cfg);
  for (int epoch = 0; epoch < 200; ++epoch) {
    governor.control(platform, make_status(1, 0.5, 340.0));
    EXPECT_LT(platform.core(0).vf_index, platform.ladder().size());
  }
}

TEST(RlDvfsGovernor, FrozenGovernorIsDeterministic) {
  Platform a({make_big_core()}), b({make_big_core()});
  RlGovernorConfig cfg;
  RlDvfsGovernor ga(a.ladder().size(), cfg), gb(b.ladder().size(), cfg);
  ga.freeze();
  gb.freeze();
  for (int epoch = 0; epoch < 50; ++epoch) {
    const auto status = make_status(1, 0.3 + 0.01 * epoch, 335.0 + epoch);
    ga.control(a, status);
    gb.control(b, status);
    EXPECT_EQ(a.core(0).vf_index, b.core(0).vf_index) << "epoch " << epoch;
  }
}

TEST(RlDvfsGovernor, LearnsToAvoidPenalizedAction) {
  // Synthetic environment: reward punishes high V-f via the energy term when
  // utilization is tiny. After training epochs the greedy action at a cool,
  // idle state should not be "raise".
  Platform platform({make_big_core()});
  RlGovernorConfig cfg;
  cfg.learner.epsilon = 0.5;
  RlDvfsGovernor governor(platform.ladder().size(), cfg);
  for (int epoch = 0; epoch < 3000; ++epoch) {
    // Utilization mirrors the V-f choice: high levels waste energy.
    const double util =
        0.9 * static_cast<double>(platform.core(0).vf_index + 1) /
        static_cast<double>(platform.ladder().size());
    governor.control(platform, make_status(1, util, 330.0));
  }
  governor.freeze();
  // From the lowest level at idle, the greedy policy should hold or lower.
  platform.set_vf(0, 0);
  governor.control(platform, make_status(1, 0.05, 325.0));
  EXPECT_LE(platform.core(0).vf_index, 1u);
}

TEST(RlDvfsGovernor, VfTransitionsRespectPlatformLimits) {
  // Fully random policy for many epochs: every transition must stay inside
  // the ladder and move at most one V-f step per control epoch.
  Platform platform({make_big_core(), make_little_core()});
  RlGovernorConfig cfg;
  cfg.learner.epsilon = 1.0;
  cfg.learner.epsilon_min = 1.0;
  RlDvfsGovernor governor(platform.ladder().size(), cfg);
  std::vector<std::size_t> prev(platform.num_cores());
  for (std::size_t c = 0; c < platform.num_cores(); ++c)
    prev[c] = platform.core(c).vf_index;
  for (int epoch = 0; epoch < 500; ++epoch) {
    governor.control(platform, make_status(platform.num_cores(), 0.6, 345.0));
    for (std::size_t c = 0; c < platform.num_cores(); ++c) {
      const std::size_t vf = platform.core(c).vf_index;
      ASSERT_LT(vf, platform.ladder().size()) << "epoch " << epoch;
      const std::size_t delta = vf > prev[c] ? vf - prev[c] : prev[c] - vf;
      EXPECT_LE(delta, 1u) << "core " << c << " epoch " << epoch;
      prev[c] = vf;
    }
  }
}

TEST(RlDvfsGovernor, HoldsAtLadderBoundaries) {
  // Pinned at the ends of the ladder, a raise (or lower) request must clamp
  // rather than step outside the platform's V-f range.
  Platform platform({make_big_core()});
  RlGovernorConfig cfg;
  cfg.learner.epsilon = 1.0;
  cfg.learner.epsilon_min = 1.0;
  RlDvfsGovernor governor(platform.ladder().size(), cfg);
  const std::size_t top = platform.ladder().size() - 1;
  for (int epoch = 0; epoch < 100; ++epoch) {
    platform.set_vf(0, top);
    governor.control(platform, make_status(1, 0.9, 350.0));
    EXPECT_LE(platform.core(0).vf_index, top);
    EXPECT_GE(platform.core(0).vf_index, top - 1);
    platform.set_vf(0, 0);
    governor.control(platform, make_status(1, 0.1, 325.0));
    EXPECT_LE(platform.core(0).vf_index, 1u);
  }
}

TEST(TrainRlGovernor, ProducesFrozenReadyGovernor) {
  Platform platform({make_big_core(), make_little_core()});
  const auto tasks = generate_taskset(TaskSetConfig{.num_tasks = 4,
                                                    .total_utilization = 0.6,
                                                    .seed = 3});
  const auto mapping = partition_worst_fit(tasks, {1.0, 0.45});
  SimConfig cfg{.duration_ms = 600.0, .seed = 9};
  auto governor = train_rl_governor(platform, tasks, mapping, cfg, 3);
  ASSERT_NE(governor, nullptr);
  EXPECT_EQ(governor->name(), "rl-dvfs");
  governor->freeze();
  SystemSimulator sim(platform, tasks, mapping, cfg);
  const auto r = sim.run(governor.get());
  EXPECT_GT(r.jobs_completed, 0u);
}

}  // namespace
}  // namespace lore::os
