#include "src/os/platform.hpp"

#include <gtest/gtest.h>

namespace lore::os {
namespace {

Platform two_core_platform() {
  return Platform({make_big_core(), make_little_core()});
}

TEST(Platform, ConstructionDefaults) {
  const auto p = two_core_platform();
  EXPECT_EQ(p.num_cores(), 2u);
  EXPECT_EQ(p.ladder().size(), 5u);
  EXPECT_DOUBLE_EQ(p.core(0).temperature_k, p.config().ambient_k);
  EXPECT_DOUBLE_EQ(p.max_freq_ghz(), 2.0);
}

TEST(Platform, PowerGrowsWithVfAndUtilization) {
  auto p = two_core_platform();
  p.set_vf(0, 0);
  const double low = p.core_power_w(0, 0.5);
  p.set_vf(0, 4);
  const double high = p.core_power_w(0, 0.5);
  EXPECT_GT(high, low);
  EXPECT_GT(p.core_power_w(0, 1.0), p.core_power_w(0, 0.1));
}

TEST(Platform, PowerStatesOrdered) {
  auto p = two_core_platform();
  p.set_vf(0, 2);
  const double active = p.core_power_w(0, 0.8);
  p.set_power_state(0, PowerState::kIdle);
  const double idle = p.core_power_w(0, 0.8);
  p.set_power_state(0, PowerState::kSleep);
  const double sleep = p.core_power_w(0, 0.8);
  p.set_power_state(0, PowerState::kOff);
  const double off = p.core_power_w(0, 0.8);
  EXPECT_GT(active, idle);
  EXPECT_GT(idle, sleep);
  EXPECT_GT(sleep, off);
  EXPECT_DOUBLE_EQ(off, 0.0);
}

TEST(Platform, ThermalHeatingAndCooling) {
  auto p = two_core_platform();
  p.set_vf(0, 4);
  for (int i = 0; i < 200; ++i) p.step(0.01, {1.0, 0.0});
  const double hot = p.core(0).temperature_k;
  EXPECT_GT(hot, p.config().ambient_k + 5.0);
  // Cooling back down when idle.
  for (int i = 0; i < 400; ++i) p.step(0.01, {0.0, 0.0});
  EXPECT_LT(p.core(0).temperature_k, hot);
  EXPECT_DOUBLE_EQ(p.core(0).peak_temperature_k, hot);
}

TEST(Platform, NeighbourCouplingWarmsIdleCore) {
  auto p = two_core_platform();
  p.set_vf(0, 4);
  for (int i = 0; i < 300; ++i) p.step(0.01, {1.0, 0.0});
  // Core 1 idles but sits next to the hot core 0.
  EXPECT_GT(p.core(1).temperature_k, p.config().ambient_k + 0.5);
}

TEST(Platform, CapacityReflectsTypeAndState) {
  auto p = two_core_platform();
  p.set_vf(0, 4);
  p.set_vf(1, 4);
  EXPECT_GT(p.capacity_gops(0), p.capacity_gops(1));  // big vs little
  p.set_power_state(0, PowerState::kSleep);
  EXPECT_DOUBLE_EQ(p.capacity_gops(0), 0.0);
}

TEST(Platform, EnergyAccumulatesOverSteps) {
  auto p = two_core_platform();
  const double e1 = p.step(0.01, {1.0, 1.0});
  EXPECT_GT(e1, 0.0);
  const double e2 = p.step(1.0, {1.0, 1.0});
  EXPECT_GT(e2, e1);
}

}  // namespace
}  // namespace lore::os
