#include "src/os/replica.hpp"

#include <gtest/gtest.h>

namespace lore::os {
namespace {

TEST(ReplicaManager, EstimateTracksObservations) {
  ReplicaManager mgr;
  mgr.observe(10, 100);
  EXPECT_NEAR(mgr.fault_probability(), 0.1, 1e-12);
  // Smoothing pulls slowly toward new evidence.
  mgr.observe(0, 100);
  EXPECT_LT(mgr.fault_probability(), 0.1);
  EXPECT_GT(mgr.fault_probability(), 0.0);
}

TEST(ReplicaManager, QuietEnvironmentWantsNoReplicas) {
  ReplicaManager mgr;
  for (int i = 0; i < 20; ++i) mgr.observe(0, 1000);
  EXPECT_EQ(mgr.recommended_replicas(), 1u);
}

TEST(ReplicaManager, HarshEnvironmentAddsReplicas) {
  ReplicaManager mgr;
  for (int i = 0; i < 20; ++i) mgr.observe(100, 1000);  // 10% fault rate
  EXPECT_GE(mgr.recommended_replicas(), 2u);
}

TEST(ReplicaManager, AdaptsWhenEnvironmentRecovers) {
  ReplicaManager mgr(ReplicaManagerConfig{.smoothing = 0.5});
  for (int i = 0; i < 10; ++i) mgr.observe(150, 1000);
  EXPECT_GE(mgr.recommended_replicas(), 2u);
  for (int i = 0; i < 20; ++i) mgr.observe(0, 1000);
  EXPECT_EQ(mgr.recommended_replicas(), 1u);
}

TEST(ReplicaManager, ExpectedCostTradesOverheadAndEscape) {
  ReplicaManager mgr;
  mgr.observe(200, 1000);  // p = 0.2
  // More replicas: more overhead, smaller escape probability.
  EXPECT_GT(mgr.expected_cost(1), mgr.expected_cost(2));
  const double c2 = mgr.expected_cost(2);
  const double c3 = mgr.expected_cost(3);
  // At p=0.2 with penalty 400: c2 = 1 + 400*0.04 = 17, c3 = 2 + 3.2.
  EXPECT_NEAR(c2, 17.0, 1e-9);
  EXPECT_NEAR(c3, 5.2, 1e-9);
}

TaskSet mc_taskset() {
  TaskSet tasks = generate_taskset(TaskSetConfig{.num_tasks = 6,
                                                 .total_utilization = 0.55,
                                                 .high_criticality_fraction = 0.4,
                                                 .seed = 29});
  // Guarantee at least one of each criticality.
  tasks[0].criticality = Criticality::kHigh;
  tasks[1].criticality = Criticality::kLow;
  return tasks;
}

TEST(MixedCriticality, HighTasksProtectedUnderOverruns) {
  const auto tasks = mc_taskset();
  const auto r = simulate_mixed_criticality(tasks, McSimConfig{.overrun_factor = 1.6});
  EXPECT_GT(r.hi_jobs, 0u);
  EXPECT_LT(static_cast<double>(r.hi_misses) / static_cast<double>(r.hi_jobs), 0.02);
  EXPECT_GT(r.mode_switches, 0u);
}

TEST(MixedCriticality, NoOverrunsMeansNoModeSwitches) {
  const auto tasks = mc_taskset();
  const auto r = simulate_mixed_criticality(tasks, McSimConfig{.overrun_factor = 0.95});
  EXPECT_EQ(r.mode_switches, 0u);
  EXPECT_GT(r.lo_qos(), 0.95);
}

TEST(MixedCriticality, QosDegradesWithOverrunSeverity) {
  const auto tasks = mc_taskset();
  const auto gentle = simulate_mixed_criticality(tasks, McSimConfig{.overrun_factor = 1.1});
  const auto harsh = simulate_mixed_criticality(tasks, McSimConfig{.overrun_factor = 2.2});
  EXPECT_LE(harsh.lo_qos(), gentle.lo_qos() + 0.02);
  EXPECT_GE(harsh.mode_switches, gentle.mode_switches);
}

}  // namespace
}  // namespace lore::os
