#include "src/os/sim.hpp"

#include <gtest/gtest.h>

#include "src/os/governor.hpp"

namespace lore::os {
namespace {

struct Fixture {
  Platform platform{{make_big_core(), make_big_core(), make_little_core(),
                     make_little_core()}};
  TaskSet tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 10, .total_utilization = 1.4, .seed = 3});
  std::vector<std::size_t> mapping =
      partition_worst_fit(tasks, {1.0, 1.0, 0.45, 0.45});
  SimConfig cfg{.duration_ms = 4000.0, .seed = 5};
};

TEST(SystemSimulator, TopSpeedMeetsDeadlines) {
  Fixture f;
  StaticGovernor top(f.platform.ladder().size() - 1);
  SystemSimulator sim(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r = sim.run(&top);
  EXPECT_GT(r.jobs_released, 100u);
  EXPECT_LT(r.deadline_miss_rate(), 0.02) << "misses " << r.deadline_misses;
  EXPECT_GT(r.energy_j, 0.0);
}

TEST(SystemSimulator, LowestSpeedMissesDeadlinesButSavesEnergy) {
  Fixture f;
  StaticGovernor top(f.platform.ladder().size() - 1);
  StaticGovernor bottom(0);
  SystemSimulator sim_top(f.platform, f.tasks, f.mapping, f.cfg);
  SystemSimulator sim_bottom(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r_top = sim_top.run(&top);
  const auto r_bottom = sim_bottom.run(&bottom);
  EXPECT_GT(r_bottom.deadline_miss_rate(), r_top.deadline_miss_rate());
  EXPECT_LT(r_bottom.energy_j, r_top.energy_j);
}

TEST(SystemSimulator, LowVfRaisesSoftErrors) {
  Fixture f;
  f.cfg.ser.lambda0_per_s = 2e-2;  // exaggerate so counts are significant
  StaticGovernor top(f.platform.ladder().size() - 1);
  StaticGovernor mid(1);
  SystemSimulator sim_top(f.platform, f.tasks, f.mapping, f.cfg);
  SystemSimulator sim_mid(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r_top = sim_top.run(&top);
  const auto r_mid = sim_mid.run(&mid);
  EXPECT_GT(r_mid.soft_errors, r_top.soft_errors);
}

TEST(SystemSimulator, ReplicationMasksFaults) {
  Fixture f;
  f.cfg.ser.lambda0_per_s = 8.0;  // harsh radiation environment
  TaskSet replicated = f.tasks;
  for (auto& t : replicated) t.replicas = 2;
  StaticGovernor top(f.platform.ladder().size() - 1);
  SystemSimulator plain(f.platform, f.tasks, f.mapping, f.cfg);
  SystemSimulator redundant(f.platform, replicated, f.mapping, f.cfg);
  const auto r_plain = plain.run(&top);
  const auto r_red = redundant.run(&top);
  EXPECT_GT(r_red.masked_faults, 0u);
  // Far fewer silent corruptions with duplicate executions.
  EXPECT_LT(r_red.sdc_failures, std::max<std::size_t>(1, r_plain.sdc_failures));
  EXPECT_GT(r_red.mwtf, r_plain.mwtf);
}

TEST(SystemSimulator, HotterRunsShortenMttf) {
  Fixture f;
  StaticGovernor top(f.platform.ladder().size() - 1);
  StaticGovernor low(1);
  SystemSimulator sim_hot(f.platform, f.tasks, f.mapping, f.cfg);
  SystemSimulator sim_cool(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r_hot = sim_hot.run(&top);
  const auto r_cool = sim_cool.run(&low);
  EXPECT_GT(r_hot.peak_temperature_k, r_cool.peak_temperature_k);
  EXPECT_LT(r_hot.mttf_years, r_cool.mttf_years);
}

TEST(OndemandGovernor, TracksUtilization) {
  Fixture f;
  OndemandGovernor ondemand;
  StaticGovernor top(f.platform.ladder().size() - 1);
  SystemSimulator sim_od(f.platform, f.tasks, f.mapping, f.cfg);
  SystemSimulator sim_top(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r_od = sim_od.run(&ondemand);
  const auto r_top = sim_top.run(&top);
  // Ondemand saves energy vs always-max while keeping misses moderate.
  EXPECT_LT(r_od.energy_j, r_top.energy_j);
  EXPECT_LT(r_od.deadline_miss_rate(), 0.35);
}

TEST(RlDvfsGovernor, TrainingImprovesOverUntrained) {
  Fixture f;
  f.cfg.duration_ms = 2500.0;
  RlGovernorConfig rl_cfg;
  auto trained = train_rl_governor(f.platform, f.tasks, f.mapping, f.cfg, 12, rl_cfg);
  trained->freeze();
  RlDvfsGovernor untrained(f.platform.ladder().size(), rl_cfg);
  untrained.freeze();

  SimConfig eval_cfg = f.cfg;
  eval_cfg.seed = 999;
  SystemSimulator sim_trained(f.platform, f.tasks, f.mapping, eval_cfg);
  SystemSimulator sim_untrained(f.platform, f.tasks, f.mapping, eval_cfg);
  const auto r_trained = sim_trained.run(trained.get());
  const auto r_untrained = sim_untrained.run(&untrained);

  // The trained governor should reduce the weighted objective (misses
  // dominate the reward; untrained greedy policy sits at its initial level).
  const auto objective = [](const SimResult& r) {
    return 3.0 * r.deadline_miss_rate() + r.energy_j / 200.0;
  };
  EXPECT_LE(objective(r_trained), objective(r_untrained) + 0.05);
  EXPECT_LT(r_trained.deadline_miss_rate(), 0.3);
}

}  // namespace
}  // namespace lore::os
