#include <gtest/gtest.h>

#include <cmath>

#include "src/os/ser.hpp"

namespace lore::os {
namespace {

TEST(LearnedSerModel, TracksPhysicalModelAcrossLadder) {
  SerModel truth(SerParams{.lambda0_per_s = 1e-5, .d_exponent = 3.0});
  const auto ladder = default_vf_ladder();
  LearnedSerModel learned;
  lore::Rng rng(1);
  learned.train(truth, ladder, rng);
  ASSERT_TRUE(learned.trained());

  // At every ladder point the learned rate is within 25% of truth (the
  // rates themselves span three decades).
  for (const auto& level : ladder) {
    const double t = truth.rate_per_s(level, ladder);
    const double p = learned.rate_per_s(level);
    EXPECT_NEAR(p / t, 1.0, 0.25) << "V=" << level.voltage << " f=" << level.freq_ghz;
  }
  EXPECT_LT(learned.validation_error(truth, ladder, 200, 2), 0.2);
}

TEST(LearnedSerModel, PreservesMonotonicityInFrequency) {
  SerModel truth;
  const auto ladder = default_vf_ladder();
  LearnedSerModel learned;
  lore::Rng rng(3);
  learned.train(truth, ladder, rng);
  // Lower frequency -> higher predicted SER, like the physical law.
  double prev = 0.0;
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    const double rate = learned.rate_per_s(*it);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(LearnedSerModel, OrdersOfMagnitudeSpanLearned) {
  SerModel truth(SerParams{.d_exponent = 3.0});
  const auto ladder = default_vf_ladder();
  LearnedSerModel learned;
  lore::Rng rng(5);
  learned.train(truth, ladder, rng);
  const double low_f = learned.rate_per_s(ladder.front());
  const double high_f = learned.rate_per_s(ladder.back());
  // 10^3 swing within a factor-2 band.
  EXPECT_GT(low_f / high_f, 500.0);
  EXPECT_LT(low_f / high_f, 2000.0);
}

}  // namespace
}  // namespace lore::os
