#include "src/os/telemetry.hpp"

#include <gtest/gtest.h>

#include "src/ml/ensemble.hpp"
#include "src/ml/kmeans.hpp"
#include "src/ml/metrics.hpp"

namespace lore::os {
namespace {

TEST(Telemetry, TraceShapeAndDeterminism) {
  const FleetConfig cfg{.nodes = 10, .epochs = 50};
  const auto a = generate_fleet_telemetry(cfg);
  const auto b = generate_fleet_telemetry(cfg);
  EXPECT_EQ(a.size(), 10u * 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].temperature_k, b[i].temperature_k);
    EXPECT_EQ(a[i].corrected_errors, b[i].corrected_errors);
    EXPECT_EQ(a[i].failure, b[i].failure);
  }
}

TEST(Telemetry, DefectiveFleetFailsMoreThanHealthyFleet) {
  const auto healthy = generate_fleet_telemetry(
      FleetConfig{.nodes = 30, .epochs = 150, .defective_fraction = 0.0});
  const auto sick = generate_fleet_telemetry(
      FleetConfig{.nodes = 30, .epochs = 150, .defective_fraction = 0.6});
  auto failures = [](const std::vector<TelemetryRecord>& t) {
    std::size_t f = 0;
    for (const auto& r : t) f += r.failure;
    return f;
  };
  EXPECT_GT(failures(sick), failures(healthy));
}

TEST(Telemetry, FeaturesDimensionAndWindow) {
  const auto trace = generate_fleet_telemetry(FleetConfig{.nodes = 4, .epochs = 40});
  const auto f = telemetry_features(trace, 2, 30, 10);
  ASSERT_EQ(f.size(), kTelemetryFeatureDim);
  EXPECT_NEAR(f[6], 10.0, 0.5);       // epochs observed
  EXPECT_GT(f[0], 300.0);             // plausible mean temperature
  EXPECT_LE(f[2], 1.0);               // mean utilization
}

TEST(Telemetry, DatasetLabelsWithinHorizon) {
  const auto trace = generate_fleet_telemetry(
      FleetConfig{.nodes = 24, .epochs = 120, .defective_fraction = 0.5});
  const auto d = failure_prediction_dataset(trace, 10, 8);
  EXPECT_GT(d.size(), 50u);
  EXPECT_EQ(d.features(), kTelemetryFeatureDim);
  // Some positives must exist with half the fleet defective.
  std::size_t positives = 0;
  for (int label : d.labels) positives += label;
  EXPECT_GT(positives, 0u);
  EXPECT_LT(positives, d.size());
}

TEST(Telemetry, GbdtPredictsFailuresAboveChance) {
  // The [22] experiment in miniature: predict node failures from telemetry.
  const auto train_trace = generate_fleet_telemetry(
      FleetConfig{.nodes = 60, .epochs = 200, .defective_fraction = 0.3, .seed = 1});
  const auto test_trace = generate_fleet_telemetry(
      FleetConfig{.nodes = 60, .epochs = 200, .defective_fraction = 0.3, .seed = 2});
  const auto train = failure_prediction_dataset(train_trace, 12, 10);
  const auto test = failure_prediction_dataset(test_trace, 12, 10);

  ml::GradientBoostingClassifier gbdt(ml::GradientBoostingClassifierConfig{.num_rounds = 60});
  gbdt.fit(train.x, train.labels);

  std::vector<double> scores;
  for (std::size_t i = 0; i < test.size(); ++i)
    scores.push_back(gbdt.predict_proba(test.x.row(i))[1]);
  const double auc = ml::roc_auc(test.labels, scores);
  EXPECT_GT(auc, 0.8) << "failure-prediction AUC " << auc;
}

TEST(Telemetry, ClusteringSeparatesSickNodesFromHealthy) {
  // The [23]-style unsupervised view: cluster node summaries; sick and
  // healthy populations should not land in one blob.
  const auto trace = generate_fleet_telemetry(
      FleetConfig{.nodes = 40, .epochs = 160, .defective_fraction = 0.4, .seed = 5});
  ml::Matrix x;
  std::vector<bool> had_failure(40, false);
  for (const auto& r : trace)
    if (r.failure) had_failure[r.node] = true;
  for (std::size_t node = 0; node < 40; ++node)
    x.push_row(telemetry_features(trace, node, 159, 60));

  ml::KMeans km(ml::KMeansConfig{.k = 2});
  km.fit(x);
  const auto assign = km.assign_batch(x);
  // Compute cluster purity against the failure flag.
  std::size_t agree = 0;
  for (std::size_t node = 0; node < 40; ++node)
    agree += (assign[node] == 1) == had_failure[node];
  const double purity =
      std::max(agree, 40 - agree) / 40.0;  // label-permutation invariant
  EXPECT_GT(purity, 0.7);
}

}  // namespace
}  // namespace lore::os
