#include "src/os/mapper.hpp"

#include "src/os/sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lore::os {
namespace {

struct Fixture {
  Platform platform{{make_big_core(), make_big_core(), make_little_core(),
                     make_little_core()}};
  SerModel ser{SerParams{.lambda0_per_s = 1e-4}};
  TaskSet tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 12, .total_utilization = 1.2, .seed = 17});

  Fixture() {
    // Heterogeneous V-f: bigs at top level, littles mid.
    platform.set_vf(0, 4);
    platform.set_vf(1, 4);
    platform.set_vf(2, 2);
    platform.set_vf(3, 2);
  }
};

TEST(Profile, ExecTimeScalesWithCoreSpeed) {
  Fixture f;
  Task t;
  t.wcet_ms = 10.0;
  const auto big = profile_task_on_core(t, make_big_core(), f.platform.ladder()[4],
                                        f.platform.ladder(), f.ser, 2.0);
  const auto little = profile_task_on_core(t, make_little_core(), f.platform.ladder()[4],
                                           f.platform.ladder(), f.ser, 2.0);
  EXPECT_LT(big.exec_time_ms, little.exec_time_ms);
  EXPECT_NEAR(big.exec_time_ms, 10.0, 1e-9);  // reference core at max freq
}

TEST(Profile, LowerVfMoreVulnerable) {
  Fixture f;
  Task t;
  t.wcet_ms = 10.0;
  const auto fast = profile_task_on_core(t, make_big_core(), f.platform.ladder()[4],
                                         f.platform.ladder(), f.ser, 2.0);
  const auto slow = profile_task_on_core(t, make_big_core(), f.platform.ladder()[0],
                                         f.platform.ladder(), f.ser, 2.0);
  EXPECT_GT(slow.failure_probability, fast.failure_probability);
}

TEST(MwtfMapper, LearnsProfileSurface) {
  Fixture f;
  MwtfMapper mapper(MwtfMapperConfig{.training_samples = 500});
  mapper.train(f.platform, f.ser);
  ASSERT_TRUE(mapper.trained());
  // Spot-check prediction error on a held-out task.
  Task t;
  t.wcet_ms = 12.0;
  t.period_ms = 80.0;
  t.avf = 0.7;
  const auto truth = profile_task_on_core(t, make_big_core(), f.platform.ladder()[3],
                                          f.platform.ladder(), f.ser, 2.0);
  const auto pred = mapper.predict(t, make_big_core(), f.platform.ladder()[3],
                                   f.platform.ladder(), 2.0);
  EXPECT_NEAR(pred.exec_time_ms / truth.exec_time_ms, 1.0, 0.25);
  EXPECT_NEAR(std::log10(pred.failure_probability + 1e-15) -
                  std::log10(truth.failure_probability + 1e-15),
              0.0, 1.0);
}

TEST(MwtfMapper, BeatsBaselinesOnMwtf) {
  Fixture f;
  MwtfMapper mapper(MwtfMapperConfig{.training_samples = 500});
  mapper.train(f.platform, f.ser);
  const auto ml_map = mapper.map(f.tasks, f.platform, f.ser);

  lore::Rng rng(23);
  double random_mwtf = 0.0;
  for (int i = 0; i < 10; ++i)
    random_mwtf += mapping_mwtf(f.tasks, map_random(f.tasks, 4, rng), f.platform, f.ser);
  random_mwtf /= 10.0;

  const double ml_mwtf = mapping_mwtf(f.tasks, ml_map, f.platform, f.ser);
  EXPECT_GT(ml_mwtf, random_mwtf);
}

TEST(Baselines, PerformanceOnlyPrefersFastCores) {
  Fixture f;
  const auto mapping = map_performance_only(f.tasks, f.platform);
  std::size_t on_big = 0;
  for (auto c : mapping) on_big += c <= 1;
  EXPECT_GT(on_big, f.tasks.size() / 2);
}

TEST(ThermalAwareMapping, LowerPredictedPeakThanPerformanceOnly) {
  Fixture f;
  const auto thermal = map_thermal_aware(f.tasks, f.platform);
  const auto perf = map_performance_only(f.tasks, f.platform);
  auto peak = [&](const std::vector<std::size_t>& m) {
    double hi = 0.0;
    for (double t : predicted_core_temperatures(f.tasks, m, f.platform))
      hi = std::max(hi, t);
    return hi;
  };
  EXPECT_LE(peak(thermal), peak(perf) + 1e-9);
}

TEST(ThermalAwareMapping, SimulatedPeakTemperatureDrops) {
  Fixture f;
  const auto thermal = map_thermal_aware(f.tasks, f.platform);
  const auto perf = map_performance_only(f.tasks, f.platform);
  SimConfig cfg{.duration_ms = 4000.0, .seed = 77};
  Platform pa = f.platform, pb = f.platform;
  SystemSimulator sim_thermal(pa, f.tasks, thermal, cfg);
  SystemSimulator sim_perf(pb, f.tasks, perf, cfg);
  const auto rt = sim_thermal.run(nullptr);
  const auto rp = sim_perf.run(nullptr);
  EXPECT_LE(rt.peak_temperature_k, rp.peak_temperature_k + 0.5);
  // Cooler, less cycled silicon lives longer.
  EXPECT_GE(rt.mttf_years, rp.mttf_years * 0.95);
}

TEST(PredictedCoreTemperatures, AmbientWhenUnloaded) {
  Fixture f;
  TaskSet none;
  const auto temps = predicted_core_temperatures(none, {}, f.platform);
  for (double t : temps) EXPECT_GT(t, f.platform.config().ambient_k);  // leakage floor
}

TEST(MappingMwtf, SensibleScale) {
  Fixture f;
  const auto mapping = map_performance_only(f.tasks, f.platform);
  const double mwtf = mapping_mwtf(f.tasks, mapping, f.platform, f.ser);
  EXPECT_GT(mwtf, 0.0);
  EXPECT_LT(mwtf, 1e18);
}

}  // namespace
}  // namespace lore::os
