#include "src/os/tasks.hpp"

#include <gtest/gtest.h>

#include "src/os/ser.hpp"

namespace lore::os {
namespace {

TEST(TaskSetGen, UUniFastHitsTargetUtilization) {
  const auto tasks = generate_taskset(TaskSetConfig{.num_tasks = 12, .total_utilization = 2.0});
  EXPECT_EQ(tasks.size(), 12u);
  EXPECT_NEAR(total_utilization(tasks), 2.0, 0.15);  // wcet floor adds slack
}

TEST(TaskSetGen, PeriodsWithinBounds) {
  const auto tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 30, .min_period_ms = 10.0, .max_period_ms = 50.0});
  for (const auto& t : tasks) {
    EXPECT_GE(t.period_ms, 10.0);
    EXPECT_LE(t.period_ms, 50.0);
    EXPECT_DOUBLE_EQ(t.deadline_ms, t.period_ms);
    EXPECT_GT(t.wcet_ms, 0.0);
    EXPECT_LT(t.wcet_lo_ms, t.wcet_ms + 1e-12);
  }
}

TEST(TaskSetGen, DeterministicPerSeed) {
  const auto a = generate_taskset(TaskSetConfig{.seed = 5});
  const auto b = generate_taskset(TaskSetConfig{.seed = 5});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].wcet_ms, b[i].wcet_ms);
    EXPECT_DOUBLE_EQ(a[i].period_ms, b[i].period_ms);
  }
}

TEST(Partition, WorstFitBalancesLoad) {
  const auto tasks = generate_taskset(TaskSetConfig{.num_tasks = 20, .total_utilization = 2.0});
  const auto mapping = partition_worst_fit(tasks, {1.0, 1.0, 1.0, 1.0});
  std::vector<double> load(4, 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    load[mapping[i]] += tasks[i].wcet_ms / tasks[i].period_ms;
  double lo = 1e9, hi = 0.0;
  for (double l : load) {
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  EXPECT_LT(hi - lo, 0.45);  // roughly balanced
}

TEST(SerModel, RateGrowsAsFrequencyDrops) {
  SerModel ser;
  const auto ladder = default_vf_ladder();
  double prev = 0.0;
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    const double rate = ser.rate_per_s(*it, ladder);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
  // Full swing multiplies the rate by 10^d.
  EXPECT_NEAR(ser.rate_per_s(ladder.front(), ladder) / ser.rate_per_s(ladder.back(), ladder),
              1e3, 1.0);
}

TEST(SerModel, FailureProbabilityBehaviour) {
  SerModel ser(SerParams{.lambda0_per_s = 1e-3});
  const auto ladder = default_vf_ladder();
  const double p_short = ser.failure_probability(0.01, 1.0, ladder.back(), ladder);
  const double p_long = ser.failure_probability(10.0, 1.0, ladder.back(), ladder);
  EXPECT_GT(p_long, p_short);
  EXPECT_GE(p_short, 0.0);
  EXPECT_LE(p_long, 1.0);
  // Zero AVF means no architectural failures.
  EXPECT_DOUBLE_EQ(ser.failure_probability(10.0, 0.0, ladder.back(), ladder), 0.0);
}

TEST(MwtfAccumulator, RatioAndEmptyCase) {
  MwtfAccumulator acc;
  EXPECT_GT(acc.mwtf(), 1e17);  // no failures observed yet
  acc.add(100.0, 0.01);
  acc.add(100.0, 0.01);
  EXPECT_DOUBLE_EQ(acc.mwtf(), 200.0 / 0.02);
}

}  // namespace
}  // namespace lore::os
