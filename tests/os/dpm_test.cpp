#include <gtest/gtest.h>

#include "src/os/governor.hpp"

namespace lore::os {
namespace {

struct Fixture {
  Platform platform{{make_big_core(), make_big_core(), make_big_core(),
                     make_big_core()}};
  /// Light load: most cores idle most of the time — the DPM sweet spot.
  TaskSet tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 4, .total_utilization = 0.4, .seed = 31});
  std::vector<std::size_t> mapping = partition_worst_fit(tasks, {1.0, 1.0, 1.0, 1.0});
  SimConfig cfg{.duration_ms = 5000.0, .seed = 33};
};

TEST(TimeoutDpmGovernor, SavesEnergyOnLightLoad) {
  Fixture f;
  StaticGovernor top(f.platform.ladder().size() - 1);
  TimeoutDpmGovernor dpm_top(&top, 2);
  SystemSimulator sim_plain(f.platform, f.tasks, f.mapping, f.cfg);
  SystemSimulator sim_dpm(f.platform, f.tasks, f.mapping, f.cfg);
  const auto plain = sim_plain.run(&top);
  const auto dpm = sim_dpm.run(&dpm_top);
  // Sleeping idle cores cuts leakage energy.
  EXPECT_LT(dpm.energy_j, plain.energy_j * 0.98);
  // Wake-on-demand keeps work flowing: everything released is either done,
  // missed, or (a handful at most) still in flight at simulation end.
  EXPECT_GT(dpm.core_wakeups, 0u);
  const auto accounted = dpm.jobs_completed + dpm.deadline_misses;
  EXPECT_LE(accounted, dpm.jobs_released);
  EXPECT_LE(dpm.jobs_released - accounted, f.tasks.size());
}

TEST(TimeoutDpmGovernor, MissRateStaysModest) {
  Fixture f;
  StaticGovernor top(f.platform.ladder().size() - 1);
  TimeoutDpmGovernor dpm_top(&top, 2);
  SystemSimulator sim(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r = sim.run(&dpm_top);
  // The one-tick wake latency costs little against 20+ ms periods.
  EXPECT_LT(r.deadline_miss_rate(), 0.05);
}

TEST(TimeoutDpmGovernor, NoSleepWithoutIdleEpochs) {
  Fixture f;
  // Saturate the platform: cores never idle, DPM must never engage.
  f.tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 8, .total_utilization = 3.5, .seed = 35});
  f.mapping = partition_worst_fit(f.tasks, {1.0, 1.0, 1.0, 1.0});
  StaticGovernor top(f.platform.ladder().size() - 1);
  TimeoutDpmGovernor dpm_top(&top, 2);
  SystemSimulator sim(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r = sim.run(&dpm_top);
  EXPECT_EQ(r.core_wakeups, 0u);
}

TEST(TimeoutDpmGovernor, ComposesWithOndemand) {
  Fixture f;
  OndemandGovernor ondemand;
  TimeoutDpmGovernor dpm(&ondemand, 3);
  EXPECT_EQ(dpm.name(), "dpm+ondemand");
  SystemSimulator sim(f.platform, f.tasks, f.mapping, f.cfg);
  const auto r = sim.run(&dpm);
  EXPECT_GT(r.jobs_completed, 0u);
}

}  // namespace
}  // namespace lore::os
