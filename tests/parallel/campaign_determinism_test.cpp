// Serial-vs-parallel equivalence of every ported campaign consumer. These
// tests ARE the determinism contract of src/common/parallel: a campaign's
// output may depend only on (inputs, base seed) — never on thread count or
// scheduling. They double as the race suite for `ctest -L parallel` under
// the ThreadSanitizer preset (-DLORE_SANITIZE=thread).
#include <gtest/gtest.h>

#include <cmath>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/circuit/characterize.hpp"
#include "src/circuit/liberty.hpp"
#include "src/common/parallel.hpp"
#include "src/rollback/montecarlo.hpp"

namespace {

using namespace lore;

TEST(FaultCampaignDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto w = arch::make_checksum(12, 5);
  const arch::FaultInjector injector(w);
  for (auto target : {arch::FaultTarget::kRegister, arch::FaultTarget::kMemory,
                      arch::FaultTarget::kInstruction}) {
    const auto serial = injector.campaign(400, target, 2024, 1);
    ASSERT_EQ(serial.size(), 400u);
    for (unsigned threads : {2u, 8u}) {
      const auto parallel = injector.campaign(400, target, 2024, threads);
      EXPECT_TRUE(serial == parallel)
          << "target=" << static_cast<int>(target) << " threads=" << threads;
    }
  }
}

TEST(FaultCampaignDeterminism, DifferentSeedsDifferentCampaigns) {
  const auto w = arch::make_dot_product(12, 3);
  const arch::FaultInjector injector(w);
  const auto a = injector.campaign(200, arch::FaultTarget::kRegister, 1, 8);
  const auto b = injector.campaign(200, arch::FaultTarget::kRegister, 2, 8);
  EXPECT_FALSE(a == b);
}

TEST(FaultCampaignDeterminism, EveryRecordReplaysInIsolation) {
  const auto w = arch::make_dot_product(10, 7);
  const arch::FaultInjector injector(w);
  const auto campaign = injector.campaign(100, arch::FaultTarget::kRegister, 99, 8);
  for (const auto& rec : campaign) {
    EXPECT_NE(rec.trial_seed, 0u);
    const auto replayed = injector.replay_trial(rec.trial_seed, rec.site.target);
    EXPECT_TRUE(replayed == rec);
  }
}

TEST(MonteCarloDeterminism, ExperimentBitIdenticalAcrossThreadCounts) {
  rollback::ExperimentConfig cfg;
  cfg.error_probabilities = {1e-7, 1e-5, 1e-4};
  cfg.runs_per_point = 40;
  const std::vector<rollback::SchedulerKind> schedulers = {
      rollback::SchedulerKind::kDs, rollback::SchedulerKind::kWcet,
      rollback::SchedulerKind::kDsLearned};

  cfg.campaign.threads = 1;
  const auto serial = rollback::run_experiment(cfg, schedulers);
  cfg.campaign.threads = 8;
  const auto parallel = rollback::run_experiment(cfg, schedulers);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const auto& s = serial.points[i];
    const auto& p = parallel.points[i];
    EXPECT_EQ(s.p, p.p);
    EXPECT_EQ(s.avg_rollbacks_per_segment, p.avg_rollbacks_per_segment);
    EXPECT_EQ(s.sem_rollbacks, p.sem_rollbacks);
    ASSERT_EQ(s.hit_rate.size(), p.hit_rate.size());
    for (const auto& [kind, rate] : s.hit_rate) EXPECT_EQ(rate, p.hit_rate.at(kind));
  }
  for (auto kind : schedulers)
    EXPECT_EQ(serial.wall_position(kind), parallel.wall_position(kind));
}

TEST(CharacterizeDeterminism, LibraryBitIdenticalAcrossThreadCounts) {
  const circuit::CharacterizerConfig grid{.slew_axis_ps = {10.0, 40.0, 160.0},
                                          .load_axis_ff = {2.0, 8.0, 24.0},
                                          .timestep_ps = 0.2};
  circuit::Characterizer characterizer(grid, device::SelfHeatingModel{});
  const device::OperatingPoint op{};

  auto serial_lib = circuit::make_skeleton_library("serial");
  characterizer.characterize_library(serial_lib, op, 1);
  const std::size_t serial_evals = characterizer.evaluations();

  auto parallel_lib = circuit::make_skeleton_library("parallel");
  characterizer.reset_evaluations();
  characterizer.characterize_library(parallel_lib, op, 8);
  EXPECT_EQ(characterizer.evaluations(), serial_evals);

  ASSERT_EQ(serial_lib.size(), parallel_lib.size());
  for (std::size_t c = 0; c < serial_lib.size(); ++c) {
    const auto& sc = serial_lib.cell(c);
    const auto& pc = parallel_lib.cell(c);
    ASSERT_EQ(sc.arcs.size(), pc.arcs.size());
    for (std::size_t a = 0; a < sc.arcs.size(); ++a) {
      const auto sv = sc.arcs[a].rise_delay.values();
      const auto pv = pc.arcs[a].rise_delay.values();
      ASSERT_EQ(sv.size(), pv.size());
      for (std::size_t i = 0; i < sv.size(); ++i) EXPECT_EQ(sv[i], pv[i]);
      const auto sf = sc.arcs[a].fall_slew.values();
      const auto pf = pc.arcs[a].fall_slew.values();
      for (std::size_t i = 0; i < sf.size(); ++i) EXPECT_EQ(sf[i], pf[i]);
    }
    const auto st = sc.she_temperature.values();
    const auto pt = pc.she_temperature.values();
    ASSERT_EQ(st.size(), pt.size());
    for (std::size_t i = 0; i < st.size(); ++i) EXPECT_EQ(st[i], pt[i]);
  }
}

TEST(CampaignStress, ConcurrentCampaignsOnOneInjector) {
  // Several threads each run full campaigns against one shared injector —
  // the const-path (golden run, workload) must be data-race free under TSan.
  const auto w = arch::make_checksum(10, 9);
  const arch::FaultInjector injector(w);
  std::vector<std::vector<arch::FaultRecord>> results(4);
  parallel_for(results.size(), 4, [&](std::size_t i) {
    results[i] = injector.campaign(150, arch::FaultTarget::kMemory, 7, 1);
  });
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_TRUE(results[0] == results[i]);
}

}  // namespace
