// Thread-count invariance of the parallel HDC paths: fit's encode/retrain
// fan-out and predict_batch's trial-seeded noise must give bit-identical
// models and predictions for 1, 2, 4, and 8 workers (the same contract the
// campaign engine guarantees). Runs under the `parallel` ctest label, i.e.
// also under the TSan preset.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/hdc.hpp"

namespace lore::ml {
namespace {

const unsigned kThreadCounts[] = {1, 2, 4, 8};

struct Blobs {
  std::vector<std::vector<double>> x;
  std::vector<int> y;

  explicit Blobs(std::uint64_t seed) {
    lore::Rng rng(seed);
    for (int i = 0; i < 160; ++i) {
      const int cls = i % 2;
      const double base = cls ? 0.72 : 0.28;
      x.push_back({base + rng.normal(0.0, 0.05), base + rng.normal(0.0, 0.05),
                   base + rng.normal(0.0, 0.05)});
      y.push_back(cls);
    }
  }
};

RecordEncoder make_encoder() {
  return RecordEncoder({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}},
                       RecordEncoderConfig{.dim = 520, .levels = 16});
}

TEST(HdcParallel, ClassifierFitInvariantAcrossThreadCounts) {
  const Blobs data(920);
  const auto enc = make_encoder();
  std::vector<std::vector<int>> per_team;
  for (const unsigned threads : kThreadCounts) {
    HdcClassifier clf(&enc, HdcClassifierConfig{.threads = threads});
    clf.fit(data.x, data.y);
    std::vector<int> preds;
    for (const auto& row : data.x) preds.push_back(clf.predict(row));
    per_team.push_back(std::move(preds));
  }
  for (std::size_t t = 1; t < per_team.size(); ++t)
    EXPECT_EQ(per_team[0], per_team[t]) << kThreadCounts[t] << " threads";
}

TEST(HdcParallel, PredictBatchInvariantAcrossThreadCounts) {
  const Blobs data(921);
  const auto enc = make_encoder();
  HdcClassifier trained(&enc, HdcClassifierConfig{.threads = 2});
  trained.fit(data.x, data.y);

  std::vector<std::vector<int>> clean, noisy;
  for (const unsigned threads : kThreadCounts) {
    HdcClassifier clf(&enc, HdcClassifierConfig{.threads = threads});
    clf.fit(data.x, data.y);
    clean.push_back(clf.predict_batch(data.x));
    noisy.push_back(clf.predict_batch(data.x, 0.25, /*noise_seed=*/922));
  }
  for (std::size_t t = 1; t < clean.size(); ++t) {
    EXPECT_EQ(clean[0], clean[t]) << kThreadCounts[t] << " threads";
    EXPECT_EQ(noisy[0], noisy[t]) << kThreadCounts[t] << " threads (noisy)";
  }
  // The noisy batch is a pure function of (queries, noise_seed): replaying
  // the same seed reproduces it, a different seed perturbs the error draws.
  EXPECT_EQ(noisy[0], trained.predict_batch(data.x, 0.25, 922));
}

TEST(HdcParallel, RegressorInvariantAcrossThreadCounts) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  lore::Rng rng(923);
  for (int i = 0; i < 150; ++i) {
    const double v = static_cast<double>(i) / 150.0;
    x.push_back({v});
    y.push_back(0.5 * v * v + 0.1 * rng.normal());
  }
  const auto enc = RecordEncoder({{0.0, 1.0}}, RecordEncoderConfig{.dim = 520, .levels = 24});
  std::vector<std::vector<double>> per_team;
  for (const unsigned threads : kThreadCounts) {
    HdcRegressor reg(&enc, HdcRegressorConfig{.threads = threads});
    reg.fit(x, y);
    per_team.push_back(reg.predict_batch(x, 0.1, /*noise_seed=*/924));
  }
  for (std::size_t t = 1; t < per_team.size(); ++t) {
    ASSERT_EQ(per_team[0].size(), per_team[t].size());
    for (std::size_t i = 0; i < per_team[0].size(); ++i)
      EXPECT_EQ(per_team[0][i], per_team[t][i])
          << kThreadCounts[t] << " threads, query " << i;
  }
}

}  // namespace
}  // namespace lore::ml
