// Self-monitoring health loop (DESIGN.md §10): EWMA detector unit behavior,
// HealthMonitor threshold/recovery state machine, and the end-to-end
// acceptance scenario — a campaign with injected hung trials drives the
// Aggregator's timeout-rate symptom, degrades the health state, and raises a
// `kAlert` event on the ring.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/campaign.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace lore::obs;

TEST(EwmaDetector, WarmupNeverAlerts) {
  EwmaDetector d(0.3, 3.0, 3);
  EXPECT_FALSE(d.update(1.0));
  EXPECT_FALSE(d.update(1000.0));  // wild, but still warming up
  EXPECT_FALSE(d.update(-500.0));
  EXPECT_TRUE(d.warmed_up());
}

TEST(EwmaDetector, FlagsSpikeAfterStableHistory) {
  EwmaDetector d(0.3, 4.0, 3);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(d.update(100.0 + (i % 2)));
  EXPECT_TRUE(d.update(500.0));   // far outside the k-sigma band
  EXPECT_FALSE(d.update(100.0));  // back to normal
}

TEST(EwmaDetector, SustainedShiftBecomesTheNewNormal) {
  EwmaDetector d(0.3, 4.0, 3);
  for (int i = 0; i < 10; ++i) d.update(10.0);
  EXPECT_TRUE(d.update(100.0));
  int flagged = 0;
  for (int i = 0; i < 30; ++i) flagged += d.update(100.0) ? 1 : 0;
  // The estimates chase the shift, so the tail of the plateau is clean.
  EXPECT_FALSE(d.update(100.0));
  EXPECT_LT(flagged, 30);
  EXPECT_NEAR(d.mean(), 100.0, 1.0);
}

TEST(EwmaDetector, ResetForgetsHistory) {
  EwmaDetector d(0.3, 4.0, 2);
  for (int i = 0; i < 10; ++i) d.update(50.0);
  d.reset();
  EXPECT_EQ(d.samples(), 0u);
  EXPECT_FALSE(d.warmed_up());
  EXPECT_FALSE(d.update(1e6));  // warming up again
}

HealthSample busy_sample(std::uint64_t seq, double rate, double timeout_rate = 0.0,
                         double queue_depth = 0.0) {
  HealthSample s;
  s.interval_seq = seq;
  s.dt_s = 0.5;
  s.trials_attempted = 100;
  s.trials_per_s = rate;
  s.timeout_rate = timeout_rate;
  s.queue_depth = queue_depth;
  return s;
}

TEST(HealthMonitor, TimeoutRateIsAnAbsoluteSymptom) {
  HealthMonitor mon;  // default threshold 0.10
  EXPECT_TRUE(mon.update(busy_sample(0, 100.0, 0.05)).empty());
  const auto alerts = mon.update(busy_sample(1, 100.0, 0.5));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].signal, "health.timeout_rate");
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.5);
  EXPECT_EQ(mon.state(), HealthState::kDegraded);
}

TEST(HealthMonitor, IdleIntervalsNeverAlert) {
  HealthMonitor mon;
  HealthSample idle;
  idle.dt_s = 0.5;  // nothing attempted: finished campaign, not a collapse
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_TRUE(mon.update(idle).empty()) << "interval " << i;
  EXPECT_EQ(mon.state(), HealthState::kOk);
}

TEST(HealthMonitor, ThroughputCollapseIsRelative) {
  HealthConfig cfg;
  cfg.warmup_intervals = 3;
  HealthMonitor mon(cfg);
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(mon.update(busy_sample(seq++, 1000.0)).empty());
  const auto alerts = mon.update(busy_sample(seq++, 50.0));  // < 25% of baseline
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].signal, "health.throughput");
  EXPECT_EQ(mon.state(), HealthState::kDegraded);
}

TEST(HealthMonitor, QueueDepthAlertIsOptIn) {
  HealthMonitor off;  // queue_depth_alert = 0 disables the symptom
  EXPECT_TRUE(off.update(busy_sample(0, 100.0, 0.0, 1e9)).empty());

  HealthConfig cfg;
  cfg.queue_depth_alert = 8.0;
  HealthMonitor on(cfg);
  const auto alerts = on.update(busy_sample(0, 100.0, 0.0, 32.0));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].signal, "health.queue_depth");
}

TEST(HealthMonitor, RecoveryNeedsACleanStreak) {
  HealthConfig cfg;
  cfg.recovery_intervals = 3;
  HealthMonitor mon(cfg);
  std::uint64_t seq = 0;
  mon.update(busy_sample(seq++, 100.0, 0.9));
  EXPECT_EQ(mon.state(), HealthState::kDegraded);
  mon.update(busy_sample(seq++, 100.0));
  mon.update(busy_sample(seq++, 100.0));
  EXPECT_EQ(mon.state(), HealthState::kDegraded);  // streak of 2 < 3
  mon.update(busy_sample(seq++, 100.0));
  EXPECT_EQ(mon.state(), HealthState::kOk);
  EXPECT_TRUE(mon.status().recent.empty());  // episode log cleared
  EXPECT_EQ(mon.status().alerts_total, 1u);  // history of totals survives
}

// Acceptance scenario: hung trials (deadline-cancelled) in a real campaign
// degrade the health loop through the Aggregator and surface as a
// `health.timeout_rate` alert event on the ring.
TEST(HealthLoop, HungTrialsDegradeHealthAndRaiseAlertEvent) {
  if (!kCompiledIn) GTEST_SKIP() << "live pipeline compiled out (-DLORE_OBS=OFF)";
  const bool was = enabled();
  set_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.reset();

  AggregatorConfig cfg;
  cfg.interval = std::chrono::milliseconds(0);  // manual ticks: deterministic
  Aggregator agg(cfg);
  agg.start();

  lore::CampaignSpec spec;
  spec.trials = 8;
  spec.base_seed = 11;
  spec.threads = 2;
  spec.trial_deadline = std::chrono::milliseconds(5);
  spec.max_retries = 0;
  const auto result = lore::run_campaign<int>(
      spec, [](std::size_t i, lore::Rng&, const lore::CancelToken& cancel) {
        if (i % 2 == 0) {
          // A hung trial: spins until the per-trial deadline cancels it.
          for (;;) {
            cancel.throw_if_cancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        return static_cast<int>(i);
      });
  ASSERT_EQ(result.report.timeouts, 4u);

  const IntervalStats iv = agg.tick();
  EXPECT_EQ(iv.timeouts, 4u);
  EXPECT_GT(iv.timeout_rate, 0.10);
  EXPECT_GE(iv.alerts, 1u);
  EXPECT_EQ(agg.health_status().state, HealthState::kDegraded);
  bool found = false;
  for (const auto& a : agg.health_status().recent)
    found = found || a.signal == "health.timeout_rate";
  EXPECT_TRUE(found);

  // The alert was also pushed onto the ring; the next interval drains it.
  const IntervalStats next = agg.tick();
  EXPECT_GE(next.per_kind[static_cast<std::size_t>(EventKind::kAlert)], 1u);

  // Published instruments reflect the episode.
  const Snapshot snap = reg.snapshot();
  EXPECT_GE(snap.counter_value("health.alerts"), 1u);
  double health_state = 0.0;
  for (const auto& [name, value] : snap.gauges)
    if (name == "health.state") health_state = value;
  EXPECT_EQ(health_state, 1.0);

  agg.stop();
  reg.reset();
  set_enabled(was);
}

// Counter-delta plumbing: completed trials land in the interval rates.
TEST(HealthLoop, AggregatorTurnsCountersIntoIntervalRates) {
  if (!kCompiledIn) GTEST_SKIP() << "live pipeline compiled out (-DLORE_OBS=OFF)";
  const bool was = enabled();
  set_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.reset();

  AggregatorConfig cfg;
  cfg.interval = std::chrono::milliseconds(0);
  Aggregator agg(cfg);
  agg.start();

  lore::CampaignSpec spec;
  spec.trials = 200;
  spec.base_seed = 5;
  spec.threads = 4;
  const auto result = lore::run_campaign<int>(
      spec, [](std::size_t i, lore::Rng&, const lore::CancelToken&) {
        return static_cast<int>(i);
      });
  ASSERT_TRUE(result.report.complete());

  const IntervalStats iv = agg.tick();
  EXPECT_EQ(iv.trials_completed, 200u);
  EXPECT_GT(iv.trials_per_s, 0.0);
  EXPECT_EQ(iv.timeout_rate, 0.0);
  EXPECT_EQ(agg.health_status().state, HealthState::kOk);
  if (kCompiledIn)  // per-kind event tallies ride the (advisory) ring
    EXPECT_GT(iv.per_kind[static_cast<std::size_t>(EventKind::kTrialCompleted)], 0u);

  // A second, idle interval: deltas reset to zero, state stays ok.
  const IntervalStats idle = agg.tick();
  EXPECT_EQ(idle.trials_completed, 0u);
  EXPECT_EQ(agg.health_status().state, HealthState::kOk);

  // The retained history serialises as lore.intervals.v1.
  const Json doc = agg.intervals_json();
  EXPECT_EQ(doc.at("schema").as_string(), "lore.intervals.v1");
  ASSERT_EQ(doc.at("intervals").size(), 2u);
  EXPECT_EQ(doc.at("intervals").at(std::size_t{0}).at("trials_completed").as_int(), 200);

  agg.stop();
  reg.reset();
  set_enabled(was);
}

}  // namespace
