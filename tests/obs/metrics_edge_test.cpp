// Histogram edge cases and serialization round trips (satellite of the live
// telemetry PR): empty/single-observation percentiles, exact bucket-edge
// placement, the overflow bucket, the first-registration-wins contract for
// mismatched bucket layouts, and a full lore.metrics.v1 JSON round trip.
#include <gtest/gtest.h>

#include <vector>

#include "src/obs/obs.hpp"

namespace {

using namespace lore::obs;

TEST(HistogramEdge, EmptyHistogramIsAllZeros) {
  Histogram h(Histogram::linear_bounds(0.0, 10.0, 6));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(HistogramEdge, SingleObservationPinsEveryPercentile) {
  Histogram h(Histogram::linear_bounds(0.0, 10.0, 6));
  h.observe(3.7);
  // Interpolation is clamped to the observed [min, max], so one sample
  // answers every quantile exactly.
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(h.percentile(q), 3.7) << "q=" << q;
  EXPECT_DOUBLE_EQ(h.min(), 3.7);
  EXPECT_DOUBLE_EQ(h.max(), 3.7);
  EXPECT_DOUBLE_EQ(h.mean(), 3.7);
}

TEST(HistogramEdge, ExactBucketEdgeLandsInTheLowerBucket) {
  // Upper edges are inclusive: observe(2.0) with edges {1,2,3} belongs to
  // the bucket whose upper bound is 2.
  Histogram h(std::vector<double>{1.0, 2.0, 3.0});
  h.observe(2.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 0u);
  h.observe(1.0);  // exactly the first edge
  EXPECT_EQ(h.bucket_counts()[0], 1u);
}

TEST(HistogramEdge, OverflowBucketCatchesEverythingAboveTheLastEdge) {
  Histogram h(std::vector<double>{1.0, 2.0, 3.0});
  h.observe(1e9);
  h.observe(4.0);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[3], 2u);
  // The open-ended bucket interpolates across [last_edge, observed max], so
  // quantiles stay finite and q=1 recovers the true maximum.
  EXPECT_GE(h.percentile(0.99), 3.0);
  EXPECT_LE(h.percentile(0.99), 1e9);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(HistogramEdge, ResetRestoresTheEmptyState) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(0.5);
  h.observe(50.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  for (auto c : h.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(HistogramEdge, ReRegistrationKeepsTheFirstLayout) {
  MetricsRegistry reg;
  auto& first = reg.histogram("dual", std::vector<double>{1.0, 2.0, 3.0});
  // Same name, different layout: first registration wins (and a one-shot
  // stderr warning fires — behaviorally we pin identity + layout).
  auto& second = reg.histogram("dual", std::vector<double>{10.0, 20.0});
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.upper_bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Same-layout and layout-less re-registrations are the supported pattern.
  auto& third = reg.histogram("dual", std::vector<double>{1.0, 2.0, 3.0});
  auto& fourth = reg.histogram("dual");
  EXPECT_EQ(&first, &third);
  EXPECT_EQ(&first, &fourth);
}

TEST(MetricsJson, RoundTripPreservesEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("edge.requests").add(123456789ULL);
  reg.counter("edge.zero");  // registered but never incremented
  reg.gauge("edge.ratio").set(0.015625);  // exactly representable
  auto& h = reg.histogram("edge.lat", std::vector<double>{1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(8.0);

  const Snapshot before = reg.snapshot();
  const Snapshot after = snapshot_from_json(Json::parse(metrics_to_json(before).dump(2)));

  ASSERT_EQ(after.counters.size(), before.counters.size());
  for (std::size_t i = 0; i < before.counters.size(); ++i) {
    EXPECT_EQ(after.counters[i].first, before.counters[i].first);
    EXPECT_EQ(after.counters[i].second, before.counters[i].second);
  }
  ASSERT_EQ(after.gauges.size(), before.gauges.size());
  for (std::size_t i = 0; i < before.gauges.size(); ++i)
    EXPECT_DOUBLE_EQ(after.gauges[i].second, before.gauges[i].second);
  ASSERT_EQ(after.histograms.size(), 1u);
  const auto& hb = before.histograms[0];
  const auto& ha = after.histograms[0];
  EXPECT_EQ(ha.name, hb.name);
  EXPECT_EQ(ha.count, hb.count);
  EXPECT_DOUBLE_EQ(ha.sum, hb.sum);
  EXPECT_DOUBLE_EQ(ha.min, hb.min);
  EXPECT_DOUBLE_EQ(ha.max, hb.max);
  EXPECT_DOUBLE_EQ(ha.p50, hb.p50);
  EXPECT_DOUBLE_EQ(ha.p95, hb.p95);
  EXPECT_DOUBLE_EQ(ha.p99, hb.p99);
  EXPECT_EQ(ha.upper_bounds, hb.upper_bounds);
  EXPECT_EQ(ha.buckets, hb.buckets);
}

TEST(MetricsJson, WrongSchemaTagIsRejected) {
  Json doc = Json::object();
  doc["schema"] = "lore.metrics.v2";
  EXPECT_THROW(snapshot_from_json(doc), std::runtime_error);
  EXPECT_THROW(snapshot_from_json(Json::object()), std::runtime_error);
}

TEST(MetricsJson, PrometheusBucketsAreCumulative) {
  MetricsRegistry reg;
  auto& h = reg.histogram("cum", std::vector<double>{1.0, 2.0});
  h.observe(0.5);
  h.observe(0.7);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("lore_cum_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lore_cum_bucket{le=\"2\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lore_cum_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lore_cum_count 4\n"), std::string::npos);
}

}  // namespace
