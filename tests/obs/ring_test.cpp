// Event-ring contention suite (ctest label `obs`, part of the TSan preset):
// FIFO semantics, exact drop accounting when producers overrun the ring, and
// MPMC delivery uniqueness under heavy contention. The ring itself compiles
// (and must work) in both LORE_OBS builds — only the emit macro and the
// pipeline bodies are gated on -DLORE_OBS=OFF.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/obs/obs.hpp"

namespace {

using namespace lore::obs;

Event make_event(std::uint64_t a) {
  Event e;
  e.kind = EventKind::kTrialCompleted;
  e.a = a;
  return e;
}

TEST(EventRing, FifoSingleThread) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(make_event(i)));
  Event e;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(e));
    EXPECT_EQ(e.a, i);
  }
  EXPECT_FALSE(ring.try_pop(e));
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(1).capacity(), 2u);
  EXPECT_EQ(EventRing(64).capacity(), 64u);
  EXPECT_EQ(EventRing(65).capacity(), 128u);
}

TEST(EventRing, FullRingDropsWithoutBlocking) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(make_event(i)));
  EXPECT_FALSE(ring.try_push(make_event(99)));
  EXPECT_EQ(ring.pushed(), 4u);
  EXPECT_EQ(ring.dropped(), 1u);
  Event e;
  ASSERT_TRUE(ring.try_pop(e));
  EXPECT_EQ(e.a, 0u);  // the dropped event never displaced anything
  EXPECT_TRUE(ring.try_push(make_event(4)));  // freed slot is reusable
}

TEST(EventRing, DropCounterMirrorsIntoRegistry) {
  MetricsRegistry reg;
  EventRing ring(2);
  ring.set_drop_counter(&reg.counter("obs.events_dropped"));
  ring.try_push(make_event(0));
  ring.try_push(make_event(1));
  EXPECT_FALSE(ring.try_push(make_event(2)));
  EXPECT_EQ(reg.counter("obs.events_dropped").value(), 1u);
  ring.set_drop_counter(nullptr);  // detached: raw count keeps going
  EXPECT_FALSE(ring.try_push(make_event(3)));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(reg.counter("obs.events_dropped").value(), 1u);
}

TEST(EventRing, LabelTruncatesAndStaysTerminated) {
  Event e;
  e.set_label("a-label-much-longer-than-the-fixed-24-byte-field");
  EXPECT_EQ(std::string(e.label).size(), sizeof e.label - 1);
  e.set_label("short");
  EXPECT_STREQ(e.label, "short");
}

// Producers ≫ capacity with concurrent consumers: every push either lands or
// is counted as dropped, nothing is delivered twice, and nothing is torn.
TEST(EventRing, ContentionExactDropAccounting) {
  EventRing ring(64);
  constexpr unsigned kProducers = 8;
  constexpr unsigned kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 20000;

  std::atomic<bool> stop{false};
  std::vector<std::vector<Event>> drained(kConsumers);
  std::vector<std::thread> consumers;
  for (unsigned c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&ring, &stop, &out = drained[c]] {
      Event e;
      while (!stop.load(std::memory_order_acquire)) {
        if (ring.try_pop(e)) out.push_back(e);
        else std::this_thread::yield();
      }
      while (ring.try_pop(e)) out.push_back(e);
    });

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      // Payload encodes (producer, sequence) so delivery uniqueness and
      // integrity are checkable per event.
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ring.try_push(make_event(p * kPerProducer + i));
    });
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();

  EXPECT_EQ(ring.pushed() + ring.dropped(), kProducers * kPerProducer);
  std::size_t delivered = 0;
  std::set<std::uint64_t> seen;
  for (const auto& out : drained)
    for (const auto& e : out) {
      ++delivered;
      EXPECT_TRUE(seen.insert(e.a).second) << "event " << e.a << " delivered twice";
      EXPECT_LT(e.a, kProducers * kPerProducer);
    }
  EXPECT_EQ(delivered, ring.pushed());
}

// No consumer at all: exactly `capacity` events land, the rest are dropped —
// the hot path never waits for a drain that is not coming.
TEST(EventRing, AbsentConsumerDropsAreExact) {
  EventRing ring(16);
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10000;
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) ring.try_push(make_event(i));
    });
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.pushed(), ring.capacity());
  EXPECT_EQ(ring.pushed() + ring.dropped(), kProducers * kPerProducer);
}

TEST(EventRing, DrainRespectsMax) {
  EventRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) ring.try_push(make_event(i));
  std::vector<Event> out;
  EXPECT_EQ(ring.drain(out, 4), 4u);
  EXPECT_EQ(ring.drain(out, 100), 6u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].a, i);
}

// The LORE_OBS_EVENT macro honours both the compile-time switch and the
// runtime producer gate on the global ring.
TEST(EventRing, MacroRespectsCompileAndRuntimeGates) {
  auto& ring = EventRing::global();
  std::vector<Event> sink;
  ring.set_enabled(true);
  ring.drain(sink, ring.capacity());  // clear leftovers from other tests
  sink.clear();
  LORE_OBS_EVENT(EventKind::kAlert, 7, 1.5);
  ring.set_enabled(false);
  LORE_OBS_EVENT(EventKind::kAlert, 8, 2.5);  // gate closed: no event
  ring.set_enabled(true);
  ring.drain(sink, ring.capacity());
  ring.set_enabled(false);
  if (kCompiledIn) {
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink[0].kind, EventKind::kAlert);
    EXPECT_EQ(sink[0].a, 7u);
    EXPECT_DOUBLE_EQ(sink[0].value, 1.5);
  } else {
    EXPECT_TRUE(sink.empty());
  }
}

TEST(EventRing, EmitEventFillsTimestampAndLabel) {
  auto& ring = EventRing::global();
  ring.set_enabled(true);
  std::vector<Event> sink;
  ring.drain(sink, ring.capacity());
  sink.clear();
  emit_event(EventKind::kSpanEnd, 3, 42.0, "roi");
  ring.drain(sink, ring.capacity());
  ring.set_enabled(false);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].kind, EventKind::kSpanEnd);
  EXPECT_EQ(sink[0].a, 3u);
  EXPECT_DOUBLE_EQ(sink[0].value, 42.0);
  EXPECT_STREQ(sink[0].label, "roi");
  EXPECT_GE(sink[0].t_us, 0.0);
}

TEST(EventRing, KindNamesCoverSchema) {
  std::set<std::string> names;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const char* name = event_kind_name(static_cast<EventKind>(k));
    EXPECT_STRNE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate kind name " << name;
  }
}

}  // namespace
