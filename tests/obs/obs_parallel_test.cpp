// Thread-safety and determinism of the observability subsystem under the
// `parallel` ctest label (and the TSan preset): concurrent registration and
// updates from many threads, plus the acceptance check that campaign
// counters are bit-identical for every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/circuit/characterize.hpp"
#include "src/circuit/liberty.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace lore;

TEST(ObsParallel, ConcurrentCounterUpdatesAreExact) {
  obs::MetricsRegistry reg;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t)
    team.emplace_back([&reg] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.counter("hits").add();
    });
  for (auto& t : team) t.join();
  EXPECT_EQ(reg.counter("hits").value(), kThreads * kPerThread);
}

TEST(ObsParallel, ConcurrentRegistrationReturnsOneInstrument) {
  obs::MetricsRegistry reg;
  constexpr unsigned kThreads = 8;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t)
    team.emplace_back([&reg, &seen, t] {
      // Same 32 names from every thread: the registry must converge on one
      // instrument per name with no torn insertions.
      for (int k = 0; k < 32; ++k)
        reg.counter("shared." + std::to_string(k)).add();
      seen[t] = &reg.counter("shared.0");
    });
  for (auto& t : team) t.join();
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(reg.counter("shared.0").value(), kThreads);
}

TEST(ObsParallel, ConcurrentHistogramObservationsAllLand) {
  obs::MetricsRegistry reg;
  auto& hist = reg.histogram("lat", obs::Histogram::linear_bounds(0.0, 100.0, 11));
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t)
    team.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i)
        hist.observe(static_cast<double>((t * 13 + i) % 100));
    });
  for (auto& t : team) t.join();
  EXPECT_EQ(hist.count(), kThreads * static_cast<std::uint64_t>(kPerThread));
  std::uint64_t bucket_total = 0;
  for (auto c : hist.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(ObsParallel, ConcurrentSpansKeepPerThreadNesting) {
  auto& rec = obs::TraceRecorder::global();
  const bool was = rec.recording();
  rec.clear();
  rec.set_enabled(true);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t)
    team.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        obs::Span outer("outer");
        obs::Span inner("inner");
        EXPECT_EQ(obs::Span::current_depth(), 2u);
      }
    });
  for (auto& t : team) t.join();
  EXPECT_EQ(rec.event_count(), kThreads * 50u * 2u);
  for (const auto& e : rec.events())
    EXPECT_EQ(e.depth, e.name == "outer" ? 0u : 1u);
  rec.clear();
  rec.set_enabled(was);
}

/// Snapshot of just the campaign counters after a fresh campaign run.
std::vector<std::pair<std::string, std::uint64_t>> campaign_counters(
    const arch::FaultInjector& injector, unsigned threads) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  (void)injector.campaign(600, arch::FaultTarget::kRegister, /*base_seed=*/77, threads);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : reg.snapshot().counters)
    if (name.rfind("campaign.", 0) == 0) out.emplace_back(name, value);
  return out;
}

// Acceptance criterion: instrumentation counters (trial + outcome counts)
// are bit-identical across 1/2/4/8 worker threads.
TEST(ObsParallel, CampaignCountersThreadCountInvariant) {
  const bool was = obs::enabled();
  obs::set_enabled(true);
  const auto w = arch::make_checksum(10, 4);
  const arch::FaultInjector injector(w);
  const auto reference = campaign_counters(injector, 1);
  ASSERT_FALSE(reference.empty());
  std::uint64_t total_outcomes = 0;
  for (const auto& [name, value] : reference)
    if (name.find(".outcome.") != std::string::npos) total_outcomes += value;
  EXPECT_EQ(total_outcomes, 600u);
  for (unsigned threads : {2u, 4u, 8u})
    EXPECT_EQ(campaign_counters(injector, threads), reference) << threads << " threads";
  obs::MetricsRegistry::global().reset();
  obs::set_enabled(was);
}

// Acceptance criterion for the live pipeline: campaign counters stay
// bit-identical with the full pipeline — event ring enabled, a fast
// Aggregator draining it, and the exposition server bound — running
// alongside, at 1, 4, and hardware_concurrency threads.
TEST(ObsParallel, CampaignCountersPipelineOnOffInvariant) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "live pipeline compiled out";
  const bool was = obs::enabled();
  obs::set_enabled(true);
  const auto w = arch::make_checksum(10, 4);
  const arch::FaultInjector injector(w);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const unsigned threads : {1u, 4u, hw}) {
    const auto reference = campaign_counters(injector, threads);
    ASSERT_FALSE(reference.empty());
    obs::Pipeline pipeline;
    obs::PipelineConfig cfg;
    cfg.port = 0;  // ephemeral: a real socket is listening during the run
    cfg.aggregator.interval = std::chrono::milliseconds(5);
    ASSERT_TRUE(pipeline.start(cfg));
    const auto live = campaign_counters(injector, threads);
    pipeline.stop();
    EXPECT_EQ(live, reference) << threads << " threads";
  }
  obs::MetricsRegistry::global().reset();
  obs::set_enabled(was);
}

// Same invariance for the characterizer's evaluation counter (the former
// bespoke atomic, now a registry counter shared through the metrics API).
TEST(ObsParallel, CharacterizeEvaluationsThreadCountInvariant) {
  const circuit::CharacterizerConfig grid{.slew_axis_ps = {10.0, 40.0},
                                          .load_axis_ff = {2.0, 8.0},
                                          .timestep_ps = 0.5};
  circuit::Characterizer characterizer(grid, device::SelfHeatingModel{});
  auto run = [&](unsigned threads) {
    auto lib = circuit::make_skeleton_library("obs");
    characterizer.reset_evaluations();
    characterizer.characterize_library(lib, device::OperatingPoint{}, threads);
    return characterizer.evaluations();
  };
  const auto serial = run(1);
  EXPECT_GT(serial, 0u);
  for (unsigned threads : {2u, 4u, 8u}) EXPECT_EQ(run(threads), serial);
}

}  // namespace
