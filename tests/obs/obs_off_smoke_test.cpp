// Smoke test that must pass in BOTH builds: the default one and the
// `obs-off` preset (-DLORE_OBS=OFF -> LORE_OBS_DISABLED). It pins the
// compile-out contract of the live pipeline: Pipeline::start succeeds exactly
// when the subsystem is compiled in, campaigns still run (with events and
// metrics macros reduced to nothing), and the always-compiled pieces (ring,
// JSON, schema stubs) behave identically.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "src/common/campaign.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace lore::obs;

TEST(ObsOffSmoke, PipelineStartMatchesCompileTimeSwitch) {
  Pipeline pipeline;
  PipelineConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.aggregator.interval = std::chrono::milliseconds(0);
  EXPECT_EQ(pipeline.start(cfg), kCompiledIn);
  EXPECT_EQ(pipeline.running(), kCompiledIn);
  if (kCompiledIn) {
    ASSERT_NE(pipeline.server(), nullptr);
    EXPECT_NE(pipeline.server()->port(), 0);
  }
  pipeline.stop();
  EXPECT_FALSE(pipeline.running());
}

TEST(ObsOffSmoke, CampaignRunsRegardlessOfBuild) {
  lore::CampaignSpec spec;
  spec.trials = 32;
  spec.base_seed = 9;
  spec.threads = 2;
  const auto result = lore::run_campaign<int>(
      spec, [](std::size_t i, lore::Rng&, const lore::CancelToken&) {
        LORE_OBS_COUNT("smoke.bodies", 1);
        LORE_OBS_EVENT(EventKind::kTrialCompleted, i, 0.0);
        return static_cast<int>(i * 2);
      });
  ASSERT_TRUE(result.report.complete());
  for (std::size_t i = 0; i < spec.trials; ++i)
    EXPECT_EQ(result.records[i], static_cast<int>(i * 2));
}

TEST(ObsOffSmoke, RingIsAlwaysFunctional) {
  EventRing ring(8);
  Event e;
  e.kind = EventKind::kCheckpointWritten;
  e.a = 5;
  EXPECT_TRUE(ring.try_push(e));
  Event out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.kind, EventKind::kCheckpointWritten);
  EXPECT_EQ(out.a, 5u);
}

TEST(ObsOffSmoke, IntervalsSchemaIsStableInBothBuilds) {
  AggregatorConfig cfg;
  cfg.interval = std::chrono::milliseconds(0);
  Aggregator agg(cfg);
  const Json doc = agg.intervals_json();
  EXPECT_EQ(doc.at("schema").as_string(), "lore.intervals.v1");
  EXPECT_EQ(doc.at("intervals").size(), 0u);  // nothing ticked yet
}

TEST(ObsOffSmoke, EnvPipelineRespectsCompileSwitch) {
  ::setenv("LORE_SERVE", "0", 1);
  const bool started = start_pipeline_from_env();
  EXPECT_EQ(started, kCompiledIn);
  if (started) Pipeline::global().stop();
  ::unsetenv("LORE_SERVE");
}

}  // namespace
