// Trace spans: nesting depth bookkeeping, recorder capture, Chrome trace
// export shape, and the ScopedTimer -> histogram path.
#include "src/obs/span.hpp"

#include <gtest/gtest.h>

#include "src/obs/export.hpp"
#include "src/obs/json.hpp"

namespace lore::obs {
namespace {

/// Tests drive the global recorder; save/restore its state around each case.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_recording_ = TraceRecorder::global().recording();
    TraceRecorder::global().clear();
    TraceRecorder::global().set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::global().clear();
    TraceRecorder::global().set_enabled(was_recording_);
  }
  bool was_recording_ = false;
};

TEST_F(SpanTest, RecordsCompleteEventsWithNestingDepth) {
  {
    Span outer("outer");
    EXPECT_EQ(Span::current_depth(), 1u);
    {
      Span inner("inner");
      EXPECT_EQ(Span::current_depth(), 2u);
    }
    EXPECT_EQ(Span::current_depth(), 1u);
  }
  EXPECT_EQ(Span::current_depth(), 0u);

  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 2u);  // inner closes first
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_GE(events[1].dur_us, events[0].dur_us);  // outer encloses inner
  EXPECT_LE(events[1].start_us, events[0].start_us);
}

TEST_F(SpanTest, DisabledRecorderKeepsDepthButDropsEvents) {
  TraceRecorder::global().set_enabled(false);
  {
    Span s("quiet");
    EXPECT_EQ(Span::current_depth(), 1u);
  }
  EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
  EXPECT_EQ(Span::current_depth(), 0u);
}

TEST_F(SpanTest, ChromeTraceExportShape) {
  { Span s("phase-1", "campaign"); }
  { Span s("phase-2", "campaign"); }
  const Json doc = chrome_trace_json(TraceRecorder::global().events());
  ASSERT_TRUE(doc.has("traceEvents"));
  const Json& list = doc.at("traceEvents");
  ASSERT_EQ(list.size(), 2u);
  const Json& ev = list.at(0);
  EXPECT_EQ(ev.at("ph").as_string(), "X");
  EXPECT_EQ(ev.at("cat").as_string(), "campaign");
  EXPECT_EQ(ev.at("pid").as_int(), 1);
  EXPECT_GE(ev.at("dur").as_double(), 0.0);
  // The export must be parseable JSON end to end.
  const Json back = Json::parse(doc.dump(2));
  EXPECT_EQ(back.at("traceEvents").size(), 2u);
}

TEST_F(SpanTest, ElapsedGrowsMonotonically) {
  Span s("timing");
  const double first = s.elapsed_us();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(s.elapsed_us(), first);
}

TEST(ScopedTimerTest, FeedsHistogram) {
  const bool original = enabled();
  set_enabled(true);
  Histogram h(Histogram::default_time_bounds_us());
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  set_enabled(original);
}

TEST(ScopedTimerTest, DisabledObsSkipsObservation) {
  const bool original = enabled();
  set_enabled(false);
  Histogram h(Histogram::default_time_bounds_us());
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 0u);
  set_enabled(original);
}

TEST(ScopedTimerTest, RegistryConvenienceCreatesHistogram) {
  const bool original = enabled();
  set_enabled(true);
  MetricsRegistry reg;
  { ScopedTimer t(reg, "scope_us"); }
  EXPECT_EQ(reg.snapshot().histograms.at(0).count, 1u);
  set_enabled(original);
}

TEST(TraceRecorderTest, ThreadIdsAreDense) {
  const auto id = TraceRecorder::thread_id();
  EXPECT_EQ(TraceRecorder::thread_id(), id);  // stable within a thread
}

}  // namespace
}  // namespace lore::obs
