// Registry + histogram correctness for the observability subsystem,
// including percentile estimates against closed-form quantiles.
#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lore::obs {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriterWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(Histogram, CountsSumMinMax) {
  Histogram h(Histogram::linear_bounds(0.0, 10.0, 11));
  for (double v : {1.0, 2.0, 3.0, 9.5}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.5);
  EXPECT_DOUBLE_EQ(h.mean(), 15.5 / 4.0);
}

TEST(Histogram, OverflowBucketCatchesOutOfRange) {
  Histogram h(Histogram::linear_bounds(0.0, 10.0, 11));
  h.observe(1e9);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets.size(), h.upper_bounds().size() + 1);
  EXPECT_EQ(buckets.back(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

// Uniform grid of samples: quantiles have the closed form q * range. With
// bucket width 10 over [0, 1000], interpolation must land within one bucket
// width of the exact quantile.
TEST(Histogram, PercentilesMatchClosedFormUniform) {
  Histogram h(Histogram::linear_bounds(0.0, 1000.0, 101));
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const double bucket_width = 10.0;
  EXPECT_NEAR(h.percentile(0.50), 500.0, bucket_width);
  EXPECT_NEAR(h.percentile(0.95), 950.0, bucket_width);
  EXPECT_NEAR(h.percentile(0.99), 990.0, bucket_width);
  EXPECT_NEAR(h.percentile(0.0), 1.0, bucket_width);
  EXPECT_NEAR(h.percentile(1.0), 1000.0, bucket_width);
}

// Point mass: every quantile must collapse to the single observed value.
TEST(Histogram, PercentileOfPointMass) {
  Histogram h(Histogram::exponential_bounds(1.0, 1e6, 20));
  for (int i = 0; i < 100; ++i) h.observe(77.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 77.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 77.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(Histogram::linear_bounds(0.0, 1.0, 2));
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, BoundHelpersAreSortedAndCover) {
  const auto exp = Histogram::exponential_bounds(1.0, 1e6, 13);
  ASSERT_EQ(exp.size(), 13u);
  EXPECT_DOUBLE_EQ(exp.front(), 1.0);
  EXPECT_DOUBLE_EQ(exp.back(), 1e6);
  for (std::size_t i = 1; i < exp.size(); ++i) EXPECT_GT(exp[i], exp[i - 1]);

  const auto lin = Histogram::linear_bounds(-5.0, 5.0, 11);
  ASSERT_EQ(lin.size(), 11u);
  EXPECT_DOUBLE_EQ(lin.front(), -5.0);
  EXPECT_DOUBLE_EQ(lin.back(), 5.0);
  for (std::size_t i = 1; i < lin.size(); ++i) EXPECT_GT(lin[i], lin[i - 1]);
}

TEST(MetricsRegistry, ReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  Histogram& h1 = reg.histogram("lat", Histogram::linear_bounds(0.0, 1.0, 2));
  Histogram& h2 = reg.histogram("lat");  // bounds of the first registration win
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(0.5);
  reg.histogram("h").observe(10.0);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  EXPECT_EQ(snap.counter_value("zeta"), 1u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(9);
  reg.gauge("g").set(2.0);
  reg.histogram("h").observe(5.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // cached reference still valid after reset
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("c"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(Enabled, RuntimeToggle) {
  const bool original = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(original);
}

}  // namespace
}  // namespace lore::obs
