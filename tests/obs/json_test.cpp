// JSON document model: dump/parse round-trips, escapes, and the metrics
// snapshot round-trip through metrics_to_json / snapshot_from_json.
#include "src/obs/json.hpp"

#include <gtest/gtest.h>

#include "src/obs/export.hpp"
#include "src/obs/metrics.hpp"

namespace lore::obs {
namespace {

TEST(Json, BuildAndDumpCompact) {
  Json doc = Json::object();
  doc["name"] = "lore";
  doc["count"] = 42;
  doc["ratio"] = 0.5;
  doc["ok"] = true;
  doc["none"] = nullptr;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["list"] = std::move(arr);
  EXPECT_EQ(doc.dump(),
            R"({"name":"lore","count":42,"ratio":0.5,"ok":true,"none":null,"list":[1,"two"]})");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc = Json::object();
  doc["zeta"] = 1;
  doc["alpha"] = 2;
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "zeta");
  EXPECT_EQ(members[1].first, "alpha");
}

TEST(Json, ParseBasicDocument) {
  const Json doc = Json::parse(R"({"a": [1, 2.5, -3], "b": {"c": "text"}, "d": false})");
  EXPECT_EQ(doc.at("a").at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_double(), 2.5);
  EXPECT_EQ(doc.at("a").at(2).as_int(), -3);
  EXPECT_EQ(doc.at("b").at("c").as_string(), "text");
  EXPECT_FALSE(doc.at("d").as_bool());
}

TEST(Json, RoundTripWithEscapes) {
  Json doc = Json::object();
  doc["s"] = "line1\nline2\t\"quoted\" back\\slash";
  doc["ctrl"] = std::string("\x01\x02");
  const std::string text = doc.dump(2);
  const Json back = Json::parse(text);
  EXPECT_EQ(back.at("s").as_string(), doc.at("s").as_string());
  EXPECT_EQ(back.at("ctrl").as_string(), doc.at("ctrl").as_string());
}

TEST(Json, RoundTripDoublesExactly) {
  Json doc = Json::array();
  for (double v : {0.1, 1e-12, 3.141592653589793, -2.5e17, 1e300})
    doc.push_back(v);
  const Json back = Json::parse(doc.dump());
  for (std::size_t i = 0; i < doc.size(); ++i)
    EXPECT_DOUBLE_EQ(back.at(i).as_double(), doc.at(i).as_double());
}

TEST(Json, LargeIntegersStayIntegral) {
  Json doc = Json::object();
  doc["big"] = std::int64_t{4611686018427387905};  // > 2^53: would lose bits as double
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("big").as_int(), 4611686018427387905);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]2"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, PrettyDumpParsesBack) {
  Json doc = Json::object();
  doc["nested"] = Json::object();
  doc["nested"]["k"] = 7;
  Json arr = Json::array();
  arr.push_back(Json::object());
  doc["arr"] = std::move(arr);
  const Json back = Json::parse(doc.dump(4));
  EXPECT_EQ(back.at("nested").at("k").as_int(), 7);
  EXPECT_EQ(back.at("arr").size(), 1u);
}

// The acceptance-criteria round-trip: a populated registry snapshot survives
// export -> dump -> parse -> import bit-for-bit (integers) / value-for-value
// (doubles, shortest-round-trip formatting).
TEST(Json, MetricsSnapshotRoundTrip) {
  MetricsRegistry reg;
  reg.counter("campaign.trials").add(12345);
  reg.counter("campaign.outcome.sdc").add(67);
  reg.gauge("governor.reward").set(-0.125);
  Histogram& h = reg.histogram("lat_us", Histogram::exponential_bounds(1.0, 1e4, 9));
  for (int i = 1; i <= 50; ++i) h.observe(static_cast<double>(i * i));

  const Snapshot snap = reg.snapshot();
  const Json doc = metrics_to_json(snap);
  const Snapshot back = snapshot_from_json(Json::parse(doc.dump(2)));

  ASSERT_EQ(back.counters.size(), snap.counters.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].first, snap.counters[i].first);
    EXPECT_EQ(back.counters[i].second, snap.counters[i].second);
  }
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(back.gauges[0].second, -0.125);
  ASSERT_EQ(back.histograms.size(), 1u);
  const auto& hb = back.histograms[0];
  const auto& hs = snap.histograms[0];
  EXPECT_EQ(hb.count, hs.count);
  EXPECT_DOUBLE_EQ(hb.sum, hs.sum);
  EXPECT_DOUBLE_EQ(hb.p50, hs.p50);
  EXPECT_DOUBLE_EQ(hb.p95, hs.p95);
  EXPECT_DOUBLE_EQ(hb.p99, hs.p99);
  EXPECT_EQ(hb.buckets, hs.buckets);
  ASSERT_EQ(hb.upper_bounds.size(), hs.upper_bounds.size());
  for (std::size_t i = 0; i < hs.upper_bounds.size(); ++i)
    EXPECT_DOUBLE_EQ(hb.upper_bounds[i], hs.upper_bounds[i]);
}

TEST(Json, RejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = "something.else";
  EXPECT_THROW(snapshot_from_json(doc), std::runtime_error);
}

}  // namespace
}  // namespace lore::obs
