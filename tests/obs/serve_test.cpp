// Real-socket round trips against the exposition server (acceptance
// criterion): /metrics parses as Prometheus text, /metrics.json parses as a
// lore.metrics.v1 document via snapshot_from_json, /healthz flips to 503 when
// hung trials degrade the health loop, and unknown paths/methods get proper
// error statuses. All connections go through an actual loopback TCP socket
// bound on an ephemeral port.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "src/common/campaign.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace lore::obs;

struct HttpReply {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP/1.0 client for the round-trip tests.
HttpReply http_get(std::uint16_t port, const std::string& request_line) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string req = request_line + "\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (ssize_t n; (n = ::recv(fd, buf, sizeof buf, 0)) > 0;)
    raw.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  if (raw.rfind("HTTP/1.0 ", 0) == 0) reply.status = std::atoi(raw.c_str() + 9);
  const auto sep = raw.find("\r\n\r\n");
  if (sep != std::string::npos) reply.body = raw.substr(sep + 4);
  return reply;
}

TEST(MetricsServer, BindsEphemeralPortAndStops) {
  MetricsServer server;
  const bool started = server.start(ServeConfig{.port = 0});
  EXPECT_EQ(started, kCompiledIn);
  if (!started) return;
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(MetricsServer, MetricsJsonRoundTripsAsLoreMetricsV1) {
  if (!kCompiledIn) GTEST_SKIP() << "server compiled out (-DLORE_OBS=OFF)";
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.counter("serve_test.requests").add(42);
  reg.gauge("serve_test.temperature").set(71.5);
  auto& hist = reg.histogram("serve_test.latency",
                             Histogram::linear_bounds(0.0, 10.0, 6));
  hist.observe(1.0);
  hist.observe(7.5);

  MetricsServer server;
  ASSERT_TRUE(server.start(ServeConfig{.port = 0}));
  const HttpReply reply = http_get(server.port(), "GET /metrics.json HTTP/1.0");
  server.stop();

  EXPECT_EQ(reply.status, 200);
  const Snapshot snap = snapshot_from_json(Json::parse(reply.body));
  EXPECT_EQ(snap.counter_value("serve_test.requests"), 42u);
  bool gauge_found = false;
  for (const auto& [name, value] : snap.gauges)
    if (name == "serve_test.temperature") {
      gauge_found = true;
      EXPECT_DOUBLE_EQ(value, 71.5);
    }
  EXPECT_TRUE(gauge_found);
  bool hist_found = false;
  for (const auto& h : snap.histograms)
    if (h.name == "serve_test.latency") {
      hist_found = true;
      EXPECT_EQ(h.count, 2u);
      EXPECT_DOUBLE_EQ(h.sum, 8.5);
    }
  EXPECT_TRUE(hist_found);
  reg.reset();
}

TEST(MetricsServer, MetricsEndpointServesValidPrometheusText) {
  if (!kCompiledIn) GTEST_SKIP() << "server compiled out (-DLORE_OBS=OFF)";
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.counter("serve_test.hits").add(7);
  auto& hist = reg.histogram("serve_test.lat", Histogram::linear_bounds(0.0, 4.0, 3));
  hist.observe(1.0);
  hist.observe(3.0);
  hist.observe(100.0);  // overflow bucket

  MetricsServer server;
  ASSERT_TRUE(server.start(ServeConfig{.port = 0}));
  const HttpReply reply = http_get(server.port(), "GET /metrics HTTP/1.0");
  server.stop();

  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("# TYPE lore_serve_test_hits counter"), std::string::npos);
  EXPECT_NE(reply.body.find("lore_serve_test_hits 7"), std::string::npos);
  EXPECT_NE(reply.body.find("# TYPE lore_serve_test_lat histogram"), std::string::npos);
  // Bucket series must be cumulative and end at +Inf == _count.
  EXPECT_NE(reply.body.find("lore_serve_test_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(reply.body.find("lore_serve_test_lat_count 3"), std::string::npos);

  // Structural validation: every non-comment line is `<name or name{...}> <number>`.
  std::istringstream lines(reply.body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line.rfind("# ", 0) == 0) continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "bad exposition line: " << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "non-numeric sample value: " << line;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_EQ(name.rfind("lore_", 0), 0u) << "unprefixed metric: " << line;
  }
  reg.reset();
}

TEST(MetricsServer, HealthzReportsOkThenDegraded) {
  if (!kCompiledIn) GTEST_SKIP() << "server compiled out (-DLORE_OBS=OFF)";
  const bool was = enabled();
  set_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.reset();

  AggregatorConfig cfg;
  cfg.interval = std::chrono::milliseconds(0);  // manual ticks
  Aggregator agg(cfg);
  agg.start();
  MetricsServer server(&agg);
  ASSERT_TRUE(server.start(ServeConfig{.port = 0}));

  const HttpReply healthy = http_get(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_EQ(Json::parse(healthy.body).at("status").as_string(), "ok");

  // Inject hung trials: every attempt exceeds its 5 ms deadline.
  lore::CampaignSpec spec;
  spec.trials = 4;
  spec.base_seed = 23;
  spec.threads = 2;
  spec.trial_deadline = std::chrono::milliseconds(5);
  spec.max_retries = 0;
  const auto result = lore::run_campaign<int>(
      spec, [](std::size_t, lore::Rng&, const lore::CancelToken& cancel) {
        for (;;) {
          cancel.throw_if_cancelled();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return 0;
      });
  ASSERT_EQ(result.report.timeouts, 4u);
  agg.tick();

  const HttpReply degraded = http_get(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_EQ(degraded.status, 503);
  const Json body = Json::parse(degraded.body);
  EXPECT_EQ(body.at("status").as_string(), "degraded");
  ASSERT_GE(body.at("alerts").size(), 1u);
  EXPECT_EQ(body.at("alerts").at(std::size_t{0}).at("signal").as_string(),
            "health.timeout_rate");

  server.stop();
  agg.stop();
  reg.reset();
  set_enabled(was);
}

TEST(MetricsServer, IntervalsEndpointServesAggregatorHistory) {
  if (!kCompiledIn) GTEST_SKIP() << "server compiled out (-DLORE_OBS=OFF)";
  AggregatorConfig cfg;
  cfg.interval = std::chrono::milliseconds(0);
  Aggregator agg(cfg);
  agg.start();
  agg.tick();
  agg.tick();
  MetricsServer server(&agg);
  ASSERT_TRUE(server.start(ServeConfig{.port = 0}));
  const HttpReply reply = http_get(server.port(), "GET /intervals.json HTTP/1.0");
  server.stop();
  agg.stop();
  EXPECT_EQ(reply.status, 200);
  const Json doc = Json::parse(reply.body);
  EXPECT_EQ(doc.at("schema").as_string(), "lore.intervals.v1");
  // Two manual ticks plus the final flush in stop() happened after the GET,
  // so at least the two ticked intervals are visible.
  EXPECT_GE(doc.at("intervals").size(), 2u);
}

TEST(MetricsServer, UnknownPathAndMethodAreRejected) {
  if (!kCompiledIn) GTEST_SKIP() << "server compiled out (-DLORE_OBS=OFF)";
  MetricsServer server;
  ASSERT_TRUE(server.start(ServeConfig{.port = 0}));
  EXPECT_EQ(http_get(server.port(), "GET /nope HTTP/1.0").status, 404);
  EXPECT_EQ(http_get(server.port(), "POST /metrics HTTP/1.0").status, 405);
  server.stop();
}

TEST(MetricsServer, PipelineEnvParsingIsStrict) {
  // Invalid LORE_SERVE values must not start anything. (Valid values are
  // exercised by the benches; here we only pin the rejection path, which is
  // identical in both builds.)
  ::setenv("LORE_SERVE", "not-a-port", 1);
  EXPECT_FALSE(start_pipeline_from_env());
  ::setenv("LORE_SERVE", "70000", 1);
  EXPECT_FALSE(start_pipeline_from_env());
  ::unsetenv("LORE_SERVE");
  EXPECT_FALSE(start_pipeline_from_env());
  EXPECT_FALSE(Pipeline::global().running());
}

}  // namespace
