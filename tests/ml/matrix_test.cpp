#include "src/ml/matrix.hpp"

#include <gtest/gtest.h>

namespace lore::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, PushRowGrowsAndSetsCols) {
  Matrix m;
  const double r0[] = {1.0, 2.0, 3.0};
  m.push_row(r0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  const double r1[] = {4.0, 5.0, 6.0};
  m.push_row(r1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Matmul) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulIdentity) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix eye{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix c = a.matmul(eye);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(Matrix, Matvec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v{1.0, -1.0};
  const auto out = a.matvec(v);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}};
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(Matrix, GatherRows) {
  Matrix m{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 0.0);
}

TEST(VectorOps, DotAndDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const std::vector<double> c{0.0, 3.0, 4.0};
  const std::vector<double> zero{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(l2_distance(c, zero), 5.0);
}

TEST(VectorOps, Axpy) {
  std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{2.0, 3.0};
  axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 7.0);
}

}  // namespace
}  // namespace lore::ml
