#include "src/ml/qlearning.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lore::ml {
namespace {

/// 1-D corridor: states 0..N-1, actions {left, right}, reward 1 at the right
/// end. Optimal policy is "always right".
struct Corridor {
  std::size_t n = 6;
  std::size_t state = 0;

  void reset() { state = 0; }
  /// Returns (reward, terminal).
  std::pair<double, bool> step(std::size_t action) {
    if (action == 1 && state + 1 < n) ++state;
    else if (action == 0 && state > 0) --state;
    if (state == n - 1) return {1.0, true};
    return {-0.01, false};
  }
};

TEST(QLearner, LearnsCorridorPolicy) {
  Corridor env;
  QLearner q(env.n, 2, QLearnerConfig{.alpha = 0.3, .gamma = 0.95, .epsilon = 0.3});
  for (int episode = 0; episode < 300; ++episode) {
    env.reset();
    for (int t = 0; t < 100; ++t) {
      const auto s = env.state;
      const auto a = q.select_action(s);
      const auto [r, done] = env.step(a);
      q.update(s, a, r, env.state, 0, done);
      if (done) break;
    }
    q.end_episode();
  }
  for (std::size_t s = 0; s + 1 < env.n; ++s)
    EXPECT_EQ(q.best_action(s), 1u) << "state " << s;
}

TEST(QLearner, SarsaAlsoLearnsCorridor) {
  Corridor env;
  QLearner q(env.n, 2,
             QLearnerConfig{.alpha = 0.3, .gamma = 0.95, .epsilon = 0.3, .sarsa = true});
  for (int episode = 0; episode < 400; ++episode) {
    env.reset();
    auto a = q.select_action(env.state);
    for (int t = 0; t < 100; ++t) {
      const auto s = env.state;
      const auto [r, done] = env.step(a);
      const auto a_next = q.select_action(env.state);
      q.update(s, a, r, env.state, a_next, done);
      a = a_next;
      if (done) break;
    }
    q.end_episode();
  }
  EXPECT_EQ(q.best_action(0), 1u);
  EXPECT_EQ(q.best_action(env.n - 2), 1u);
}

TEST(QLearner, EpsilonDecays) {
  QLearner q(4, 2, QLearnerConfig{.epsilon = 0.5, .epsilon_decay = 0.9, .epsilon_min = 0.1});
  EXPECT_DOUBLE_EQ(q.epsilon(), 0.5);
  for (int i = 0; i < 100; ++i) q.end_episode();
  EXPECT_DOUBLE_EQ(q.epsilon(), 0.1);
}

TEST(QLearner, TerminalUpdateIgnoresFuture) {
  QLearner q(2, 1, QLearnerConfig{.alpha = 1.0, .gamma = 0.9});
  // Seed next-state value; a terminal transition must not bootstrap from it.
  q.update(1, 0, 100.0, 1, 0, true);
  q.update(0, 0, 1.0, 1, 0, true);
  EXPECT_DOUBLE_EQ(q.q(0, 0), 1.0);
}

TEST(QLearner, QValueConvergesToDiscountedReturn) {
  // Single state, single action, reward 1 forever: Q* = 1/(1-gamma).
  QLearner q(1, 1, QLearnerConfig{.alpha = 0.5, .gamma = 0.5, .epsilon = 0.0});
  for (int i = 0; i < 200; ++i) q.update(0, 0, 1.0, 0);
  EXPECT_NEAR(q.q(0, 0), 2.0, 1e-6);
}

TEST(GridDiscretizer, EncodesCorners) {
  GridDiscretizer g({{0.0, 1.0, 4}, {0.0, 10.0, 3}});
  EXPECT_EQ(g.num_states(), 12u);
  const double lo[] = {0.0, 0.0};
  const double hi[] = {0.999, 9.99};
  EXPECT_EQ(g.encode(lo), 0u);
  EXPECT_EQ(g.encode(hi), 11u);
}

TEST(GridDiscretizer, ClampsOutOfRange) {
  GridDiscretizer g({{0.0, 1.0, 4}});
  const double below[] = {-5.0};
  const double above[] = {99.0};
  EXPECT_EQ(g.encode(below), 0u);
  EXPECT_EQ(g.encode(above), 3u);
}

}  // namespace
}  // namespace lore::ml
