#include "src/ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lore::ml {
namespace {

TEST(Metrics, Accuracy) {
  const std::vector<int> t{0, 1, 1, 0};
  const std::vector<int> p{0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(accuracy(t, p), 0.75);
}

TEST(Metrics, BinaryConfusionCounts) {
  const std::vector<int> t{1, 1, 0, 0, 1};
  const std::vector<int> p{1, 0, 1, 0, 1};
  const auto c = binary_confusion(t, p);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.recall(), 2.0 / 3.0);
  EXPECT_NEAR(c.f1(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.5);
}

TEST(Metrics, ConfusionMatrixMulticlass) {
  const std::vector<int> t{0, 1, 2, 2};
  const std::vector<int> p{0, 2, 2, 1};
  const auto m = confusion_matrix(t, p, 3);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[1][2], 1u);
  EXPECT_EQ(m[2][2], 1u);
  EXPECT_EQ(m[2][1], 1u);
}

TEST(Metrics, RegressionErrors) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  const std::vector<double> p{1.0, 2.0, 5.0};
  EXPECT_NEAR(mse(t, p), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(mae(t, p), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rmse(t, p), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const std::vector<double> t{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2_score(t, t), 1.0);
  const std::vector<double> mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(r2_score(t, mean_pred), 0.0);
}

TEST(Metrics, RocAucPerfectSeparation) {
  const std::vector<int> t{0, 0, 1, 1};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(t, s), 1.0);
}

TEST(Metrics, RocAucRandomIsHalf) {
  const std::vector<int> t{0, 1, 0, 1};
  const std::vector<double> s{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(t, s), 0.5);
}

TEST(Metrics, RocAucInverted) {
  const std::vector<int> t{1, 1, 0, 0};
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(t, s), 0.0);
}

}  // namespace
}  // namespace lore::ml
