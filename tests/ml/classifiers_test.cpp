// Cross-family classifier checks on shared synthetic problems, including a
// parameterized sweep asserting every family clears an accuracy bar on
// linearly separable data — the invariant the paper's model-selection
// discussion (Sec. VI-C) presumes.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/naive_bayes.hpp"
#include "src/ml/svm.hpp"

namespace lore::ml {
namespace {

Dataset two_blobs(std::size_t n, double separation, std::uint64_t seed) {
  lore::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    const double c = cls ? separation : -separation;
    const double row[] = {rng.normal(c, 1.0), rng.normal(c, 1.0)};
    d.add(row, cls);
  }
  return d;
}

/// XOR-style problem that linear models cannot solve.
Dataset xor_blobs(std::size_t n, std::uint64_t seed) {
  lore::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double row[] = {a + rng.normal(0.0, 0.25), b + rng.normal(0.0, 0.25)};
    d.add(row, a * b > 0 ? 1 : 0);
  }
  return d;
}

std::unique_ptr<Classifier> make_classifier(const std::string& kind) {
  if (kind == "knn") return std::make_unique<KnnClassifier>(5);
  if (kind == "naive-bayes") return std::make_unique<GaussianNaiveBayes>();
  if (kind == "svm") return std::make_unique<LinearSvm>();
  if (kind == "logreg") return std::make_unique<LogisticRegression>();
  if (kind == "tree") return std::make_unique<DecisionTreeClassifier>();
  if (kind == "forest")
    return std::make_unique<RandomForestClassifier>(RandomForestConfig{.num_trees = 25, .tree = {}});
  if (kind == "adaboost") return std::make_unique<AdaBoostClassifier>();
  if (kind == "gbdt")
    return std::make_unique<GradientBoostingClassifier>(
        GradientBoostingClassifierConfig{.num_rounds = 40});
  if (kind == "mlp")
    return std::make_unique<MlpClassifier>(MlpConfig{.hidden = {16}, .epochs = 120});
  ADD_FAILURE() << "unknown classifier " << kind;
  return nullptr;
}

class EveryClassifier : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryClassifier, SeparatesBlobs) {
  const auto d = two_blobs(300, 2.0, 7);
  lore::Rng rng(8);
  const auto [train, test] = train_test_split(d, 0.3, rng);
  auto model = make_classifier(GetParam());
  model->fit(train.x, train.labels);
  const auto pred = model->predict_batch(test.x);
  EXPECT_GT(accuracy(test.labels, pred), 0.9) << model->name();
}

TEST_P(EveryClassifier, ProbaSumsToOne) {
  const auto d = two_blobs(120, 2.0, 9);
  auto model = make_classifier(GetParam());
  model->fit(d.x, d.labels);
  const double probe[] = {0.3, -0.2};
  const auto p = model->predict_proba(probe);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9) << model->name();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EveryClassifier,
                         ::testing::Values("knn", "naive-bayes", "svm", "logreg", "tree",
                                           "forest", "adaboost", "gbdt", "mlp"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

class NonlinearClassifier : public ::testing::TestWithParam<std::string> {};

TEST_P(NonlinearClassifier, SolvesXor) {
  const auto d = xor_blobs(400, 10);
  lore::Rng rng(11);
  const auto [train, test] = train_test_split(d, 0.3, rng);
  auto model = make_classifier(GetParam());
  model->fit(train.x, train.labels);
  const auto pred = model->predict_batch(test.x);
  EXPECT_GT(accuracy(test.labels, pred), 0.85) << model->name();
}

INSTANTIATE_TEST_SUITE_P(NonlinearFamilies, NonlinearClassifier,
                         ::testing::Values("knn", "tree", "forest", "gbdt", "mlp"),
                         [](const auto& info) { return info.param; });

TEST(LinearSvm, MarginSignMatchesClass) {
  const auto d = two_blobs(200, 2.5, 12);
  LinearSvm svm;
  svm.fit(d.x, d.labels);
  const double pos[] = {3.0, 3.0};
  const double neg[] = {-3.0, -3.0};
  EXPECT_GT(svm.decision(pos), 0.0);
  EXPECT_LT(svm.decision(neg), 0.0);
}

TEST(GaussianNaiveBayes, ThreeClasses) {
  lore::Rng rng(13);
  Dataset d;
  const double centers[3][2] = {{-3.0, 0.0}, {3.0, 0.0}, {0.0, 4.0}};
  for (int i = 0; i < 450; ++i) {
    const int cls = i % 3;
    const double row[] = {rng.normal(centers[cls][0], 0.8), rng.normal(centers[cls][1], 0.8)};
    d.add(row, cls);
  }
  GaussianNaiveBayes nb;
  nb.fit(d.x, d.labels);
  const auto pred = nb.predict_batch(d.x);
  EXPECT_GT(accuracy(d.labels, pred), 0.95);
}

TEST(KnnClassifier, KOneMemorizesTraining) {
  const auto d = two_blobs(60, 1.0, 14);
  KnnClassifier knn(1);
  knn.fit(d.x, d.labels);
  const auto pred = knn.predict_batch(d.x);
  EXPECT_DOUBLE_EQ(accuracy(d.labels, pred), 1.0);
}

}  // namespace
}  // namespace lore::ml
