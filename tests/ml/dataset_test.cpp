#include "src/ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lore::ml {
namespace {

Dataset make_labeled(std::size_t n) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double row[] = {static_cast<double>(i), static_cast<double>(2 * i)};
    d.add(row, static_cast<int>(i % 3));
  }
  return d;
}

TEST(Dataset, AddAndCounts) {
  const auto d = make_labeled(9);
  EXPECT_EQ(d.size(), 9u);
  EXPECT_EQ(d.features(), 2u);
  EXPECT_EQ(d.num_classes(), 3u);
}

TEST(Dataset, SubsetKeepsAlignment) {
  const auto d = make_labeled(10);
  const std::vector<std::size_t> idx{3, 7};
  const auto s = d.subset(idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 3.0);
  EXPECT_EQ(s.labels[0], 0);
  EXPECT_DOUBLE_EQ(s.x(1, 1), 14.0);
  EXPECT_EQ(s.labels[1], 1);
}

TEST(Dataset, TrainTestSplitPartitions) {
  const auto d = make_labeled(20);
  lore::Rng rng(3);
  const auto [train, test] = train_test_split(d, 0.25, rng);
  EXPECT_EQ(train.size() + test.size(), 20u);
  EXPECT_EQ(test.size(), 5u);
  // No sample appears in both (features are unique per row here).
  std::set<double> train_keys, test_keys;
  for (std::size_t i = 0; i < train.size(); ++i) train_keys.insert(train.x(i, 0));
  for (std::size_t i = 0; i < test.size(); ++i) test_keys.insert(test.x(i, 0));
  for (double k : test_keys) EXPECT_EQ(train_keys.count(k), 0u);
}

TEST(Dataset, KfoldCoversAllDisjointly) {
  lore::Rng rng(4);
  const auto folds = kfold_indices(23, 5, rng);
  EXPECT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& f : folds)
    for (auto i : f) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(StandardScaler, ZeroMeanUnitVar) {
  Matrix x{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}};
  StandardScaler s;
  const Matrix t = s.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double m = 0.0, v = 0.0;
    for (std::size_t r = 0; r < 4; ++r) m += t(r, c);
    m /= 4.0;
    for (std::size_t r = 0; r < 4; ++r) v += (t(r, c) - m) * (t(r, c) - m);
    v /= 4.0;
    EXPECT_NEAR(m, 0.0, 1e-12);
    EXPECT_NEAR(v, 1.0, 1e-12);
  }
}

TEST(StandardScaler, ConstantFeatureStaysFinite) {
  Matrix x{{5.0, 1.0}, {5.0, 2.0}};
  StandardScaler s;
  const Matrix t = s.fit_transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 0.0);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  Matrix x{{0.0}, {5.0}, {10.0}};
  MinMaxScaler s;
  s.fit(x);
  const Matrix t = s.transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(t(2, 0), 1.0);
}

}  // namespace
}  // namespace lore::ml
