#include "src/ml/model_selection.hpp"

#include <gtest/gtest.h>

#include "src/ml/knn.hpp"
#include "src/ml/naive_bayes.hpp"

namespace lore::ml {
namespace {

Dataset blobs(std::size_t n, double separation, std::uint64_t seed) {
  lore::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    const double c = cls ? separation : -separation;
    const double row[] = {rng.normal(c, 1.0), rng.normal(c, 1.0)};
    d.add(row, cls);
  }
  return d;
}

TEST(CrossValidate, EasyProblemHighAccuracy) {
  const auto d = blobs(200, 2.5, 3);
  lore::Rng rng(4);
  const auto score = cross_validate([] { return std::make_unique<KnnClassifier>(5); }, d, 5,
                                    rng);
  EXPECT_EQ(score.folds, 5u);
  EXPECT_EQ(score.model, "knn");
  EXPECT_GT(score.mean_accuracy, 0.93);
  EXPECT_LT(score.stddev_accuracy, 0.12);
}

TEST(CrossValidate, ChanceLevelOnNoise) {
  lore::Rng label_rng(5);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double row[] = {label_rng.uniform(), label_rng.uniform()};
    d.add(row, label_rng.bernoulli(0.5) ? 1 : 0);
  }
  lore::Rng rng(6);
  const auto score = cross_validate(
      [] { return std::make_unique<GaussianNaiveBayes>(); }, d, 5, rng);
  EXPECT_NEAR(score.mean_accuracy, 0.5, 0.13);
}

TEST(SelectModel, RanksBestFirstAndCoversAllCandidates) {
  const auto d = blobs(240, 2.0, 7);
  lore::Rng rng(8);
  const auto candidates = standard_classifier_candidates();
  const auto scores = select_model(candidates, d, 4, rng);
  ASSERT_EQ(scores.size(), candidates.size());
  for (std::size_t i = 1; i < scores.size(); ++i)
    EXPECT_GE(scores[i - 1].mean_accuracy, scores[i].mean_accuracy);
  // On a separable problem the winner must be strong.
  EXPECT_GT(scores.front().mean_accuracy, 0.9);
}

TEST(SelectModel, DeterministicForSameRngSeed) {
  const auto d = blobs(160, 2.0, 9);
  const auto candidates = standard_classifier_candidates();
  lore::Rng rng_a(10), rng_b(10);
  const auto a = select_model(candidates, d, 4, rng_a);
  const auto b = select_model(candidates, d, 4, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_DOUBLE_EQ(a[i].mean_accuracy, b[i].mean_accuracy);
  }
}

}  // namespace
}  // namespace lore::ml
