// Cross-cutting consistency properties of the ML substrate: layer-resume
// forward passes, probability normalization across families, determinism of
// stochastic learners under a fixed seed, and batch/scalar agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/hdc.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/mlp.hpp"

namespace lore::ml {
namespace {

TEST(MlpConsistency, ForwardFromLayerMatchesFullForward) {
  Mlp net;
  net.init(4, 3, MlpConfig{.hidden = {8, 6}, .seed = 5});
  lore::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const double x[] = {rng.normal(), rng.normal(), rng.normal(), rng.normal()};
    const auto full = net.forward(x);
    const auto layers = net.forward_layers(x);
    ASSERT_EQ(layers.size(), 4u);  // input, two hidden, output
    for (std::size_t l = 0; l <= net.num_layers(); ++l) {
      const auto resumed = net.forward_from_layer(l, layers[l]);
      ASSERT_EQ(resumed.size(), full.size());
      for (std::size_t i = 0; i < full.size(); ++i)
        EXPECT_NEAR(resumed[i], full[i], 1e-12) << "layer " << l;
    }
  }
}

TEST(MlpConsistency, LayerWidthsMatchTopology) {
  Mlp net;
  net.init(5, 2, MlpConfig{.hidden = {7, 3}});
  EXPECT_EQ(net.layer_width(0), 5u);
  EXPECT_EQ(net.layer_width(1), 7u);
  EXPECT_EQ(net.layer_width(2), 3u);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.num_outputs(), 2u);
}

TEST(StochasticLearners, DeterministicUnderFixedSeed) {
  lore::Rng data_rng(7);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 150; ++i) {
    const double row[] = {data_rng.normal(i % 2 ? 1.5 : -1.5, 1.0), data_rng.normal()};
    x.push_row(row);
    y.push_back(i % 2);
  }
  for (int rep = 0; rep < 2; ++rep) {
    RandomForestClassifier a(RandomForestConfig{.num_trees = 10, .tree = {}, .seed = 99});
    RandomForestClassifier b(RandomForestConfig{.num_trees = 10, .tree = {}, .seed = 99});
    a.fit(x, y);
    b.fit(x, y);
    const double probe[] = {0.2, -0.1};
    EXPECT_EQ(a.predict_proba(probe), b.predict_proba(probe));
  }
  GradientBoostingClassifier g1(GradientBoostingClassifierConfig{.num_rounds = 15, .seed = 3});
  GradientBoostingClassifier g2(GradientBoostingClassifierConfig{.num_rounds = 15, .seed = 3});
  g1.fit(x, y);
  g2.fit(x, y);
  const double probe[] = {0.5, 0.5};
  EXPECT_EQ(g1.predict_proba(probe), g2.predict_proba(probe));
}

TEST(BatchScalarAgreement, PredictBatchMatchesScalarPredict) {
  lore::Rng rng(8);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 120; ++i) {
    const double row[] = {rng.normal(i % 2 ? 2.0 : -2.0, 1.0)};
    x.push_row(row);
    y.push_back(i % 2);
  }
  GradientBoostingClassifier model(GradientBoostingClassifierConfig{.num_rounds = 20});
  model.fit(x, y);
  const auto batch = model.predict_batch(x);
  ASSERT_EQ(batch.size(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) EXPECT_EQ(batch[i], model.predict(x.row(i)));
}

TEST(GbdtRegressor, MoreRoundsReduceTrainingError) {
  lore::Rng rng(9);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double row[] = {a};
    x.push_row(row);
    y.push_back(a * a * a + 0.3 * std::sin(5.0 * a));
  }
  GradientBoostingRegressor small(GradientBoostingRegressorConfig{.num_rounds = 5});
  GradientBoostingRegressor large(GradientBoostingRegressorConfig{.num_rounds = 120});
  small.fit(x, y);
  large.fit(x, y);
  EXPECT_LT(mse(y, large.predict_batch(x)), mse(y, small.predict_batch(x)));
}

TEST(HdcAccumulator, WeightedBundlingBiasesMajority) {
  lore::Rng rng(10);
  const std::size_t d = 4096;
  const auto a = Hypervector::random(d, rng);
  const auto b = Hypervector::random(d, rng);
  Accumulator acc(d);
  acc.add_weighted(a, 5);
  acc.add_weighted(b, 1);
  const auto bundle = acc.to_hypervector(&rng);
  EXPECT_GT(bundle.similarity(a), bundle.similarity(b));
  EXPECT_GT(bundle.similarity(a), 0.9);
}

TEST(ProbaNormalization, SurvivesExtremeInputs) {
  lore::Rng rng(11);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    const double row[] = {rng.normal(i % 3 == 0 ? 5.0 : -5.0, 0.5)};
    x.push_row(row);
    y.push_back(i % 3 == 0 ? 1 : 0);
  }
  MlpClassifier mlp(MlpConfig{.hidden = {8}, .epochs = 100});
  mlp.fit(x, y);
  const double extreme[] = {1e4};
  const auto p = mlp.predict_proba(extreme);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace lore::ml
