// Tests for the online vulnerability-prediction service (DESIGN.md §13):
// buffering and ring eviction, the validation-gated snapshot swap, seeded
// holdout determinism, every model family's predict_benign path, and the
// background trainer racing concurrent observers/scorers (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/predictor.hpp"

namespace {

using namespace lore;
using namespace lore::ml;

constexpr std::size_t kDim = 4;

/// Linearly separable observations: benign iff f0 + f1 > 0.
void feed_separable(Predictor& p, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    double f[kDim];
    for (auto& v : f) v = rng.uniform(-1.0, 1.0);
    p.observe(std::span<const double>(f, kDim), f[0] + f[1] > 0.0);
  }
}

PredictorConfig small_config(PredictorModel model) {
  PredictorConfig cfg;
  cfg.model = model;
  cfg.min_train_samples = 32;
  cfg.retrain_interval = 64;
  cfg.gbdt.num_rounds = 10;
  return cfg;
}

TEST(Predictor, NoSnapshotBeforeEnoughSamples) {
  Predictor p(small_config(PredictorModel::kGbdt));
  EXPECT_EQ(p.snapshot(), nullptr);
  EXPECT_FALSE(p.train_now());
  feed_separable(p, 31, 1);
  EXPECT_FALSE(p.train_if_due());
  EXPECT_EQ(p.version(), 0u);
}

TEST(Predictor, TrainsAndSwapsOnValidationWin) {
  for (const auto model :
       {PredictorModel::kKnn, PredictorModel::kSvm, PredictorModel::kGbdt}) {
    Predictor p(small_config(model));
    feed_separable(p, 256, 2);
    ASSERT_TRUE(p.train_now()) << predictor_model_name(model);
    const auto snap = p.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->family(), model);
    EXPECT_GE(snap->validation_accuracy(), p.config().min_validation_accuracy);
    EXPECT_GT(snap->trained_on(), 0u);
    EXPECT_EQ(snap->version(), 1u);

    // The learned rule generalizes: score fresh separable points.
    Rng rng(99);
    std::vector<double> x(64 * kDim), prob(64);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    snap->predict_benign(x.data(), 64, prob);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < 64; ++i) {
      const bool truth = x[i * kDim] + x[i * kDim + 1] > 0.0;
      correct += (prob[i] >= 0.5) == truth;
    }
    EXPECT_GE(correct, 44u) << predictor_model_name(model);  // ~0.7 accuracy floor
  }
}

TEST(Predictor, TrainIfDueHonorsRetrainInterval) {
  Predictor p(small_config(PredictorModel::kSvm));
  feed_separable(p, 256, 3);
  ASSERT_TRUE(p.train_now());
  EXPECT_EQ(p.trainings(), 1u);
  // Fewer than retrain_interval new samples: no retrain.
  feed_separable(p, 10, 4);
  EXPECT_FALSE(p.train_if_due());
  EXPECT_EQ(p.trainings(), 1u);
  feed_separable(p, 64, 5);
  p.train_if_due();  // may or may not swap, but must train
  EXPECT_EQ(p.trainings(), 2u);
}

TEST(Predictor, RingBufferEvictsOldest) {
  auto cfg = small_config(PredictorModel::kSvm);
  cfg.max_buffer = 64;
  Predictor p(cfg);
  feed_separable(p, 200, 6);
  EXPECT_EQ(p.buffered(), 64u);
  EXPECT_EQ(p.observed(), 200u);
}

TEST(Predictor, WorseCandidateNeverReplacesBetterSnapshot) {
  Predictor p(small_config(PredictorModel::kGbdt));
  feed_separable(p, 256, 7);
  ASSERT_TRUE(p.train_now());
  const auto good = p.snapshot();
  ASSERT_NE(good, nullptr);
  // Poison the buffer with pure label noise; the retrained candidate
  // validates poorly and must not go live.
  Rng rng(8);
  for (std::size_t i = 0; i < 256; ++i) {
    double f[kDim];
    for (auto& v : f) v = rng.uniform(-1.0, 1.0);
    p.observe(std::span<const double>(f, kDim), rng.uniform() < 0.5);
  }
  p.train_now();
  const auto now = p.snapshot();
  ASSERT_NE(now, nullptr);
  EXPECT_GE(now->validation_accuracy(), good->validation_accuracy());
}

TEST(Predictor, SnapshotSurvivesOwnerAdvancing) {
  Predictor p(small_config(PredictorModel::kSvm));
  feed_separable(p, 256, 9);
  ASSERT_TRUE(p.train_now());
  const auto held = p.snapshot();
  const double acc = held->validation_accuracy();
  feed_separable(p, 256, 10);
  p.train_now();
  // The old snapshot is immutable regardless of later swaps.
  EXPECT_EQ(held->validation_accuracy(), acc);
  std::vector<double> x(kDim, 0.25), prob(1);
  held->predict_benign(x.data(), 1, prob);
  EXPECT_TRUE(std::isfinite(prob[0]));
}

// The TSan race target: a background trainer thread swapping snapshots while
// observer threads feed samples and scorer threads read + use snapshots.
TEST(Predictor, BackgroundTrainerRacesObserversAndScorers) {
  Predictor p(small_config(PredictorModel::kSvm));
  feed_separable(p, 64, 11);
  p.start_background(std::chrono::milliseconds(1));
  std::atomic<bool> stop{false};

  std::thread observer([&] {
    Rng rng(12);
    while (!stop.load(std::memory_order_relaxed)) {
      double f[kDim];
      for (auto& v : f) v = rng.uniform(-1.0, 1.0);
      p.observe(std::span<const double>(f, kDim), f[0] + f[1] > 0.0);
    }
  });
  std::thread scorer([&] {
    Rng rng(13);
    std::vector<double> x(8 * kDim), prob(8);
    while (!stop.load(std::memory_order_relaxed)) {
      if (const auto snap = p.snapshot()) {
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        snap->predict_benign(x.data(), 8, prob);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  observer.join();
  scorer.join();
  p.stop_background();
  EXPECT_GE(p.trainings(), 1u);
  EXPECT_NE(p.snapshot(), nullptr);
}

TEST(Predictor, StopBackgroundIsIdempotent) {
  Predictor p(small_config(PredictorModel::kSvm));
  p.start_background(std::chrono::milliseconds(5));
  p.start_background(std::chrono::milliseconds(5));  // second start is a no-op
  p.stop_background();
  p.stop_background();
}

}  // namespace
