#include "src/ml/linear.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ml/metrics.hpp"

namespace lore::ml {
namespace {

TEST(SolveSpd, SolvesKnownSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const auto x = solve_spd(a, {1.0, 2.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-9);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-9);
}

TEST(SolveSpd, RejectsIndefinite) {
  Matrix a{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_TRUE(solve_spd(a, {1.0, 1.0}, 0.0).empty());
}

TEST(RidgeRegression, RecoversLinearFunction) {
  lore::Rng rng(100);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-2.0, 2.0), b = rng.uniform(-2.0, 2.0);
    const double row[] = {a, b};
    x.push_row(row);
    y.push_back(3.0 * a - 1.5 * b + 0.7);
  }
  RidgeRegression model(1e-8);
  model.fit(x, y);
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -1.5, 1e-6);
  EXPECT_NEAR(model.bias(), 0.7, 1e-6);
}

TEST(RidgeRegression, NoisyFitHasHighR2) {
  lore::Rng rng(101);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double row[] = {a};
    x.push_row(row);
    y.push_back(2.0 * a + rng.normal(0.0, 0.05));
  }
  RidgeRegression model;
  model.fit(x, y);
  const auto pred = model.predict_batch(x);
  EXPECT_GT(r2_score(y, pred), 0.98);
}

TEST(RidgeRegression, RegularizationShrinksWeights) {
  lore::Rng rng(102);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double row[] = {a};
    x.push_row(row);
    y.push_back(5.0 * a);
  }
  RidgeRegression weak(1e-8), strong(1e3);
  weak.fit(x, y);
  strong.fit(x, y);
  EXPECT_GT(std::abs(weak.weights()[0]), std::abs(strong.weights()[0]));
}

TEST(LogisticRegression, SeparatesLinearBlobs) {
  lore::Rng rng(103);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const int cls = i % 2;
    const double cx = cls ? 2.0 : -2.0;
    const double row[] = {rng.normal(cx, 0.7), rng.normal(cx, 0.7)};
    x.push_row(row);
    y.push_back(cls);
  }
  LogisticRegression model;
  model.fit(x, y);
  const auto pred = model.predict_batch(x);
  EXPECT_GT(accuracy(y, pred), 0.97);
}

TEST(LogisticRegression, ProbabilitiesAreCalibratedDirectionally) {
  lore::Rng rng(104);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 2;
    const double row[] = {cls ? 1.0 + rng.normal(0.0, 0.3) : -1.0 + rng.normal(0.0, 0.3)};
    x.push_row(row);
    y.push_back(cls);
  }
  LogisticRegression model;
  model.fit(x, y);
  const double far_pos[] = {3.0};
  const double far_neg[] = {-3.0};
  EXPECT_GT(model.positive_probability(far_pos), 0.95);
  EXPECT_LT(model.positive_probability(far_neg), 0.05);
  const auto proba = model.predict_proba(far_pos);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace lore::ml
