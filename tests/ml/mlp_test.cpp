#include "src/ml/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/ml/metrics.hpp"

namespace lore::ml {
namespace {

TEST(Mlp, ForwardShapeAndDeterminism) {
  Mlp net;
  net.init(3, 2, MlpConfig{.hidden = {5}, .seed = 1});
  const double x[] = {0.1, -0.2, 0.3};
  const auto a = net.forward(x);
  const auto b = net.forward(x);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a, b);
}

TEST(Mlp, ParameterCount) {
  Mlp net;
  net.init(4, 3, MlpConfig{.hidden = {8}});
  // 4*8+8 + 8*3+3 = 40 + 27 = 67.
  EXPECT_EQ(net.parameter_count(), 67u);
}

TEST(MlpRegressor, FitsLinearFunction) {
  lore::Rng rng(300);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1.0, 1.0), b = rng.uniform(-1.0, 1.0);
    const double row[] = {a, b};
    x.push_row(row);
    y.push_back(2.0 * a - b + 0.5);
  }
  MlpRegressor model(MlpConfig{.hidden = {8}, .epochs = 150});
  model.fit(x, y);
  const auto pred = model.predict_batch(x);
  EXPECT_GT(r2_score(y, pred), 0.99);
}

TEST(MlpRegressor, FitsNonlinearFunction) {
  lore::Rng rng(301);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double row[] = {a};
    x.push_row(row);
    y.push_back(std::sin(a));
  }
  MlpRegressor model(MlpConfig{.hidden = {24, 24}, .epochs = 300});
  model.fit(x, y);
  const auto pred = model.predict_batch(x);
  EXPECT_GT(r2_score(y, pred), 0.97);
}

TEST(MlpClassifier, SolvesXor) {
  lore::Rng rng(302);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double row[] = {a + rng.normal(0.0, 0.2), b + rng.normal(0.0, 0.2)};
    x.push_row(row);
    y.push_back(a * b > 0.0 ? 1 : 0);
  }
  MlpClassifier model(MlpConfig{.hidden = {12}, .epochs = 200});
  model.fit(x, y);
  EXPECT_GT(accuracy(y, model.predict_batch(x)), 0.95);
}

TEST(MlpClassifier, ThreeClassProbabilities) {
  lore::Rng rng(303);
  Matrix x;
  std::vector<int> y;
  const double centers[3] = {-4.0, 0.0, 4.0};
  for (int i = 0; i < 300; ++i) {
    const int cls = i % 3;
    const double row[] = {rng.normal(centers[cls], 0.6)};
    x.push_row(row);
    y.push_back(cls);
  }
  MlpClassifier model(MlpConfig{.hidden = {16}, .epochs = 200});
  model.fit(x, y);
  const double probe[] = {-4.0};
  const auto p = model.predict_proba(probe);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_GT(p[0], 0.8);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MlpVectorRegressor, MultiOutput) {
  lore::Rng rng(304);
  Matrix x, y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double row[] = {a};
    x.push_row(row);
    const double t[] = {a, -a, 2.0 * a};
    y.push_row(t);
  }
  MlpVectorRegressor model(MlpConfig{.hidden = {16}, .epochs = 200});
  model.fit(x, y);
  const double probe[] = {0.5};
  const auto out = model.predict(probe);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0], 0.5, 0.1);
  EXPECT_NEAR(out[1], -0.5, 0.1);
  EXPECT_NEAR(out[2], 1.0, 0.15);
}

TEST(Mlp, TanhActivationAlsoLearns) {
  lore::Rng rng(305);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double row[] = {a};
    x.push_row(row);
    y.push_back(a * a);
  }
  MlpRegressor model(MlpConfig{.hidden = {16}, .activation = Activation::kTanh,
                               .epochs = 250});
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict_batch(x)), 0.95);
}

}  // namespace
}  // namespace lore::ml
