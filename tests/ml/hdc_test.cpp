#include "src/ml/hdc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"

namespace lore::ml {
namespace {

TEST(Hypervector, RandomIsNearOrthogonal) {
  lore::Rng rng(500);
  const auto a = Hypervector::random(8192, rng);
  const auto b = Hypervector::random(8192, rng);
  EXPECT_NEAR(a.similarity(b), 0.0, 0.05);
  EXPECT_DOUBLE_EQ(a.similarity(a), 1.0);
}

TEST(Hypervector, BindIsSelfInverse) {
  lore::Rng rng(501);
  const auto a = Hypervector::random(2048, rng);
  const auto key = Hypervector::random(2048, rng);
  const auto bound = a.bind(key);
  EXPECT_DOUBLE_EQ(bound.bind(key).similarity(a), 1.0);
  // Binding decorrelates.
  EXPECT_NEAR(bound.similarity(a), 0.0, 0.08);
}

TEST(Hypervector, PermuteIsCyclic) {
  lore::Rng rng(502);
  const auto a = Hypervector::random(128, rng);
  EXPECT_DOUBLE_EQ(a.permute(128).similarity(a), 1.0);
  EXPECT_DOUBLE_EQ(a.permute(5).permute(123).similarity(a), 1.0);
  EXPECT_NEAR(a.permute(1).similarity(a), 0.0, 0.25);
}

TEST(Hypervector, ComponentErrorsReduceSimilarityLinearly) {
  lore::Rng rng(503);
  const auto a = Hypervector::random(8192, rng);
  const auto noisy = a.with_component_errors(0.25, rng);
  // Expected similarity = 1 - 2p.
  EXPECT_NEAR(noisy.similarity(a), 0.5, 0.05);
}

TEST(Accumulator, MajorityBundlingPreservesMembers) {
  lore::Rng rng(504);
  const std::size_t d = 8192;
  Accumulator acc(d);
  std::vector<Hypervector> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(Hypervector::random(d, rng));
    acc.add(members.back());
  }
  const auto bundle = acc.to_hypervector(&rng);
  const auto stranger = Hypervector::random(d, rng);
  for (const auto& m : members) EXPECT_GT(bundle.similarity(m), 0.25);
  EXPECT_NEAR(bundle.similarity(stranger), 0.0, 0.05);
}

TEST(ItemMemory, StableAndDistinct) {
  ItemMemory mem(2048, 505);
  const auto& a1 = mem.get(7);
  const auto& a2 = mem.get(7);
  EXPECT_DOUBLE_EQ(a1.similarity(a2), 1.0);
  const auto& b = mem.get(8);
  EXPECT_NEAR(a1.similarity(b), 0.0, 0.1);
}

TEST(LevelEncoder, AdjacentLevelsCorrelated) {
  LevelEncoder enc(8192, 16, 0.0, 1.0, 506);
  const auto& lo = enc.encode(0.0);
  const auto& next = enc.encode(1.0 / 16.0 + 0.001);
  const auto& hi = enc.encode(1.0);
  EXPECT_GT(lo.similarity(next), 0.8);
  EXPECT_LT(lo.similarity(hi), 0.2);
}

TEST(LevelEncoder, MonotoneSimilarityDecay) {
  LevelEncoder enc(8192, 32, 0.0, 1.0, 507);
  const auto& base = enc.encode(0.0);
  double prev = 1.1;
  for (double v : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double s = base.similarity(enc.encode(v));
    EXPECT_LT(s, prev + 1e-9);
    prev = s;
  }
}

RecordEncoder make_encoder() {
  return RecordEncoder({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}},
                       RecordEncoderConfig{.dim = 4096, .levels = 16});
}

TEST(HdcClassifier, LearnsBlobSeparation) {
  const auto enc = make_encoder();
  lore::Rng rng(508);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 2;
    const double base = cls ? 0.75 : 0.25;
    x.push_back({base + rng.normal(0.0, 0.05), base + rng.normal(0.0, 0.05),
                 base + rng.normal(0.0, 0.05)});
    y.push_back(cls);
  }
  HdcClassifier clf(&enc);
  clf.fit(x, y);
  int hits = 0;
  for (std::size_t i = 0; i < x.size(); ++i) hits += clf.predict(x[i]) == y[i];
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(x.size()), 0.95);
}

TEST(HdcClassifier, RobustToLargeComponentErrorRate) {
  // The paper's headline HDC claim: huge component error rates barely move
  // the accuracy.
  const auto enc = make_encoder();
  lore::Rng rng(509);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 2;
    const double base = cls ? 0.8 : 0.2;
    x.push_back({base + rng.normal(0.0, 0.04), base + rng.normal(0.0, 0.04),
                 base + rng.normal(0.0, 0.04)});
    y.push_back(cls);
  }
  HdcClassifier clf(&enc);
  clf.fit(x, y);
  lore::Rng noise(510);
  int clean_hits = 0, noisy_hits = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    clean_hits += clf.predict(x[i]) == y[i];
    noisy_hits += clf.predict(x[i], 0.3, &noise) == y[i];
  }
  EXPECT_GE(noisy_hits, clean_hits - 10);  // <= 5% degradation at 30% errors
}

TEST(HdcRegressor, ApproximatesSmoothFunction) {
  const auto enc = RecordEncoder({{0.0, 1.0}}, RecordEncoderConfig{.dim = 4096, .levels = 32});
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double v = static_cast<double>(i) / 400.0;
    x.push_back({v});
    y.push_back(2.0 * v + 1.0);
  }
  HdcRegressor reg(&enc);
  reg.fit(x, y);
  double worst = 0.0;
  for (double v : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double pred = reg.predict(std::vector<double>{v});
    worst = std::max(worst, std::abs(pred - (2.0 * v + 1.0)));
  }
  EXPECT_LT(worst, 0.25);
}

}  // namespace
}  // namespace lore::ml
