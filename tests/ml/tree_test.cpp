#include "src/ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/metrics.hpp"

namespace lore::ml {
namespace {

TEST(DecisionTree, AxisAlignedSplitIsExact) {
  // y = 1 iff x0 > 0: one split suffices.
  Matrix x;
  std::vector<int> y;
  lore::Rng rng(200);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    const double row[] = {v, rng.uniform(-1.0, 1.0)};
    x.push_row(row);
    y.push_back(v > 0.0 ? 1 : 0);
  }
  DecisionTreeClassifier tree(TreeConfig{.max_depth = 3, .min_samples_leaf = 1,
                                         .min_samples_split = 2});
  tree.fit(x, y);
  const auto pred = tree.predict_batch(x);
  EXPECT_DOUBLE_EQ(accuracy(y, pred), 1.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  lore::Rng rng(201);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const double row[] = {rng.uniform(0.0, 1.0)};
    x.push_row(row);
    y.push_back(rng.bernoulli(0.5) ? 1 : 0);  // pure noise forces deep splits
  }
  DecisionTree t;
  t.fit_classifier(x, y, {}, 2, TreeConfig{.max_depth = 3, .min_samples_leaf = 1,
                                           .min_samples_split = 2});
  EXPECT_LE(t.depth(), 3u);
}

TEST(DecisionTree, PureNodeStopsEarly) {
  Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<int> y{1, 1, 1, 1};
  DecisionTree t;
  t.fit_classifier(x, y, {}, 2, TreeConfig{});
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(DecisionTree, WeightedSamplesShiftSplit) {
  // Two class-1 points vs eight class-0 points; huge weights on class 1
  // should make the root distribution majority class 1.
  Matrix x;
  std::vector<int> y;
  std::vector<double> w;
  for (int i = 0; i < 8; ++i) {
    const double row[] = {static_cast<double>(i)};
    x.push_row(row);
    y.push_back(0);
    w.push_back(1.0);
  }
  for (int i = 0; i < 2; ++i) {
    const double row[] = {static_cast<double>(100 + i)};
    x.push_row(row);
    y.push_back(1);
    w.push_back(100.0);
  }
  DecisionTree t;
  t.fit_classifier(x, y, w, 2, TreeConfig{.max_depth = 0});  // leaf only
  const double probe[] = {50.0};
  const auto dist = t.leaf_distribution(probe);
  EXPECT_GT(dist[1], dist[0]);
}

TEST(DecisionTreeRegressor, FitsPiecewiseConstant) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const double v = static_cast<double>(i) / 60.0;
    const double row[] = {v};
    x.push_row(row);
    y.push_back(v < 0.5 ? 1.0 : 5.0);
  }
  DecisionTreeRegressor tree(TreeConfig{.max_depth = 2, .min_samples_leaf = 1,
                                        .min_samples_split = 2});
  tree.fit(x, y);
  const double lo[] = {0.2};
  const double hi[] = {0.9};
  EXPECT_NEAR(tree.predict(lo), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict(hi), 5.0, 1e-9);
}

TEST(DecisionTreeRegressor, SmoothFunctionApproximation) {
  lore::Rng rng(202);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    const double row[] = {v};
    x.push_row(row);
    y.push_back(std::sin(6.28 * v));
  }
  DecisionTreeRegressor tree(TreeConfig{.max_depth = 8, .min_samples_leaf = 2});
  tree.fit(x, y);
  const auto pred = tree.predict_batch(x);
  EXPECT_GT(r2_score(y, pred), 0.95);
}

TEST(GradientBoostingRegressor, BeatsSingleTreeOnSmoothTarget) {
  lore::Rng rng(203);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1.0, 1.0), b = rng.uniform(-1.0, 1.0);
    const double row[] = {a, b};
    x.push_row(row);
    y.push_back(a * a + std::sin(3.0 * b));
  }
  DecisionTreeRegressor single(TreeConfig{.max_depth = 3});
  single.fit(x, y);
  GradientBoostingRegressor gb(GradientBoostingRegressorConfig{.num_rounds = 120});
  gb.fit(x, y);
  const auto pred_single = single.predict_batch(x);
  const auto pred_gb = gb.predict_batch(x);
  EXPECT_LT(mse(y, pred_gb), mse(y, pred_single));
  EXPECT_GT(r2_score(y, pred_gb), 0.95);
}

TEST(RandomForest, MoreTreesNotWorse) {
  lore::Rng rng(204);
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1.0, 1.0), b = rng.uniform(-1.0, 1.0);
    const double row[] = {a, b};
    x.push_row(row);
    y.push_back(a * b > 0.0 ? 1 : 0);
  }
  lore::Rng split_rng(205);
  Dataset d;
  d.x = x;
  d.labels = y;
  const auto [train, test] = train_test_split(d, 0.3, split_rng);

  RandomForestClassifier small(RandomForestConfig{.num_trees = 1, .tree = {}});
  RandomForestClassifier big(RandomForestConfig{.num_trees = 40, .tree = {}});
  small.fit(train.x, train.labels);
  big.fit(train.x, train.labels);
  const double acc_small = accuracy(test.labels, small.predict_batch(test.x));
  const double acc_big = accuracy(test.labels, big.predict_batch(test.x));
  EXPECT_GE(acc_big, acc_small - 0.02);
  EXPECT_GT(acc_big, 0.85);
}

TEST(AdaBoost, BoostsWeakStumps) {
  // Nested intervals: single depth-1 stump gets ~2/3; boosting should fix it.
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const double v = static_cast<double>(i) / 300.0;
    const double row[] = {v};
    x.push_row(row);
    y.push_back((v > 0.33 && v < 0.66) ? 1 : 0);
  }
  DecisionTreeClassifier stump(TreeConfig{.max_depth = 1});
  stump.fit(x, y);
  AdaBoostClassifier boosted(AdaBoostConfig{.num_rounds = 40, .tree = {.max_depth = 1}});
  boosted.fit(x, y);
  const double acc_stump = accuracy(y, stump.predict_batch(x));
  const double acc_boost = accuracy(y, boosted.predict_batch(x));
  EXPECT_GT(acc_boost, acc_stump);
  EXPECT_GT(acc_boost, 0.95);
}

TEST(GradientBoostingClassifier, MulticlassBlobs) {
  lore::Rng rng(206);
  Matrix x;
  std::vector<int> y;
  const double centers[3][2] = {{-3.0, -3.0}, {3.0, -3.0}, {0.0, 3.0}};
  for (int i = 0; i < 300; ++i) {
    const int cls = i % 3;
    const double row[] = {rng.normal(centers[cls][0], 0.7), rng.normal(centers[cls][1], 0.7)};
    x.push_row(row);
    y.push_back(cls);
  }
  GradientBoostingClassifier gb(GradientBoostingClassifierConfig{.num_rounds = 30});
  gb.fit(x, y);
  EXPECT_GT(accuracy(y, gb.predict_batch(x)), 0.95);
}

}  // namespace
}  // namespace lore::ml
