// Differential suite for the batched ML inference hot path (DESIGN.md §13):
// the panel kernels (pack / multi-query blocked L2 / top-k), the row-major
// kernels (interleaved dot / tree-ensemble traversal), and the knn / svm /
// gbdt predict_batch overrides must be bit-identical to the per-sample
// reference loops — across dispatch modes (scalar vs AVX2), thread counts,
// and adversarial sizes around the panel and vector widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/kernels.hpp"
#include "src/common/rng.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::ml;

// Below / at / above the 4-row panel width and the 4-lane vector width, plus
// a large size not a multiple of either.
constexpr std::size_t kRowCounts[] = {1, 63, 64, 65, 4095};

/// Restore the process-wide dispatch override on scope exit.
class DispatchGuard {
 public:
  DispatchGuard() : saved_(kernels::active_dispatch()) {}
  ~DispatchGuard() { kernels::set_dispatch(saved_); }

 private:
  kernels::Dispatch saved_;
};

bool avx2_available() {
  DispatchGuard guard;
  kernels::set_dispatch(kernels::Dispatch::kAvx2);
  return kernels::active_dispatch() == kernels::Dispatch::kAvx2;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-3.0, 3.0);
  return v;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  const auto v = random_doubles(rows * cols, seed);
  std::copy(v.begin(), v.end(), m.flat().begin());
  return m;
}

std::vector<int> random_labels(std::size_t n, int classes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> y(n);
  for (auto& l : y) l = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(classes)));
  return y;
}

// ---------------------------------------------------------------------------
// Kernel-level differentials: avx2 variant == scalar reference, bitwise.

TEST(PanelLayout, PackRoundTrips) {
  for (const std::size_t rows : kRowCounts) {
    const std::size_t cols = 7;
    const auto src = random_doubles(rows * cols, 11 + rows);
    std::vector<double> panel(kernels::panel_size(rows, cols), -1.0);
    kernels::pack_row_panels(panel, src.data(), rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        ASSERT_EQ(panel[kernels::panel_index(r, c, cols)], src[r * cols + c]);
    // Tail lanes are zero-padded.
    for (std::size_t r = rows; r < kernels::panel_rows_padded(rows); ++r)
      for (std::size_t c = 0; c < cols; ++c)
        ASSERT_EQ(panel[kernels::panel_index(r, c, cols)], 0.0);
  }
}

TEST(BlockedKernels, L2MultiQueryMatchesScalarBitwise) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;
  for (const std::size_t rows : kRowCounts) {
    for (const std::size_t cols : {1u, 13u, 32u}) {
      const auto src = random_doubles(rows * cols, 100 + rows + cols);
      std::vector<double> panel(kernels::panel_size(rows, cols));
      kernels::pack_row_panels(panel, src.data(), rows, cols);
      // Every query-tile width the kNN hot loop can issue.
      for (std::size_t qn = 1; qn <= kernels::kPanelLanes; ++qn) {
        const auto q = random_doubles(qn * cols, 7 + cols + qn);
        std::vector<double> ref(qn * rows), simd(qn * rows);
        kernels::scalar::l2_sq_blocked(ref, q.data(), qn, panel, rows, cols);
        kernels::set_dispatch(kernels::Dispatch::kAvx2);
        kernels::l2_sq_blocked(simd, q.data(), qn, panel, rows, cols);
        kernels::set_dispatch(kernels::Dispatch::kScalar);
        ASSERT_EQ(ref, simd) << "rows=" << rows << " cols=" << cols << " qn=" << qn;

        // The blocked scalar kernel itself must equal the flat reference.
        for (std::size_t qi = 0; qi < qn; ++qi) {
          const std::span<const double> qv(q.data() + qi * cols, cols);
          for (std::size_t r = 0; r < rows; ++r) {
            const std::span<const double> row(src.data() + r * cols, cols);
            ASSERT_EQ(ref[qi * rows + r], kernels::l2_distance_sq(row, qv));
          }
        }
      }
    }
  }
}

TEST(BlockedKernels, DotRowsMatchesFlatReference) {
  // dot_rows is scalar-only by design (see kernels.hpp); the contract is
  // bitwise equality with the sequential `dot` reference, including the
  // sub-4-row remainder.
  for (const std::size_t rows : kRowCounts) {
    for (const std::size_t cols : {1u, 13u, 32u}) {
      const auto src = random_doubles(rows * cols, 200 + rows + cols);
      const auto w = random_doubles(cols, 17 + cols);
      std::vector<double> out(rows);
      kernels::dot_rows(out, w, src.data(), rows, cols);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::span<const double> row(src.data() + r * cols, cols);
        ASSERT_EQ(out[r], kernels::dot(w, row)) << "rows=" << rows << " r=" << r;
      }
    }
  }
}

TEST(BlockedKernels, TopKMatchesScalarExactly) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{5}, n}) {
      if (k > n) continue;
      auto values = random_doubles(n, 1000 + n + k);
      // Duplicates force the (value, index) tie-break order.
      for (std::size_t i = 0; i + 4 < n; i += 5) values[i] = values[0];
      std::vector<std::uint32_t> ref(k), simd(k);
      kernels::scalar::top_k_select(values, ref);
      kernels::set_dispatch(kernels::Dispatch::kAvx2);
      kernels::top_k_select(values, simd);
      kernels::set_dispatch(kernels::Dispatch::kScalar);
      ASSERT_EQ(ref, simd) << "n=" << n << " k=" << k;
      // Reference semantics: the k smallest under (value, index) lex order.
      std::vector<std::uint32_t> brute(n);
      for (std::size_t i = 0; i < n; ++i) brute[i] = static_cast<std::uint32_t>(i);
      std::sort(brute.begin(), brute.end(), [&](std::uint32_t a, std::uint32_t b) {
        return values[a] < values[b] || (values[a] == values[b] && a < b);
      });
      brute.resize(k);
      ASSERT_EQ(ref, brute) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BlockedKernels, TreeAccumulateRowsMatchesReference) {
  const std::size_t cols = 9;
  // A small trained forest exercises realistic shapes (leaves at varying
  // depths, shared features) — the lanes of the interleaved walk diverge.
  const auto x = random_matrix(300, cols, 77);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i)
    y[i] = x(i, 2) * 1.5 - x(i, 5) + (x(i, 0) > 0 ? 2.0 : -1.0);
  kernels::TreeSoa forest;
  std::vector<DecisionTree> trees(7);
  for (int t = 0; t < 7; ++t) {
    std::vector<double> shifted(y);
    for (auto& v : shifted) v += t;
    trees[static_cast<std::size_t>(t)].fit_regressor(x, shifted, TreeConfig{.max_depth = 4});
    trees[static_cast<std::size_t>(t)].pack_into(forest);
  }
  ASSERT_EQ(forest.tree_count(), 7u);

  for (const std::size_t rows : kRowCounts) {
    const auto src = random_doubles(rows * cols, 500 + rows);
    std::vector<double> out(rows, 0.5);
    kernels::tree_accumulate_rows(out, forest, src.data(), rows, cols, 0.1);
    // Bitwise equality with the per-sample accumulation sequence
    // (init + sum of scale * predict_value in forest order).
    for (std::size_t r = 0; r < rows; ++r) {
      const std::span<const double> row(src.data() + r * cols, cols);
      double ref = 0.5;
      for (const auto& tree : trees) ref += 0.1 * tree.predict_value(row);
      ASSERT_EQ(out[r], ref) << "rows=" << rows << " r=" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Model-level differentials: predict_batch == per-sample predict loop, under
// every dispatch and thread count.

std::vector<unsigned> thread_counts() {
  std::vector<unsigned> t{1, 4};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 1 && hw != 4) t.push_back(hw);
  return t;
}

template <typename Model>
void expect_batch_matches_reference(const Model& model, const Matrix& queries) {
  std::vector<int> ref(queries.rows());
  for (std::size_t r = 0; r < queries.rows(); ++r) ref[r] = model.predict(queries.row(r));

  DispatchGuard guard;
  std::vector<kernels::Dispatch> modes{kernels::Dispatch::kScalar};
  if (avx2_available()) modes.push_back(kernels::Dispatch::kAvx2);
  for (const auto mode : modes) {
    kernels::set_dispatch(mode);
    ASSERT_EQ(model.predict_batch(queries), ref)
        << "dispatch=" << kernels::dispatch_name(mode) << " rows=" << queries.rows();
  }
}

TEST(PredictBatch, KnnMatchesReference) {
  const std::size_t cols = 6;
  const auto train = random_matrix(400, cols, 21);
  const auto labels = random_labels(400, 3, 22);
  KnnClassifier knn(5);
  knn.fit(train, labels);
  for (const std::size_t rows : kRowCounts)
    expect_batch_matches_reference(knn, random_matrix(rows, cols, 900 + rows));
}

TEST(PredictBatch, SvmMatchesReference) {
  const std::size_t cols = 8;
  const auto train = random_matrix(300, cols, 31);
  const auto labels = random_labels(300, 2, 32);
  LinearSvm svm;
  svm.fit(train, labels);
  for (const std::size_t rows : kRowCounts)
    expect_batch_matches_reference(svm, random_matrix(rows, cols, 910 + rows));
}

TEST(PredictBatch, GbdtBinaryMatchesReference) {
  const std::size_t cols = 7;
  const auto train = random_matrix(300, cols, 41);
  const auto labels = random_labels(300, 2, 42);
  GradientBoostingClassifier gbdt(GradientBoostingClassifierConfig{.num_rounds = 15});
  gbdt.fit(train, labels);
  for (const std::size_t rows : kRowCounts)
    expect_batch_matches_reference(gbdt, random_matrix(rows, cols, 920 + rows));
}

TEST(PredictBatch, GbdtMulticlassMatchesReference) {
  const std::size_t cols = 5;
  const auto train = random_matrix(300, cols, 51);
  const auto labels = random_labels(300, 4, 52);
  GradientBoostingClassifier gbdt(GradientBoostingClassifierConfig{.num_rounds = 10});
  gbdt.fit(train, labels);
  for (const std::size_t rows : kRowCounts)
    expect_batch_matches_reference(gbdt, random_matrix(rows, cols, 930 + rows));
}

TEST(PredictBatch, ThreadCountDoesNotChangeResults) {
  const std::size_t cols = 6;
  const auto train = random_matrix(400, cols, 61);
  const auto labels = random_labels(400, 2, 62);
  KnnClassifier knn(5);
  LinearSvm svm;
  GradientBoostingClassifier gbdt(GradientBoostingClassifierConfig{.num_rounds = 12});
  knn.fit(train, labels);
  svm.fit(train, labels);
  gbdt.fit(train, labels);

  const std::size_t rows = 4095;
  const auto queries = random_matrix(rows, cols, 63);
  std::vector<int> knn1(rows);
  std::vector<double> svm1(rows), gbdt1(rows);
  knn.predict_batch(queries.flat().data(), rows, knn1, 1);
  svm.decision_batch(queries.flat().data(), rows, svm1, 1);
  gbdt.margin_batch(0, queries.flat().data(), rows, gbdt1, 1);
  for (const unsigned threads : thread_counts()) {
    std::vector<int> knn_t(rows);
    std::vector<double> svm_t(rows), gbdt_t(rows);
    knn.predict_batch(queries.flat().data(), rows, knn_t, threads);
    svm.decision_batch(queries.flat().data(), rows, svm_t, threads);
    gbdt.margin_batch(0, queries.flat().data(), rows, gbdt_t, threads);
    ASSERT_EQ(knn1, knn_t) << "threads=" << threads;
    ASSERT_EQ(svm1, svm_t) << "threads=" << threads;
    ASSERT_EQ(gbdt1, gbdt_t) << "threads=" << threads;
  }
}

TEST(PredictBatch, KnnScratchReuseMatchesLegacyPredict) {
  const std::size_t cols = 6;
  const auto train = random_matrix(200, cols, 71);
  const auto labels = random_labels(200, 3, 72);
  KnnClassifier knn(3);
  knn.fit(train, labels);
  KnnScratch scratch;
  for (std::size_t r = 0; r < 50; ++r) {
    const auto q = random_doubles(cols, 800 + r);
    ASSERT_EQ(knn.predict(q, scratch), knn.predict(q));
    ASSERT_EQ(knn.predict_proba(q, scratch), knn.predict_proba(q));
  }
}

}  // namespace
