// Differential suite for the bit-packed HDC engine: every word-parallel
// kernel must be bit-identical to the scalar reference in src/ml/hdc_ref for
// the same seed — including dims that are not multiples of 64 (tail-bit
// masking) and the RNG tie-break stream of Accumulator::to_hypervector.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/common/kernels.hpp"
#include "src/common/rng.hpp"
#include "src/ml/hdc.hpp"
#include "src/ml/hdc_ref.hpp"

namespace lore::ml {
namespace {

// The acceptance dims: word-aligned, tail-bit, production, and prime.
const std::size_t kDims[] = {64, 100, 4096, 8191};

/// Restores the engine mode on scope exit so a failing test cannot leak
/// scalar-reference mode into later tests.
class ScopedScalarMode {
 public:
  explicit ScopedScalarMode(bool on) : saved_(hdc_scalar_reference_mode()) {
    set_hdc_scalar_reference_mode(on);
  }
  ~ScopedScalarMode() { set_hdc_scalar_reference_mode(saved_); }

 private:
  bool saved_;
};

void expect_equal(const Hypervector& packed, const hdcref::Components& ref,
                  std::size_t dim) {
  ASSERT_EQ(packed.dim(), dim);
  ASSERT_EQ(ref.size(), dim);
  for (std::size_t i = 0; i < dim; ++i)
    ASSERT_EQ(packed[i], ref[i]) << "component " << i << " of dim " << dim;
}

void expect_zero_tail(const Hypervector& hv) {
  if (hv.dim() == 0) return;
  const auto words = hv.words();
  ASSERT_EQ(words.size(), kernels::word_count(hv.dim()));
  EXPECT_EQ(words[words.size() - 1] & ~kernels::tail_mask(hv.dim()), 0u)
      << "tail bits must stay zero at dim " << hv.dim();
}

TEST(HdcPacked, RandomMatchesScalarStream) {
  for (const std::size_t dim : kDims) {
    lore::Rng packed_rng(900), ref_rng(900);
    const auto packed = Hypervector::random(dim, packed_rng);
    const auto ref = hdcref::random(dim, ref_rng);
    expect_equal(packed, ref, dim);
    expect_zero_tail(packed);
    // Both sides must have consumed the identical number of draws.
    EXPECT_EQ(packed_rng.next_u64(), ref_rng.next_u64());
  }
}

TEST(HdcPacked, PackUnpackRoundTrip) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(901);
    const auto ref = hdcref::random(dim, rng);
    const auto packed = Hypervector::pack(ref);
    expect_zero_tail(packed);
    EXPECT_EQ(packed.unpack(), ref);
    EXPECT_TRUE(packed == Hypervector::pack(ref));
  }
}

TEST(HdcPacked, BindMatchesScalar) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(902);
    const auto a = hdcref::random(dim, rng);
    const auto b = hdcref::random(dim, rng);
    const auto packed = Hypervector::pack(a).bind(Hypervector::pack(b));
    expect_equal(packed, hdcref::bind(a, b), dim);
    expect_zero_tail(packed);
  }
}

TEST(HdcPacked, PermuteMatchesScalar) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(903);
    const auto a = hdcref::random(dim, rng);
    const auto packed = Hypervector::pack(a);
    for (const std::size_t k :
         {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, dim - 1, dim, dim + 7, 3 * dim + 129}) {
      const auto rotated = packed.permute(k);
      expect_equal(rotated, hdcref::permute(a, k), dim);
      expect_zero_tail(rotated);
    }
  }
}

TEST(HdcPacked, SimilarityAndHammingBitIdentical) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(904);
    const auto a = hdcref::random(dim, rng);
    const auto b = hdcref::random(dim, rng);
    const auto pa = Hypervector::pack(a), pb = Hypervector::pack(b);
    // Exact double equality: the packed path must evaluate the same final
    // division expression the scalar loop does.
    EXPECT_EQ(pa.similarity(pb), hdcref::similarity(a, b)) << "dim " << dim;
    EXPECT_EQ(pa.hamming(pb), hdcref::hamming(a, b)) << "dim " << dim;
    EXPECT_EQ(pa.similarity(pa), 1.0);
    EXPECT_EQ(pa.hamming(pa), 0.0);
  }
}

TEST(HdcPacked, ComponentErrorsMatchScalarStream) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(905);
    const auto a = hdcref::random(dim, rng);
    const auto pa = Hypervector::pack(a);
    for (const double p : {0.0, 0.1, 0.4}) {
      lore::Rng packed_noise(906), ref_noise(906);
      const auto noisy = pa.with_component_errors(p, packed_noise);
      expect_equal(noisy, hdcref::with_component_errors(a, p, ref_noise), dim);
      expect_zero_tail(noisy);
      EXPECT_EQ(packed_noise.next_u64(), ref_noise.next_u64());
    }
  }
}

TEST(HdcPacked, AccumulatorSumsMatchScalar) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(907);
    Accumulator acc(dim);
    std::vector<std::int32_t> ref_sums(dim, 0);
    for (const int weight : {1, 1, -2, 5, 1}) {
      const auto v = hdcref::random(dim, rng);
      acc.add_weighted(Hypervector::pack(v), weight);
      hdcref::accumulate(ref_sums, v, weight);
    }
    ASSERT_EQ(acc.sums().size(), ref_sums.size());
    for (std::size_t i = 0; i < dim; ++i) EXPECT_EQ(acc.sums()[i], ref_sums[i]);
  }
}

TEST(HdcPacked, ThresholdTieBreakMatchesScalarRngStream) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(908);
    // An even number of ±1 vectors guarantees a dense supply of zero sums,
    // exercising the tie-break draw on a large fraction of components.
    Accumulator acc(dim);
    std::vector<std::int32_t> ref_sums(dim, 0);
    for (int n = 0; n < 2; ++n) {
      const auto v = hdcref::random(dim, rng);
      acc.add(Hypervector::pack(v));
      hdcref::accumulate(ref_sums, v, 1);
    }
    std::size_t ties = 0;
    for (const auto s : ref_sums) ties += s == 0;
    ASSERT_GT(ties, dim / 8) << "tie-break path under-exercised at dim " << dim;

    lore::Rng packed_tie(909), ref_tie(909);
    expect_equal(acc.to_hypervector(&packed_tie),
                 hdcref::threshold(ref_sums, &ref_tie), dim);
    EXPECT_EQ(packed_tie.next_u64(), ref_tie.next_u64());
    // Null-rng ties resolve to -1 on both paths.
    expect_equal(acc.to_hypervector(nullptr), hdcref::threshold(ref_sums, nullptr), dim);
  }
}

TEST(HdcPacked, ComponentRefWritesThroughProxy) {
  Hypervector hv(100);
  hv[3] = -1;
  hv[99] = static_cast<std::int8_t>(-hv[99]);
  EXPECT_EQ(hv[3], -1);
  EXPECT_EQ(hv[99], -1);
  hv[3] = 1;
  EXPECT_EQ(hv[3], 1);
  expect_zero_tail(hv);
}

std::vector<std::vector<double>> blob_inputs(std::size_t n, lore::Rng& rng) {
  std::vector<std::vector<double>> x;
  for (std::size_t i = 0; i < n; ++i) {
    const double base = (i % 2) ? 0.75 : 0.25;
    x.push_back({base + rng.normal(0.0, 0.05), base + rng.normal(0.0, 0.05),
                 base + rng.normal(0.0, 0.05)});
  }
  return x;
}

TEST(HdcPacked, ClassifierMatchesScalarReferenceMode) {
  lore::Rng rng(910);
  const auto x = blob_inputs(120, rng);
  std::vector<int> y;
  for (std::size_t i = 0; i < x.size(); ++i) y.push_back(static_cast<int>(i % 2));

  auto run = [&](bool scalar) {
    ScopedScalarMode mode(scalar);
    RecordEncoder enc({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}},
                      RecordEncoderConfig{.dim = 1000, .levels = 16});
    HdcClassifier clf(&enc, HdcClassifierConfig{.threads = 1});
    clf.fit(x, y);
    std::vector<int> preds;
    lore::Rng noise(911);
    for (const auto& row : x) preds.push_back(clf.predict(row, 0.2, &noise));
    return preds;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(HdcPacked, RegressorMatchesScalarReferenceMode) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(i) / 200.0;
    x.push_back({v});
    y.push_back(2.0 * v + 1.0);
  }
  auto run = [&](bool scalar) {
    ScopedScalarMode mode(scalar);
    RecordEncoder enc({{0.0, 1.0}}, RecordEncoderConfig{.dim = 1000, .levels = 24});
    HdcRegressor reg(&enc, HdcRegressorConfig{.threads = 1});
    reg.fit(x, y);
    std::vector<double> preds;
    for (const auto& row : x) preds.push_back(reg.predict(row));
    return preds;
  };
  const auto packed = run(false), scalar = run(true);
  ASSERT_EQ(packed.size(), scalar.size());
  for (std::size_t i = 0; i < packed.size(); ++i)
    EXPECT_EQ(packed[i], scalar[i]) << "query " << i;  // bit-identical doubles
}

TEST(HdcPackedKernels, RotateLeftBitsAgainstNaive) {
  for (const std::size_t dim : kDims) {
    lore::Rng rng(912);
    const auto ref = hdcref::random(dim, rng);
    const auto packed = Hypervector::pack(ref);
    std::vector<std::uint64_t> out(kernels::word_count(dim), ~0ULL);
    for (const std::size_t k : {std::size_t{0}, std::size_t{17}, dim / 2, dim - 1}) {
      kernels::rotate_left_bits(out, packed.words(), dim, k);
      for (std::size_t i = 0; i < dim; ++i) {
        const bool bit = (out[(i + k) % dim / kernels::kWordBits] >>
                          ((i + k) % dim % kernels::kWordBits)) & 1;
        ASSERT_EQ(bit, ref[i] < 0) << "dim " << dim << " k " << k << " i " << i;
      }
    }
  }
}

}  // namespace
}  // namespace lore::ml
