#include "src/ml/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.hpp"

namespace lore::ml {
namespace {

Matrix three_blobs(std::size_t per_cluster, std::uint64_t seed) {
  lore::Rng rng(seed);
  Matrix x;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const double row[] = {rng.normal(centers[c][0], 0.5), rng.normal(centers[c][1], 0.5)};
      x.push_row(row);
    }
  return x;
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  const auto x = three_blobs(50, 400);
  KMeans km(KMeansConfig{.k = 3});
  km.fit(x);
  const auto labels = km.assign_batch(x);
  // Each true cluster (contiguous block of 50) should map to a single label.
  for (int c = 0; c < 3; ++c) {
    std::set<std::size_t> in_cluster;
    for (std::size_t i = 0; i < 50; ++i) in_cluster.insert(labels[static_cast<std::size_t>(c) * 50 + i]);
    EXPECT_EQ(in_cluster.size(), 1u) << "cluster " << c << " fragmented";
  }
  // And the three labels must be distinct.
  std::set<std::size_t> reps{labels[0], labels[50], labels[100]};
  EXPECT_EQ(reps.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const auto x = three_blobs(40, 401);
  KMeans k1(KMeansConfig{.k = 1});
  KMeans k3(KMeansConfig{.k = 3});
  k1.fit(x);
  k3.fit(x);
  EXPECT_LT(k3.inertia(), k1.inertia());
}

TEST(KMeans, AssignPicksNearestCentroid) {
  const auto x = three_blobs(30, 402);
  KMeans km(KMeansConfig{.k = 3});
  km.fit(x);
  const double probe[] = {10.0, 0.0};
  const auto cluster = km.assign(probe);
  const auto& c = km.centroids();
  EXPECT_NEAR(c(cluster, 0), 10.0, 1.0);
  EXPECT_NEAR(c(cluster, 1), 0.0, 1.0);
}

TEST(KMeans, DeterministicForSeed) {
  const auto x = three_blobs(30, 403);
  KMeans a(KMeansConfig{.k = 3, .seed = 5});
  KMeans b(KMeansConfig{.k = 3, .seed = 5});
  a.fit(x);
  b.fit(x);
  EXPECT_DOUBLE_EQ(a.inertia(), b.inertia());
}

}  // namespace
}  // namespace lore::ml
