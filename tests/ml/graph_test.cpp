#include "src/ml/graph.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ml/metrics.hpp"

namespace lore::ml {
namespace {

TEST(FeatureGraph, BasicConstruction) {
  FeatureGraph g(2);
  const double f0[] = {1.0, 0.0};
  const double f1[] = {0.0, 1.0};
  const auto a = g.add_node(f0);
  const auto b = g.add_node(f1);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 1);
  g.finalize();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_edge_types(), 2);
  ASSERT_EQ(g.in_neighbours(b).size(), 1u);
  EXPECT_EQ(g.in_neighbours(b)[0].first, a);
}

TEST(GraphAttentionEmbedder, IsolatedNodeKeepsOwnFeatures) {
  FeatureGraph g(2);
  const double f[] = {0.5, -0.5};
  g.add_node(f);
  g.finalize();
  GraphAttentionEmbedder emb(GraphAttentionEmbedderConfig{.hops = 2});
  const auto e = emb.embed(g);
  EXPECT_EQ(e.cols(), 6u);
  // With no neighbours the propagated state stays the node's own features.
  EXPECT_DOUBLE_EQ(e(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(e(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(e(0, 4), 0.5);
}

TEST(GraphAttentionEmbedder, NeighbourInfluencePropagates) {
  // Chain a -> b -> c. After 2 hops, a's features reach c.
  FeatureGraph g(1);
  const double fa[] = {1.0};
  const double fz[] = {0.0};
  const auto a = g.add_node(fa);
  const auto b = g.add_node(fz);
  const auto c = g.add_node(fz);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  GraphAttentionEmbedder emb(GraphAttentionEmbedderConfig{.hops = 2});
  const auto e = emb.embed(g);
  // Hop-2 component of c must be strictly positive (influence of a).
  EXPECT_GT(e(c, 2), 0.0);
  // Hop-1 component of b already sees a.
  EXPECT_GT(e(b, 1), 0.0);
}

/// Synthetic "program graph" task: a node is class 1 iff it has an
/// in-neighbour with feature[0] > 0.5 — purely structural, so the head can
/// only solve it through propagation.
FeatureGraph make_program_graph(std::size_t n, lore::Rng& rng, std::vector<int>& labels) {
  FeatureGraph g(2);
  std::vector<double> marker(n);
  for (std::size_t i = 0; i < n; ++i) {
    marker[i] = rng.uniform();
    const double f[] = {marker[i], rng.uniform()};
    g.add_node(f);
  }
  labels.assign(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const auto src = static_cast<std::size_t>(rng.uniform_index(i));
    g.add_edge(src, i, static_cast<int>(rng.uniform_index(2)));
    if (marker[src] > 0.5) labels[i] = 1;
  }
  g.finalize();
  return g;
}

TEST(GraphNodeClassifier, InductiveStructuralTask) {
  lore::Rng rng(600);
  std::vector<std::vector<int>> labels(4);
  std::vector<FeatureGraph> graphs;
  graphs.reserve(4);
  for (int i = 0; i < 4; ++i) graphs.push_back(make_program_graph(120, rng, labels[i]));

  GraphNodeClassifier clf;
  clf.fit({&graphs[0], &graphs[1], &graphs[2]}, {labels[0], labels[1], labels[2]});

  // Inductive: evaluate on the graph never seen in training.
  const auto pred = clf.predict(graphs[3]);
  const double acc = accuracy(labels[3], pred);
  EXPECT_GT(acc, 0.8) << "inductive accuracy " << acc;
}

TEST(GraphNodeClassifier, UnlabeledNodesSkippedInTraining) {
  lore::Rng rng(601);
  std::vector<int> labels;
  auto g = make_program_graph(60, rng, labels);
  // Hide half the labels; training should still work.
  for (std::size_t i = 0; i < labels.size(); i += 2) labels[i] = -1;
  GraphNodeClassifier clf;
  clf.fit({&g}, {labels});
  const auto pred = clf.predict(g);
  EXPECT_EQ(pred.size(), g.num_nodes());
}

}  // namespace
}  // namespace lore::ml
