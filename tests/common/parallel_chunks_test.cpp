// Work-distribution contract of the chunked engine primitives: exact
// once-each coverage with deterministic chunk boundaries for
// `parallel_for_chunks`, and the chunked-claim accounting that fixed
// `parallel_for`'s shared-cursor serialization (one fetch_add per trial used
// to bound 8-thread speedup at ~1.4x for sub-microsecond bodies).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace lore;

TEST(ParallelForChunks, CoversEveryIndexExactlyOnce) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{1000}}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                                    std::size_t{4096}}) {
      for (const unsigned threads : {1u, 4u}) {
        std::vector<std::atomic<int>> hits(n);
        parallel_for_chunks(n, threads, chunk, [&](std::size_t begin, std::size_t end) {
          ASSERT_LT(begin, end);
          ASSERT_LE(end, n);
          ASSERT_LE(end - begin, chunk);
          // Chunk boundaries are deterministic multiples of `chunk`.
          ASSERT_EQ(begin % chunk, 0u);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " chunk=" << chunk
                                       << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelForChunks, ZeroAndDegenerateInputs) {
  std::atomic<int> calls{0};
  parallel_for_chunks(0, 4, 64, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  // chunk == 0 degrades to chunk == 1.
  std::vector<std::atomic<int>> hits(5);
  parallel_for_chunks(5, 2, 0, [&](std::size_t begin, std::size_t end) {
    ASSERT_EQ(end, begin + 1);
    hits[begin].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunks, ChunkCounterCountsDispatchedChunks) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::set_enabled(true);
  auto& chunks = obs::MetricsRegistry::global().counter("parallel.chunks");
  for (const unsigned threads : {1u, 4u}) {
    chunks.reset();
    parallel_for_chunks(1000, threads, 64, [](std::size_t, std::size_t) {});
    EXPECT_EQ(chunks.value(), (1000u + 63u) / 64u) << "threads=" << threads;
  }
}

TEST(ParallelFor, ChunkedClaimingBoundsCursorTraffic) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::set_enabled(true);
  // 10000 trials on a 4-worker team: claim size is
  // clamp(10000 / (4*8), 1, 64) = 64, so the shared cursor is touched ~157
  // times instead of 10000 — the fix for the old one-index-per-fetch_add
  // serialization. The counter proves the claim batching actually happens.
  auto& claims = obs::MetricsRegistry::global().counter("parallel.claims");
  claims.reset();
  constexpr std::size_t kTrials = 10000;
  std::atomic<std::size_t> ran{0};
  parallel_for(kTrials, 4, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), kTrials);
  const std::uint64_t observed = claims.value();
  EXPECT_GE(observed, kTrials / 64) << "fewer claims than the work requires";
  // Every claim except at most one per worker serves a full 64 trials.
  EXPECT_LE(observed, kTrials / 64 + 4u) << "cursor traffic not batched";
}

TEST(ParallelFor, SmallBatchesStillClaimOneAtATime) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::set_enabled(true);
  // n < team*8 resolves to claim size 1 — tail latency over throughput.
  auto& claims = obs::MetricsRegistry::global().counter("parallel.claims");
  claims.reset();
  parallel_for(8, 4, [](std::size_t) {});
  EXPECT_GE(claims.value(), 8u / 4u);
  EXPECT_LE(claims.value(), 8u + 4u);
}

TEST(ParallelFor, ScalesOnMultiCoreHosts) {
  // Scaling regression for the chunked claim counter: a sub-microsecond
  // synthetic body must not serialize on the cursor. Timing assertions are
  // meaningless on small hosts, so gate on real parallelism being available.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;
  constexpr std::size_t kTrials = 200000;
  volatile std::uint64_t sink = 0;
  const auto body = [&](std::size_t i) {
    std::uint64_t x = i;
    for (int k = 0; k < 40; ++k) x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    sink = x;
  };
  const auto time_run = [&](unsigned threads) {
    const auto start = std::chrono::steady_clock::now();
    parallel_for(kTrials, threads, body);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  time_run(1);  // warmup
  const double serial = time_run(1);
  const double parallel = time_run(4);
  EXPECT_GT(serial / parallel, 2.0)
      << "4-thread speedup " << serial / parallel << " — cursor serialization?";
}

}  // namespace
