#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace lore {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexCoversAll) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= v == -3;
    hi_hit |= v == 3;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GeometricMeanMatchesClosedForm) {
  // Mean of failures-before-success = (1-p)/p.
  Rng rng(15);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.05);
}

TEST(Rng, GeometricWithProbabilityOneIsZero) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  for (double lambda : {0.5, 5.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(18);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(19);
  Rng child = parent.split();
  double corr_hits = 0;
  for (int i = 0; i < 1000; ++i) corr_hits += parent.next_u64() == child.next_u64();
  EXPECT_LT(corr_hits, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(20);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(21);
  const auto s = rng.sample_indices(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 20u);
  for (auto i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, LognormalMedian) {
  Rng rng(22);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

}  // namespace
}  // namespace lore
