#include "src/common/table.hpp"

#include <gtest/gtest.h>

namespace lore {
namespace {

TEST(Table, AlignedRender) {
  Table t({"p", "hit_rate"});
  t.add_row({"1e-6", "0.99"});
  t.add_row({"1e-5", "0.01"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("p"), std::string::npos);
  EXPECT_NE(s.find("hit_rate"), std::string::npos);
  EXPECT_NE(s.find("1e-6"), std::string::npos);
  EXPECT_NE(s.find("0.01"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, DoubleRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.23456789, 1e-7}, 3);
  const auto s = t.to_csv();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("1e-07"), std::string::npos);
}

TEST(Table, CsvHasCommasAndNewlines) {
  Table t({"x", "y", "z"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.to_csv(), "x,y,z\n1,2,3\n");
}

TEST(FmtSig, RespectsDigits) {
  EXPECT_EQ(fmt_sig(3.14159265, 3), "3.14");
  EXPECT_EQ(fmt_sig(1000000.0, 4), "1e+06");
}

}  // namespace
}  // namespace lore
