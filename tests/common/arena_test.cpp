// Property tests for the thread-local bump arena (DESIGN.md §11): alignment,
// the reset-replays-identically guarantee the batch engine's cache-hotness
// relies on, byte accounting (used / high-water / capacity), the obs
// high-water gauge, and cross-thread isolation (this file runs under the
// `tsan` preset via the `simd` label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/arena.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace lore;

TEST(Arena, AllocationsAreAligned) {
  Arena arena(512);
  for (const std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                                  std::size_t{16}, std::size_t{64}}) {
    for (const std::size_t bytes : {std::size_t{1}, std::size_t{3}, std::size_t{65}}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      std::memset(p, 0xAB, bytes);  // must be writable storage
    }
  }
  // Typed allocation aligns to the element type.
  const auto doubles = arena.alloc<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double), 0u);
  EXPECT_EQ(doubles.size(), 7u);
}

TEST(Arena, ResetReplaysIdenticalAddresses) {
  Arena arena(1024);
  const auto run_sequence = [&] {
    std::vector<void*> addrs;
    addrs.push_back(arena.allocate(100, 8));
    addrs.push_back(arena.allocate(3, 1));
    addrs.push_back(arena.allocate(4096, 64));  // forces a second block
    addrs.push_back(arena.alloc<std::uint64_t>(33).data());
    return addrs;
  };
  const auto first = run_sequence();
  arena.reset();
  const auto second = run_sequence();
  EXPECT_EQ(first, second) << "allocation sequence must replay to the same "
                              "addresses after reset (cache-hot trial scratch)";
  arena.reset();
  EXPECT_EQ(first, run_sequence());
}

TEST(Arena, ZeroedAllocScrubsReusedStorage) {
  Arena arena(256);
  auto span = arena.alloc<std::uint32_t>(32);
  for (auto& x : span) x = 0xFFFFFFFFu;
  arena.reset();
  const auto reused = arena.alloc<std::uint32_t>(32, /*zeroed=*/true);
  ASSERT_EQ(reused.data(), span.data());  // same storage...
  for (const auto x : reused) EXPECT_EQ(x, 0u);  // ...but scrubbed
}

TEST(Arena, UsedAndHighWaterAccounting) {
  Arena arena(1 << 16);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), 0u);
  arena.allocate(100, 1);
  EXPECT_EQ(arena.used(), 100u);
  arena.allocate(28, 1);
  EXPECT_EQ(arena.used(), 128u);
  // Alignment padding counts as used bytes.
  arena.allocate(1, 64);
  EXPECT_EQ(arena.used(), 129u);  // cursor was 64-aligned already at 128
  arena.allocate(1, 64);
  EXPECT_EQ(arena.used(), 129u + 63u + 1u);
  const std::size_t peak = arena.used();
  EXPECT_EQ(arena.high_water(), peak);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), peak) << "high water survives reset";
  arena.allocate(8, 1);
  EXPECT_EQ(arena.high_water(), peak) << "smaller epochs do not move the mark";
}

TEST(Arena, GrowsAndRetainsBlocks) {
  Arena arena(64);
  EXPECT_EQ(arena.block_count(), 0u);  // lazily allocated on first use
  arena.allocate(32, 8);
  EXPECT_EQ(arena.block_count(), 1u);
  arena.allocate(1024, 8);  // exceeds the first block
  const std::size_t grown = arena.block_count();
  EXPECT_GE(grown, 2u);
  EXPECT_GE(arena.capacity(), arena.used());
  arena.reset();
  EXPECT_EQ(arena.block_count(), grown) << "reset must keep blocks for reuse";
  // The warmed-up arena absorbs the same sequence with zero new blocks.
  arena.allocate(32, 8);
  arena.allocate(1024, 8);
  EXPECT_EQ(arena.block_count(), grown);
}

TEST(Arena, HighWaterGaugePublishesOnReset) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::set_enabled(true);
  auto& gauge = obs::MetricsRegistry::global().gauge("arena.bytes_high_water");
  gauge.reset();
  Arena arena(1024);
  constexpr std::size_t kBytes = 100000;
  arena.allocate(kBytes, 8);
  arena.reset();  // publication point
  EXPECT_GE(gauge.value(), static_cast<double>(kBytes));
}

TEST(Arena, ThreadLocalArenasAreIsolated) {
  // Each thread's for_thread() arena hands out distinct storage; concurrent
  // use needs no synchronization (TSan verifies under the tsan preset).
  constexpr int kThreads = 4;
  std::vector<void*> first_alloc(kThreads, nullptr);
  std::atomic<int> allocated{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &first_alloc, &allocated] {
      Arena& arena = Arena::for_thread();
      auto span = arena.alloc<std::uint64_t>(512);
      first_alloc[i] = span.data();
      // Hold every thread (and so every thread-local arena) alive until all
      // have allocated — otherwise the heap could legally recycle an exited
      // thread's block at the same address.
      allocated.fetch_add(1);
      while (allocated.load() < kThreads) std::this_thread::yield();
      // Hammer the storage: any sharing between threads would race.
      for (int rep = 0; rep < 100; ++rep)
        for (auto& x : span) x = static_cast<std::uint64_t>(i) * rep;
      for (const auto x : span)
        ASSERT_EQ(x, static_cast<std::uint64_t>(i) * 99);
      arena.reset();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i)
    for (int j = i + 1; j < kThreads; ++j)
      EXPECT_NE(first_alloc[i], first_alloc[j]) << "threads " << i << "," << j;
}

}  // namespace
