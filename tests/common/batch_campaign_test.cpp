// Contract tests for `run_campaign_batched` (DESIGN.md §11): record/status/
// report equivalence with the reference engine across chunk sizes and thread
// counts, per-trial RNG stream identity, retry and failure degradation, and
// the fall-back rules (non-plain specs and the global batch switch).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/common/campaign.hpp"

namespace {

using namespace lore;

struct Sample {
  std::uint64_t value = 0;
  std::uint64_t index = 0;
  friend bool operator==(const Sample&, const Sample&) = default;
};

CampaignSpec plain_spec(std::size_t trials, unsigned threads) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 4242;
  spec.threads = threads;
  spec.domain = "test.batch";
  return spec;
}

TEST(BatchCampaign, MatchesReferenceAcrossChunkSizesAndThreads) {
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return Sample{rng.next_u64(), t};
  };
  BatchOptions reference_opt;
  reference_opt.force_reference = true;
  const auto reference =
      run_campaign_batched<Sample>(plain_spec(1000, 1), trial, reference_opt);
  ASSERT_EQ(reference.report.completed, 1000u);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                                  std::size_t{1000}, std::size_t{4096}}) {
    for (const unsigned threads : {1u, 4u, 0u}) {
      BatchOptions opt;
      opt.chunk = chunk;
      const auto batched = run_campaign_batched<Sample>(plain_spec(1000, threads), trial, opt);
      EXPECT_EQ(reference.records, batched.records)
          << "chunk=" << chunk << " threads=" << threads;
      EXPECT_EQ(reference.status, batched.status);
      EXPECT_EQ(batched.report.completed, 1000u);
      EXPECT_TRUE(batched.report.complete());
    }
  }
}

TEST(BatchCampaign, TrialRngStreamIsTheEngineContract) {
  // Trial i must see a fresh Rng seeded with trial_seed(base_seed, i) —
  // exactly the documented determinism contract.
  const auto result = run_campaign_batched<std::uint64_t>(
      plain_spec(257, 0),
      [](std::size_t, Rng& rng, const CancelToken&) { return rng.next_u64(); });
  ASSERT_EQ(result.report.completed, 257u);
  for (std::size_t t = 0; t < 257; ++t) {
    Rng expected(trial_seed(4242, t));
    EXPECT_EQ(result.records[t], expected.next_u64()) << "t=" << t;
  }
}

TEST(BatchCampaign, PersistentFailuresDegradeToFailedStatus) {
  CampaignSpec spec = plain_spec(100, 4);
  spec.max_retries = 2;
  spec.retry_backoff = std::chrono::milliseconds(0);
  const auto result = run_campaign_batched<Sample>(
      spec, [](std::size_t t, Rng&, const CancelToken&) {
        if (t % 10 == 3) throw std::runtime_error("trial exploded");
        return Sample{t * 2, t};
      });
  EXPECT_EQ(result.report.completed, 90u);
  EXPECT_EQ(result.report.failed, 10u);
  EXPECT_FALSE(result.report.complete());
  // Each failing trial burns the initial attempt plus max_retries retries.
  EXPECT_EQ(result.report.retries, 10u * 2u);
  EXPECT_EQ(result.report.suppressed_exceptions, 10u * 3u);
  EXPECT_EQ(result.report.first_error, "trial exploded");
  for (std::size_t t = 0; t < 100; ++t) {
    if (t % 10 == 3) {
      EXPECT_EQ(result.status[t], TrialStatus::kFailed);
      EXPECT_EQ(result.records[t], Sample{}) << "failed slot must be value-initialized";
    } else {
      EXPECT_EQ(result.status[t], TrialStatus::kOk);
      EXPECT_EQ(result.records[t].value, t * 2);
    }
  }
}

TEST(BatchCampaign, TransientFailuresRecoverViaRetry) {
  CampaignSpec spec = plain_spec(64, 4);
  spec.max_retries = 1;
  spec.retry_backoff = std::chrono::milliseconds(0);
  std::vector<std::atomic<int>> attempts(64);
  const auto result = run_campaign_batched<Sample>(
      spec, [&](std::size_t t, Rng& rng, const CancelToken&) {
        if (t % 8 == 1 && attempts[t].fetch_add(1) == 0)
          throw std::runtime_error("transient");
        return Sample{rng.next_u64(), t};
      });
  EXPECT_EQ(result.report.completed, 64u);
  EXPECT_TRUE(result.report.complete());
  EXPECT_EQ(result.report.retries, 8u);
  EXPECT_EQ(result.report.suppressed_exceptions, 8u);
  // The retried attempt re-seeds from scratch: same stream as never failing.
  for (std::size_t t = 0; t < 64; ++t) {
    Rng expected(trial_seed(4242, t));
    EXPECT_EQ(result.records[t].value, expected.next_u64());
    EXPECT_EQ(result.status[t], TrialStatus::kOk);
  }
}

TEST(BatchCampaign, NonPlainSpecsFallBackToReferenceEngine) {
  // Deadlines, budgets, per-run caps, and checkpoints are reference-engine
  // features; campaign_uses_batch must refuse them.
  CampaignSpec plain = plain_spec(10, 1);
  EXPECT_TRUE(plain_campaign_spec(plain));
  auto with_deadline = plain;
  with_deadline.trial_deadline = std::chrono::milliseconds(100);
  EXPECT_FALSE(plain_campaign_spec(with_deadline));
  auto with_budget = plain;
  with_budget.overall_budget = std::chrono::milliseconds(100);
  EXPECT_FALSE(plain_campaign_spec(with_budget));
  auto with_cap = plain;
  with_cap.max_trials_per_run = 5;
  EXPECT_FALSE(plain_campaign_spec(with_cap));
  auto with_checkpoint = plain;
  with_checkpoint.checkpoint_path = "/tmp/never-written.ckpt";
  EXPECT_FALSE(plain_campaign_spec(with_checkpoint));

  // A non-plain spec still produces correct results (via the fallback).
  const auto result = run_campaign_batched<Sample>(
      with_deadline,
      [](std::size_t t, Rng& rng, const CancelToken&) { return Sample{rng.next_u64(), t}; });
  EXPECT_EQ(result.report.completed, 10u);
  for (std::size_t t = 0; t < 10; ++t) {
    Rng expected(trial_seed(4242, t));
    EXPECT_EQ(result.records[t].value, expected.next_u64());
  }
}

TEST(BatchCampaign, GlobalSwitchForcesReferenceEngine) {
  const bool saved = campaign_batch_enabled();
  set_campaign_batch_enabled(false);
  const CampaignSpec spec = plain_spec(10, 1);
  EXPECT_FALSE(campaign_uses_batch(spec));
  const auto off = run_campaign_batched<std::uint64_t>(
      spec, [](std::size_t, Rng& rng, const CancelToken&) { return rng.next_u64(); });
  set_campaign_batch_enabled(true);
  EXPECT_TRUE(campaign_uses_batch(spec));
  const auto on = run_campaign_batched<std::uint64_t>(
      spec, [](std::size_t, Rng& rng, const CancelToken&) { return rng.next_u64(); });
  set_campaign_batch_enabled(saved);
  EXPECT_EQ(off.records, on.records) << "engines must agree bit-for-bit";
}

TEST(BatchCampaign, ZeroTrials) {
  const auto result = run_campaign_batched<Sample>(
      plain_spec(0, 4),
      [](std::size_t t, Rng&, const CancelToken&) { return Sample{0, t}; });
  EXPECT_EQ(result.records.size(), 0u);
  EXPECT_TRUE(result.report.complete());
}

}  // namespace
