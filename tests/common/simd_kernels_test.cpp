// Differential suite for the batch trial kernels (DESIGN.md §11). Two
// layers: (1) every dispatched kernel is bit-identical to its scalar
// reference at adversarial sizes — below, at, and above the SIMD lane width,
// plus a large non-multiple; (2) whole fault-injection campaigns are
// bit-identical across dispatch modes and thread counts to the legacy
// serializing reference engine. Together these ARE the contract that lets
// `LORE_SIMD_SCALAR=1` serve as a trusted arbiter for any suspected
// SIMD/batching miscompare.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/pipeline.hpp"
#include "src/arch/workloads.hpp"
#include "src/common/campaign.hpp"
#include "src/common/kernels.hpp"
#include "src/common/rng.hpp"

namespace {

using namespace lore;

// Below / at / above one AVX2 vector of every element width, plus a large
// size that is not a multiple of any lane count.
constexpr std::size_t kSizes[] = {1, 3, 63, 64, 65, 4095};

/// Restore the process-wide dispatch override on scope exit.
class DispatchGuard {
 public:
  DispatchGuard() : saved_(kernels::active_dispatch()) {}
  ~DispatchGuard() { kernels::set_dispatch(saved_); }

 private:
  kernels::Dispatch saved_;
};

/// Restore the batch-engine switch on scope exit.
class BatchEngineGuard {
 public:
  BatchEngineGuard() : saved_(campaign_batch_enabled()) {}
  ~BatchEngineGuard() { set_campaign_batch_enabled(saved_); }

 private:
  bool saved_;
};

// True when set_dispatch(kAvx2) sticks (hardware + compile support). Probed
// via the clamp itself, NOT best_dispatch(): LORE_SIMD_SCALAR=1 downgrades
// the *default* dispatch, but an explicit set_dispatch still overrides it,
// so this suite must keep exercising AVX2 under that env when the CPU can.
bool avx2_available() {
  DispatchGuard guard;
  kernels::set_dispatch(kernels::Dispatch::kAvx2);
  return kernels::active_dispatch() == kernels::Dispatch::kAvx2;
}

std::vector<std::uint32_t> random_u32(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_u64());
  return v;
}

TEST(SimdKernels, DispatchNamesAndClamp) {
  DispatchGuard guard;
  EXPECT_STREQ(kernels::dispatch_name(kernels::Dispatch::kScalar), "scalar");
  kernels::set_dispatch(kernels::Dispatch::kScalar);
  EXPECT_EQ(kernels::active_dispatch(), kernels::Dispatch::kScalar);
  // Requesting AVX2 either takes effect or clamps to scalar — never UB.
  kernels::set_dispatch(kernels::Dispatch::kAvx2);
  if (avx2_available())
    EXPECT_EQ(kernels::active_dispatch(), kernels::Dispatch::kAvx2);
  else
    EXPECT_EQ(kernels::active_dispatch(), kernels::Dispatch::kScalar);
}

TEST(SimdKernels, FillTrialSeedsMatchesScalarAtEverySize) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host/build";
#if LORE_SIMD_COMPILED
  for (const std::size_t n : kSizes) {
    for (const std::uint64_t base : {0ull, 2024ull, ~0ull}) {
      for (const std::uint64_t first : {0ull, 1ull, 4095ull, (1ull << 40)}) {
        std::vector<std::uint64_t> ref(n), simd(n, 0xdeadbeef);
        kernels::scalar::fill_trial_seeds(ref, base, first);
        kernels::avx2::fill_trial_seeds(simd, base, first);
        ASSERT_EQ(ref, simd) << "n=" << n << " base=" << base << " first=" << first;
        // And the seeds are the engine's per-trial seeds.
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(ref[i], trial_seed(base, first + i));
      }
    }
  }
#endif
}

TEST(SimdKernels, CountMismatchMatchesScalarAtEverySize) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host/build";
#if LORE_SIMD_COMPILED
  for (const std::size_t n : kSizes) {
    const auto a = random_u32(n, 7 * n + 1);
    // Equal, fully different, and single mismatches at the edges.
    std::vector<std::vector<std::uint32_t>> variants;
    variants.push_back(a);
    variants.push_back(random_u32(n, 13 * n + 5));
    auto first_off = a, last_off = a;
    first_off[0] ^= 1u;
    last_off[n - 1] ^= 0x80000000u;
    variants.push_back(first_off);
    variants.push_back(last_off);
    for (const auto& b : variants) {
      ASSERT_EQ(kernels::scalar::count_mismatch_u32(a, b),
                kernels::avx2::count_mismatch_u32(a, b))
          << "n=" << n;
    }
    ASSERT_EQ(kernels::avx2::count_mismatch_u32(a, a), 0u);
    ASSERT_EQ(kernels::avx2::count_mismatch_u32(a, first_off), 1u);
  }
#endif
}

TEST(SimdKernels, CopyU32MatchesScalarAtEverySize) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host/build";
#if LORE_SIMD_COMPILED
  for (const std::size_t n : kSizes) {
    const auto src = random_u32(n, n + 99);
    std::vector<std::uint32_t> ref(n, 0xAAAAAAAAu), simd(n, 0x55555555u);
    kernels::scalar::copy_u32(ref, src);
    kernels::avx2::copy_u32(simd, src);
    ASSERT_EQ(ref, simd) << "n=" << n;
    ASSERT_EQ(simd, src);
  }
#endif
}

TEST(SimdKernels, CountEqualU8MatchesScalarAtEverySize) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available on this host/build";
#if LORE_SIMD_COMPILED
  for (const std::size_t n : kSizes) {
    Rng rng(n * 31 + 7);
    std::vector<std::uint8_t> v(n);
    for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_index(4));
    for (std::uint8_t value = 0; value < 5; ++value) {
      ASSERT_EQ(kernels::scalar::count_equal_u8(v, value),
                kernels::avx2::count_equal_u8(v, value))
          << "n=" << n << " value=" << unsigned(value);
    }
  }
#endif
}

TEST(SimdKernels, DispatchedWrappersFollowActiveDispatch) {
  DispatchGuard guard;
  const auto src = random_u32(257, 42);
  for (const auto mode : {kernels::Dispatch::kScalar, kernels::Dispatch::kAvx2}) {
    kernels::set_dispatch(mode);
    std::vector<std::uint64_t> seeds(257);
    kernels::fill_trial_seeds(seeds, 2024, 3);
    for (std::size_t i = 0; i < seeds.size(); ++i)
      ASSERT_EQ(seeds[i], trial_seed(2024, 3 + i));
    std::vector<std::uint32_t> dst(src.size());
    kernels::copy_u32(dst, src);
    ASSERT_EQ(dst, src);
    ASSERT_EQ(kernels::count_mismatch_u32(dst, src), 0u);
  }
}

// ---------------------------------------------------------------------------
// Campaign-level differential: the batched engine under every dispatch mode
// and thread count must reproduce the reference engine's records exactly.

TEST(SimdCampaignDifferential, FaultCampaignBitIdenticalToReference) {
  DispatchGuard dispatch_guard;
  BatchEngineGuard engine_guard;
  const auto w = arch::make_checksum(12, 5);
  const arch::FaultInjector injector(w);
  for (const auto target : {arch::FaultTarget::kRegister, arch::FaultTarget::kMemory,
                            arch::FaultTarget::kInstruction}) {
    set_campaign_batch_enabled(false);  // legacy engine + per-trial inject()
    const auto reference = injector.campaign(300, target, 2024, 1);
    ASSERT_EQ(reference.size(), 300u);
    set_campaign_batch_enabled(true);
    for (const auto mode : {kernels::Dispatch::kScalar, kernels::Dispatch::kAvx2}) {
      kernels::set_dispatch(mode);
      for (const unsigned threads : {1u, 4u, 0u}) {
        const auto batched = injector.campaign(300, target, 2024, threads);
        EXPECT_TRUE(reference == batched)
            << "target=" << static_cast<int>(target)
            << " dispatch=" << kernels::dispatch_name(kernels::active_dispatch())
            << " threads=" << threads;
      }
    }
  }
}

TEST(SimdCampaignDifferential, PipelineCampaignBitIdenticalToReference) {
  DispatchGuard dispatch_guard;
  BatchEngineGuard engine_guard;
  const auto w = arch::make_checksum(10, 3);
  set_campaign_batch_enabled(false);
  const auto reference = arch::pipeline_campaign(w, 200, 77, 1);
  ASSERT_EQ(reference.size(), 200u);
  set_campaign_batch_enabled(true);
  for (const auto mode : {kernels::Dispatch::kScalar, kernels::Dispatch::kAvx2}) {
    kernels::set_dispatch(mode);
    for (const unsigned threads : {1u, 4u, 0u}) {
      const auto batched = arch::pipeline_campaign(w, 200, 77, threads);
      EXPECT_TRUE(reference == batched)
          << "dispatch=" << kernels::dispatch_name(kernels::active_dispatch())
          << " threads=" << threads;
    }
  }
}

TEST(SimdCampaignDifferential, ReplaySeedStillReproducesBatchedTrials) {
  // Each batched record's trial_seed must replay to the same outcome through
  // the (reference) single-trial path — the cross-engine debugging loop.
  BatchEngineGuard engine_guard;
  set_campaign_batch_enabled(true);
  const auto w = arch::make_checksum(12, 5);
  const arch::FaultInjector injector(w);
  const auto records = injector.campaign(64, arch::FaultTarget::kRegister, 9, 0);
  for (const auto& rec : records) {
    const auto replayed = injector.replay_trial(rec.trial_seed, arch::FaultTarget::kRegister);
    EXPECT_TRUE(rec == replayed);
  }
}

}  // namespace
