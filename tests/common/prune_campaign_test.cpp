// Contract tests for the predict-and-prune campaign stage (DESIGN.md §13):
// audit=1.0 bit-identity with the unpruned engine at any thread/chunk count,
// kPruned statuses + report tallies, seeded audit determinism, false-benign
// accounting, and the PruneController breaker degrading back to full
// execution.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "src/common/campaign.hpp"

namespace {

using namespace lore;

struct Sample {
  std::uint64_t value = 0;
  std::uint64_t index = 0;
  friend bool operator==(const Sample&, const Sample&) = default;
};

CampaignSpec plain_spec(std::size_t trials, unsigned threads) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 777;
  spec.threads = threads;
  spec.domain = "test.prune";
  return spec;
}

Sample make_trial(std::size_t t, Rng& rng) { return Sample{rng.next_u64(), t}; }

/// Deterministic "model": predicts benign when the first draw of the trial's
/// stream is even (a pure function of the seed, like the real featurizer).
bool seed_predicts_benign(std::uint64_t seed) { return Rng(seed).next_u64() % 2 == 0; }

PruneHooks<Sample> benign_even_hooks() {
  PruneHooks<Sample> hooks;
  hooks.predict = [](std::size_t, std::size_t, std::span<const std::uint64_t> seeds,
                     std::span<std::uint8_t> benign) {
    for (std::size_t i = 0; i < seeds.size(); ++i)
      benign[i] = seed_predicts_benign(seeds[i]) ? 1 : 0;
  };
  // Ground truth agrees with the prediction (value is the first draw).
  hooks.is_benign = [](const Sample& s) { return s.value % 2 == 0; };
  return hooks;
}

TEST(PruneCampaign, FullAuditIsBitIdenticalToUnpruned) {
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return make_trial(t, rng);
  };
  const auto reference = run_campaign_batched<Sample>(plain_spec(1000, 1), trial);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const std::size_t chunk : {1u, 7u, 64u, 1000u}) {
      auto hooks = benign_even_hooks();
      hooks.audit_fraction = 1.0;  // everything predicted-benign still executes
      BatchOptions opt;
      opt.chunk = chunk;
      const auto pruned =
          run_campaign_pruned<Sample>(plain_spec(1000, threads), trial, hooks, opt);
      ASSERT_EQ(pruned.records, reference.records)
          << "threads=" << threads << " chunk=" << chunk;
      ASSERT_EQ(pruned.status, reference.status);
      EXPECT_EQ(pruned.report.pruned, 0u);
      EXPECT_GT(pruned.report.prune_audits, 0u);
      EXPECT_EQ(pruned.report.prune_false_benign, 0u);
      EXPECT_FALSE(pruned.report.prune_disabled);
    }
  }
}

TEST(PruneCampaign, PrunedTrialsAreMarkedAndValueInitialized) {
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return make_trial(t, rng);
  };
  auto hooks = benign_even_hooks();
  hooks.audit_fraction = 0.0;  // prune every predicted-benign trial
  const auto spec = plain_spec(500, 2);
  const auto result = run_campaign_pruned<Sample>(spec, trial, hooks);
  std::size_t pruned = 0;
  for (std::size_t i = 0; i < spec.trials; ++i) {
    const bool predicted = seed_predicts_benign(trial_seed(spec.base_seed, i));
    if (predicted) {
      ASSERT_EQ(result.status[i], TrialStatus::kPruned) << i;
      ASSERT_EQ(result.records[i], Sample{}) << i;
      ++pruned;
    } else {
      ASSERT_EQ(result.status[i], TrialStatus::kOk) << i;
      ASSERT_EQ(result.records[i].index, i);
    }
  }
  EXPECT_GT(pruned, 0u);
  EXPECT_EQ(result.report.pruned, pruned);
  EXPECT_EQ(result.report.completed, spec.trials - pruned);
  EXPECT_EQ(result.report.prune_audits, 0u);
  EXPECT_STREQ(trial_status_name(TrialStatus::kPruned), "pruned");
}

TEST(PruneCampaign, AuditSubsampleIsThreadAndChunkInvariant) {
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return make_trial(t, rng);
  };
  auto hooks = benign_even_hooks();
  hooks.audit_fraction = 0.25;
  hooks.audit_seed = 42;
  const auto first = run_campaign_pruned<Sample>(plain_spec(2000, 1), trial, hooks);
  for (const unsigned threads : {2u, 8u}) {
    for (const std::size_t chunk : {3u, 128u}) {
      BatchOptions opt;
      opt.chunk = chunk;
      const auto again =
          run_campaign_pruned<Sample>(plain_spec(2000, threads), trial, hooks, opt);
      ASSERT_EQ(again.status, first.status) << "threads=" << threads << " chunk=" << chunk;
      ASSERT_EQ(again.records, first.records);
      ASSERT_EQ(again.report.prune_audits, first.report.prune_audits);
    }
  }
  // The fraction roughly holds: audited + pruned = predicted-benign, and
  // audits land near 25% of that population.
  const std::size_t predicted = first.report.pruned + first.report.prune_audits;
  EXPECT_GT(predicted, 0u);
  const double audit_share = static_cast<double>(first.report.prune_audits) /
                             static_cast<double>(predicted);
  EXPECT_NEAR(audit_share, 0.25, 0.08);
}

TEST(PruneCampaign, FalseBenignAuditsAreCounted) {
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return make_trial(t, rng);
  };
  PruneHooks<Sample> hooks;
  // A deliberately wrong model: everything is predicted benign, but ground
  // truth calls odd first-draws non-benign (~half the audits are false).
  hooks.predict = [](std::size_t, std::size_t, std::span<const std::uint64_t>,
                     std::span<std::uint8_t> benign) {
    for (auto& b : benign) b = 1;
  };
  hooks.is_benign = [](const Sample& s) { return s.value % 2 == 0; };
  hooks.audit_fraction = 0.5;
  const auto result = run_campaign_pruned<Sample>(plain_spec(1000, 2), trial, hooks);
  EXPECT_GT(result.report.prune_audits, 0u);
  EXPECT_GT(result.report.prune_false_benign, 0u);
  EXPECT_LT(result.report.prune_false_benign, result.report.prune_audits);
}

TEST(PruneCampaign, ControllerTripsAndDisablesPruning) {
  PruneController controller(PruneController::Config{.false_benign_alert = 0.2,
                                                     .min_audits = 10});
  EXPECT_TRUE(controller.enabled());
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return make_trial(t, rng);
  };
  PruneHooks<Sample> hooks;
  hooks.predict = [](std::size_t, std::size_t, std::span<const std::uint64_t>,
                     std::span<std::uint8_t> benign) {
    for (auto& b : benign) b = 1;  // always wrong half the time
  };
  hooks.is_benign = [](const Sample& s) { return s.value % 2 == 0; };
  hooks.audit_fraction = 0.5;
  hooks.controller = &controller;
  // Small chunks so post-trip chunks are actually scored after the trip.
  BatchOptions opt;
  opt.chunk = 16;
  const auto result =
      run_campaign_pruned<Sample>(plain_spec(2000, 1), trial, hooks, opt);
  EXPECT_TRUE(controller.tripped());
  EXPECT_TRUE(result.report.prune_disabled);
  EXPECT_GT(controller.false_benign_rate(), 0.2);
  // Pruning stopped partway: far fewer pruned trials than the ~50% an
  // untripped run would skip.
  EXPECT_LT(result.report.pruned, 500u);
  // A tripped controller suppresses the prune stage entirely on new runs.
  const auto after = run_campaign_pruned<Sample>(plain_spec(500, 1), trial, hooks);
  EXPECT_EQ(after.report.pruned, 0u);
  EXPECT_EQ(after.report.completed, 500u);
}

TEST(PruneCampaign, AuditSelectionIsPureAndClamped) {
  EXPECT_TRUE(prune_audit_selected(1, 5, 1.0));
  EXPECT_FALSE(prune_audit_selected(1, 5, 0.0));
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(prune_audit_selected(9, i, 0.3), prune_audit_selected(9, i, 0.3));
  // Roughly the requested fraction over a large population.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 10000; ++i) hits += prune_audit_selected(77, i, 0.1);
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.1, 0.02);
}

TEST(PruneCampaign, ResolvePruneAuditPrecedence) {
  EXPECT_DOUBLE_EQ(resolve_prune_audit(0.3), 0.3);
  EXPECT_DOUBLE_EQ(resolve_prune_audit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(resolve_prune_audit(2.5), 1.0);  // clamped
  // The env var / 0.05 default is latched once per process; without
  // LORE_PRUNE_AUDIT set in the test environment the default applies.
  if (std::getenv("LORE_PRUNE_AUDIT") == nullptr) {
    EXPECT_DOUBLE_EQ(resolve_prune_audit(-1.0), 0.05);
  }
}

TEST(PruneCampaign, NoPredictHookMeansNoPruning) {
  const auto trial = [](std::size_t t, Rng& rng, const CancelToken&) {
    return make_trial(t, rng);
  };
  const auto reference = run_campaign_batched<Sample>(plain_spec(300, 2), trial);
  const auto pruned =
      run_campaign_pruned<Sample>(plain_spec(300, 2), trial, PruneHooks<Sample>{});
  EXPECT_EQ(pruned.records, reference.records);
  EXPECT_EQ(pruned.report.pruned, 0u);
  EXPECT_EQ(pruned.report.prune_audits, 0u);
}

}  // namespace
