// Pool lifecycle, exception propagation, and the determinism contract of the
// campaign executor: identical outputs for every thread count on one seed.
#include "src/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace lore {
namespace {

TEST(TrialSeed, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(trial_seed(97, 0), trial_seed(97, 0));
  EXPECT_EQ(trial_seed(97, 123456), trial_seed(97, 123456));
  EXPECT_NE(trial_seed(97, 0), trial_seed(97, 1));
  EXPECT_NE(trial_seed(97, 0), trial_seed(98, 0));
}

TEST(TrialSeed, DistinctAcrossManyTrials) {
  // splitmix64's finalizer is a bijection, so one base seed never collides
  // across trial indices.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 10000; ++t) seeds.push_back(trial_seed(7, t));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ResolveThreads, ZeroMeansHardwareAndClampsToTrials) {
  EXPECT_GE(resolve_threads(0, 1000), 1u);
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_EQ(resolve_threads(8, 0), 1u);
  EXPECT_EQ(resolve_threads(1, 1000), 1u);
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 0; i < 200; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  pool.wait();
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
    // No wait(): destruction must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesFromWorker) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("worker boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool survives a failed job and keeps executing new ones.
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 5000;
  std::vector<int> touched(kN, 0);
  parallel_for(kN, 8, [&](std::size_t i) { ++touched[i]; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(std::count(touched.begin(), touched.end(), 1), static_cast<long>(kN));
}

TEST(ParallelFor, ExceptionPropagates) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::size_t i) {
                              if (i == 57) throw std::logic_error("trial 57");
                            }),
               std::logic_error);
}

TEST(ParallelFor, ZeroTrialsIsANoOp) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "must not run"; });
}

std::vector<double> trial_outputs(unsigned threads) {
  // A draw mix that exercises uniform, normal (cached spare), and geometric
  // paths — any per-trial stream perturbation would show up here.
  return parallel_trials<double>(512, 97, threads, [](std::size_t i, Rng& rng) {
    double acc = rng.uniform();
    acc += rng.normal() * 1e-3;
    acc += static_cast<double>(rng.geometric(0.25));
    acc += static_cast<double>(i);
    return acc;
  });
}

TEST(ParallelForTrials, BitIdenticalAcrossThreadCounts) {
  const auto serial = trial_outputs(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = trial_outputs(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    // Exact bit equality, not approximate: the determinism contract.
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

TEST(ParallelForTrials, TrialRngMatchesCounterSeed) {
  std::vector<std::uint64_t> first_draw(64);
  parallel_for_trials(64, 1234, 4, [&](std::size_t i, Rng& rng) {
    first_draw[i] = rng.next_u64();
  });
  for (std::size_t i = 0; i < first_draw.size(); ++i) {
    Rng expected(trial_seed(1234, i));
    EXPECT_EQ(first_draw[i], expected.next_u64()) << "trial " << i;
  }
}

}  // namespace
}  // namespace lore
