#include "src/common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lore {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesHandComputation) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  const std::vector<double> xs{1.0, -2.5, 3.0, 7.25, 0.0, 4.5, -1.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(BatchStats, MeanVarianceQuantiles) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(BatchStats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.1), 1.0);
}

TEST(BatchStats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(BatchStats, PearsonConstantIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const auto s = h.render(10);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

}  // namespace
}  // namespace lore
