#include "src/circuit/liberty_io.hpp"

#include <gtest/gtest.h>

#include "src/circuit/characterize.hpp"

namespace lore::circuit {
namespace {

TEST(LibertyIo, EmitsAllCellsAndStructure) {
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0},
                                                  .load_axis_ff = {1.0, 4.0},
                                                  .timestep_ps = 0.5},
                              device::SelfHeatingModel{});
  characterizer.characterize_library(lib, device::OperatingPoint{});
  const auto text = write_liberty(lib);

  EXPECT_NE(text.find("library (lore-tech)"), std::string::npos);
  for (std::size_t c = 0; c < lib.size(); ++c)
    EXPECT_NE(text.find("cell (" + lib.cell(c).name + ")"), std::string::npos);
  EXPECT_NE(text.find("cell_rise"), std::string::npos);
  EXPECT_NE(text.find("fall_transition"), std::string::npos);
  EXPECT_NE(text.find("related_pin"), std::string::npos);
  // DFF pins use D/Q naming.
  EXPECT_NE(text.find("pin (Q)"), std::string::npos);
  EXPECT_NE(text.find("pin (D)"), std::string::npos);
}

TEST(LibertyIo, ValuesRoundTripApproximately) {
  CellLibrary lib = make_skeleton_library("t");
  Characterizer characterizer(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0},
                                                  .load_axis_ff = {1.0, 4.0},
                                                  .timestep_ps = 0.5},
                              device::SelfHeatingModel{});
  characterizer.characterize_library(lib, device::OperatingPoint{});
  const auto text = write_liberty(lib);
  // A specific characterized value appears verbatim in the text.
  const auto& inv = lib.cell(*lib.find("INV_X1"));
  const double v = inv.arcs[0].rise_delay.at(0, 0);
  std::ostringstream expected;
  expected << v;
  EXPECT_NE(text.find(expected.str()), std::string::npos);
}

TEST(LibertyIo, NomConditionsFromCorner) {
  CellLibrary lib = make_skeleton_library("t2");
  Characterizer characterizer(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0},
                                                  .load_axis_ff = {1.0, 4.0},
                                                  .timestep_ps = 0.5},
                              device::SelfHeatingModel{});
  device::OperatingPoint corner{};
  corner.vdd = 0.9;
  corner.temperature = 348.15;  // 75 C
  characterizer.characterize_library(lib, corner);
  const auto text = write_liberty(lib);
  EXPECT_NE(text.find("nom_voltage : 0.9"), std::string::npos);
  EXPECT_NE(text.find("nom_temperature : 75"), std::string::npos);
}

}  // namespace
}  // namespace lore::circuit
