#include "src/circuit/netlist.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lore::circuit {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(make_skeleton_library("tech")) {}
  CellLibrary lib_;
};

TEST_F(NetlistTest, ManualConstruction) {
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto b = nl.add_primary_input();
  const auto g = nl.add_instance(*lib_.find("NAND2_X1"), {a, b}, "u1");
  nl.mark_primary_output(nl.instance(g).output_net);
  EXPECT_EQ(nl.num_instances(), 1u);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.instance(g).name, "u1");
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
}

TEST_F(NetlistTest, NetLoadSumsPinAndWireCaps) {
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto inv_id = *lib_.find("INV_X1");
  nl.add_instance(inv_id, {a});
  nl.add_instance(inv_id, {a});
  const double expected = Netlist::kWireCapBaseFf + 2 * Netlist::kWireCapPerSinkFf +
                          2 * lib_.cell(inv_id).input_cap_ff;
  EXPECT_DOUBLE_EQ(nl.net_load_ff(a), expected);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDependencies) {
  const auto nl = generate_random_logic(lib_, RandomLogicConfig{.num_gates = 150});
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), nl.num_instances());
  std::vector<std::size_t> position(nl.num_instances());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    if (lib_.cell(nl.instance(i).cell_id).is_sequential()) continue;
    for (auto net : nl.instance(i).input_nets) {
      const int drv = nl.net(net).driver_instance;
      if (drv >= 0) {
        EXPECT_LT(position[static_cast<std::size_t>(drv)], position[i]);
      }
    }
  }
}

TEST_F(NetlistTest, RandomLogicHasRequestedSize) {
  const auto nl = generate_random_logic(lib_, RandomLogicConfig{.num_inputs = 8,
                                                                .num_gates = 100});
  EXPECT_EQ(nl.num_instances(), 100u);
  EXPECT_EQ(nl.primary_inputs().size(), 8u);
  EXPECT_FALSE(nl.primary_outputs().empty());
}

TEST_F(NetlistTest, RandomLogicDeterministicForSeed) {
  const auto a = generate_random_logic(lib_, RandomLogicConfig{.seed = 9});
  const auto b = generate_random_logic(lib_, RandomLogicConfig{.seed = 9});
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (std::size_t i = 0; i < a.num_instances(); ++i)
    EXPECT_EQ(a.instance(i).cell_id, b.instance(i).cell_id);
}

TEST_F(NetlistTest, CoreLikeHasPipelineStructure) {
  const CoreLikeConfig cfg{.pipeline_stages = 3, .regs_per_stage = 8, .gates_per_stage = 60};
  const auto nl = generate_core_like(lib_, cfg);
  // (stages+1) ranks of 8 DFFs.
  std::size_t dff_count = 0;
  for (std::size_t i = 0; i < nl.num_instances(); ++i)
    if (lib_.cell(nl.instance(i).cell_id).is_sequential()) ++dff_count;
  EXPECT_EQ(dff_count, 4u * 8u);
  EXPECT_EQ(nl.num_instances(), 4u * 8u + 3u * 60u);
  // Activity is assigned and bounded by the clock.
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    EXPECT_GT(nl.instance(i).toggle_rate_ghz, 0.0);
    EXPECT_LE(nl.instance(i).toggle_rate_ghz, cfg.clock_ghz);
  }
  // Topological order must exist (no combinational cycles through DFFs).
  EXPECT_EQ(nl.topological_order().size(), nl.num_instances());
}

TEST_F(NetlistTest, CoreLikeActivityHasSpread) {
  const auto nl = generate_core_like(lib_, CoreLikeConfig{});
  double lo = 1e9, hi = 0.0;
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    lo = std::min(lo, nl.instance(i).toggle_rate_ghz);
    hi = std::max(hi, nl.instance(i).toggle_rate_ghz);
  }
  EXPECT_GT(hi / lo, 10.0);  // long-tailed activity profile
}

TEST_F(NetlistTest, DistinctCellTypesBounded) {
  const auto nl = generate_core_like(lib_, CoreLikeConfig{});
  EXPECT_LE(nl.distinct_cell_types(), lib_.size());
  EXPECT_GT(nl.distinct_cell_types(), 10u);
}

}  // namespace
}  // namespace lore::circuit
