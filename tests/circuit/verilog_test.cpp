#include "src/circuit/verilog.hpp"

#include <gtest/gtest.h>

namespace lore::circuit {
namespace {

TEST(Verilog, SmallNetlistStructure) {
  const auto lib = make_skeleton_library("tech");
  Netlist nl(&lib);
  const auto a = nl.add_primary_input();
  const auto b = nl.add_primary_input();
  const auto g = nl.add_instance(*lib.find("NAND2_X1"), {a, b}, "u_nand");
  nl.mark_primary_output(nl.instance(g).output_net);

  const auto v = write_verilog(nl, "top");
  EXPECT_NE(v.find("module top ("), std::string::npos);
  EXPECT_NE(v.find("input pi0;"), std::string::npos);
  EXPECT_NE(v.find("input pi1;"), std::string::npos);
  EXPECT_NE(v.find("output po0;"), std::string::npos);
  EXPECT_NE(v.find("NAND2_X1 u_nand (.a(pi0), .b(pi1), .y("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, DffUsesDQPins) {
  const auto lib = make_skeleton_library("tech");
  Netlist nl(&lib);
  const auto a = nl.add_primary_input();
  const auto ff = nl.add_instance(*lib.find("DFF_X1"), {a}, "u_ff");
  nl.mark_primary_output(nl.instance(ff).output_net);
  const auto v = write_verilog(nl, "seq");
  EXPECT_NE(v.find("DFF_X1 u_ff (.d(pi0), .q("), std::string::npos);
}

TEST(Verilog, GeneratedCircuitEmitsEveryInstance) {
  const auto lib = make_skeleton_library("tech");
  const auto nl = generate_random_logic(lib, RandomLogicConfig{.num_gates = 40});
  const auto v = write_verilog(nl, "rand40");
  for (std::size_t i = 0; i < nl.num_instances(); ++i)
    EXPECT_NE(v.find(nl.instance(i).name), std::string::npos) << i;
  // One wire declaration per driven net.
  std::size_t wires = 0;
  for (std::size_t pos = v.find("  wire "); pos != std::string::npos;
       pos = v.find("  wire ", pos + 1))
    ++wires;
  EXPECT_EQ(wires, nl.num_instances());
}

}  // namespace
}  // namespace lore::circuit
