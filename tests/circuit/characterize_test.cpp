#include "src/circuit/characterize.hpp"

#include <gtest/gtest.h>

namespace lore::circuit {
namespace {

class CharacterizeTest : public ::testing::Test {
 protected:
  CharacterizeTest()
      : lib_(make_skeleton_library("tech")),
        characterizer_(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                                           .load_axis_ff = {1.0, 4.0, 16.0},
                                           .timestep_ps = 0.1},
                       device::SelfHeatingModel{}) {}

  CellLibrary lib_;
  Characterizer characterizer_;
  device::OperatingPoint op_{};
};

TEST_F(CharacterizeTest, TransientDelayPositiveAndMonotoneInLoad) {
  const auto& inv = lib_.cell(*lib_.find("INV_X1"));
  const auto light = characterizer_.simulate(inv, false, 20.0, 1.0, op_);
  const auto heavy = characterizer_.simulate(inv, false, 20.0, 16.0, op_);
  EXPECT_GT(light.delay_ps, 0.0);
  EXPECT_GT(heavy.delay_ps, light.delay_ps);
  EXPECT_GT(heavy.out_slew_ps, light.out_slew_ps);
}

TEST_F(CharacterizeTest, StrongerDriveIsFaster) {
  const auto& x1 = lib_.cell(*lib_.find("INV_X1"));
  const auto& x4 = lib_.cell(*lib_.find("INV_X4"));
  const auto t1 = characterizer_.simulate(x1, false, 20.0, 8.0, op_);
  const auto t4 = characterizer_.simulate(x4, false, 20.0, 8.0, op_);
  EXPECT_LT(t4.delay_ps, t1.delay_ps);
}

TEST_F(CharacterizeTest, HotterIsSlower) {
  const auto& nand = lib_.cell(*lib_.find("NAND2_X1"));
  device::OperatingPoint hot = op_;
  hot.temperature = 400.0;
  const auto cool_t = characterizer_.simulate(nand, false, 20.0, 4.0, op_);
  const auto hot_t = characterizer_.simulate(nand, false, 20.0, 4.0, hot);
  EXPECT_GT(hot_t.delay_ps, cool_t.delay_ps);
}

TEST_F(CharacterizeTest, AgedIsSlower) {
  const auto& nand = lib_.cell(*lib_.find("NAND2_X1"));
  device::OperatingPoint aged = op_;
  aged.delta_vth = 0.06;
  EXPECT_GT(characterizer_.simulate(nand, false, 20.0, 4.0, aged).delay_ps,
            characterizer_.simulate(nand, false, 20.0, 4.0, op_).delay_ps);
}

TEST_F(CharacterizeTest, CharacterizeCellFillsAllArcs) {
  Cell cell = lib_.cell(*lib_.find("NAND2_X2"));
  characterizer_.characterize_cell(cell, op_);
  ASSERT_EQ(cell.arcs.size(), 2u);
  for (const auto& arc : cell.arcs) {
    EXPECT_EQ(arc.rise_delay.slew_points(), 3u);
    EXPECT_GT(arc.rise_delay.at(0, 0), 0.0);
    EXPECT_GT(arc.fall_delay.at(2, 2), 0.0);
    EXPECT_GT(arc.rise_slew.at(1, 1), 0.0);
  }
  // Pin derating makes later pins slower.
  EXPECT_GT(cell.arcs[1].rise_delay.at(1, 1), cell.arcs[0].rise_delay.at(1, 1));
  // SHE table is populated and positive.
  EXPECT_GT(cell.she_temperature.at(1, 1), 0.0);
}

TEST_F(CharacterizeTest, EvaluationCounterAdvances) {
  const auto before = characterizer_.evaluations();
  const auto& inv = lib_.cell(*lib_.find("INV_X1"));
  characterizer_.simulate(inv, true, 10.0, 1.0, op_);
  EXPECT_EQ(characterizer_.evaluations(), before + 1);
}

TEST_F(CharacterizeTest, SheRiseGrowsWithLoad) {
  const auto& inv = lib_.cell(*lib_.find("INV_X1"));
  EXPECT_GT(characterizer_.she_rise(inv, 20.0, 16.0, op_),
            characterizer_.she_rise(inv, 20.0, 1.0, op_));
}

}  // namespace
}  // namespace lore::circuit
