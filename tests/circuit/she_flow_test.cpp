#include "src/circuit/she_flow.hpp"

#include <gtest/gtest.h>

#include "src/common/stats.hpp"

namespace lore::circuit {
namespace {

class SheFlowTest : public ::testing::Test {
 protected:
  SheFlowTest()
      : lib_(make_skeleton_library("tech")),
        characterizer_(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                                           .load_axis_ff = {1.0, 4.0, 16.0},
                                           .timestep_ps = 0.2},
                       device::SelfHeatingModel{}) {
    device::OperatingPoint typical{};
    typical.temperature = cfg_.chip_temperature;
    characterizer_.characterize_library(lib_, typical);
    nl_ = std::make_unique<Netlist>(
        generate_core_like(lib_, CoreLikeConfig{.pipeline_stages = 2,
                                                .regs_per_stage = 6,
                                                .gates_per_stage = 40}));
  }

  SheFlowConfig cfg_{};
  CellLibrary lib_;
  Characterizer characterizer_;
  std::unique_ptr<Netlist> nl_;
  StaEngine sta_{};
};

TEST_F(SheFlowTest, InstanceSheSpreadIsWide) {
  const auto sta = sta_.run(*nl_, LibraryDelayModel());
  const auto she = instance_she_rise(*nl_, sta,
                                     characterizer_.config().she_reference_toggle_ghz);
  ASSERT_EQ(she.size(), nl_->num_instances());
  lore::RunningStats stats;
  for (double t : she) {
    EXPECT_GE(t, 0.0);
    stats.add(t);
  }
  // Fig. 2's observation: few cell types, wide per-instance SHE variety.
  EXPECT_GT(stats.max(), 4.0 * (stats.mean() + 1e-12));
}

TEST_F(SheFlowTest, ExactInstanceLibraryIsHotterThanTypical) {
  const auto sta = sta_.run(*nl_, LibraryDelayModel());
  const auto she = instance_she_rise(*nl_, sta,
                                     characterizer_.config().she_reference_toggle_ghz);
  const auto exact = build_exact_instance_library(*nl_, she, characterizer_, cfg_);
  const auto arrival_typical = sta.worst_arrival_ps;
  const auto arrival_she = sta_.run(*nl_, exact).worst_arrival_ps;
  // Self-heating only adds temperature, so SHE-aware arrivals are >= typical.
  EXPECT_GE(arrival_she, arrival_typical * 0.999);
}

TEST_F(SheFlowTest, MlCharacterizerLearnsDelays) {
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 30, .temperature_samples = 3,
      .mlp = {.hidden = {32, 32}, .learning_rate = 3e-3, .epochs = 80, .batch_size = 32}});
  device::OperatingPoint base{};
  base.temperature = cfg_.chip_temperature;
  ml.train(lib_, characterizer_, base);
  EXPECT_TRUE(ml.trained());
  EXPECT_GT(ml.training_evaluations(), 0u);
  const double mape = ml.validation_mape(lib_, characterizer_, base, 100, 77);
  EXPECT_LT(mape, 0.15) << "ML characterizer relative error too large";
}

TEST_F(SheFlowTest, FullGuardbandFlowOrdering) {
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 30, .temperature_samples = 3,
      .mlp = {.hidden = {32, 32}, .learning_rate = 3e-3, .epochs = 80, .batch_size = 32}});
  const auto report = run_guardband_flow(*nl_, lib_, characterizer_, ml, cfg_, sta_);
  // Paper's claim: SHE-aware guardbands sit between typical and worst case.
  EXPECT_GT(report.worst_case_arrival_ps, report.typical_arrival_ps);
  EXPECT_GE(report.she_exact_arrival_ps, report.typical_arrival_ps * 0.99);
  EXPECT_LT(report.she_exact_arrival_ps, report.worst_case_arrival_ps);
  // The ML library tracks the exact one closely.
  EXPECT_NEAR(report.she_ml_arrival_ps / report.she_exact_arrival_ps, 1.0, 0.1);
  EXPECT_GT(report.worst_case_guardband(), report.she_guardband());
}

}  // namespace
}  // namespace lore::circuit
