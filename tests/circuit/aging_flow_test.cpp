#include "src/circuit/aging_flow.hpp"

#include <gtest/gtest.h>

namespace lore::circuit {
namespace {

class AgingFlowTest : public ::testing::Test {
 protected:
  AgingFlowTest()
      : lib_(make_skeleton_library("tech")),
        characterizer_(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                                           .load_axis_ff = {1.0, 4.0, 16.0},
                                           .timestep_ps = 0.3},
                       device::SelfHeatingModel{}) {
    device::OperatingPoint typical{};
    typical.temperature = cfg_.chip_temperature;
    characterizer_.characterize_library(lib_, typical);
    nl_ = std::make_unique<Netlist>(
        generate_core_like(lib_, CoreLikeConfig{.pipeline_stages = 2,
                                                .regs_per_stage = 5,
                                                .gates_per_stage = 30}));
    const auto sta_result = sta_.run(*nl_, LibraryDelayModel());
    she_ = instance_she_rise(*nl_, sta_result,
                             characterizer_.config().she_reference_toggle_ghz);
  }

  AgingFlowConfig cfg_{};
  CellLibrary lib_;
  Characterizer characterizer_;
  std::unique_ptr<Netlist> nl_;
  StaEngine sta_{};
  std::vector<double> she_;
  device::AgingModel model_{};
};

TEST_F(AgingFlowTest, DvthGrowsWithLifetime) {
  AgingFlowConfig young = cfg_;
  young.years = 1.0;
  AgingFlowConfig old = cfg_;
  old.years = 10.0;
  const auto dvth_young = instance_aging_dvth(*nl_, she_, model_, young);
  const auto dvth_old = instance_aging_dvth(*nl_, she_, model_, old);
  for (std::size_t i = 0; i < dvth_young.size(); ++i) {
    EXPECT_GT(dvth_young[i], 0.0);
    EXPECT_GT(dvth_old[i], dvth_young[i]);
  }
}

TEST_F(AgingFlowTest, HotterInstancesAgeFaster) {
  const auto dvth = instance_aging_dvth(*nl_, she_, model_, cfg_);
  // Find the hottest and coolest instances of the same cell type with the
  // same activity class; at minimum the population must show spread.
  double lo = 1e9, hi = 0.0;
  for (double v : dvth) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, lo * 1.05);
}

TEST_F(AgingFlowTest, AgedTimingIsSlower) {
  const auto dvth = instance_aging_dvth(*nl_, she_, model_, cfg_);
  const auto aged = build_aged_instance_library(*nl_, she_, dvth, characterizer_, cfg_);
  const double fresh = sta_.run(*nl_, LibraryDelayModel()).worst_arrival_ps;
  const double old = sta_.run(*nl_, aged).worst_arrival_ps;
  EXPECT_GT(old, fresh);
}

TEST_F(AgingFlowTest, FullFlowOrdering) {
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 60, .temperature_samples = 4,
      .mlp = {.hidden = {48, 48}, .learning_rate = 2e-3, .epochs = 150, .batch_size = 32}});
  device::OperatingPoint typical{};
  typical.temperature = cfg_.chip_temperature;
  ml.train(lib_, characterizer_, typical);

  const auto report = run_aging_flow(*nl_, lib_, characterizer_, ml, model_, cfg_, sta_);
  EXPECT_GT(report.aged_exact_arrival_ps, report.fresh_arrival_ps);
  EXPECT_GT(report.worst_corner_arrival_ps, report.aged_exact_arrival_ps);
  EXPECT_GT(report.max_dvth, report.mean_dvth);
  // The ML aged library tracks exact within a reasonable band, and the
  // bias-cancelled ML guardband ratio tracks the exact ratio tightly.
  EXPECT_NEAR(report.aged_ml_arrival_ps / report.aged_exact_arrival_ps, 1.0, 0.15);
  EXPECT_GT(report.ml_aging_guardband(), 1.0);
  EXPECT_NEAR(report.ml_aging_guardband() / report.exact_aging_guardband(), 1.0, 0.05);
}

}  // namespace
}  // namespace lore::circuit
