// Parameterized STA property sweep over randomly generated circuits: the
// invariants every timing engine must satisfy, checked per seed.
#include <gtest/gtest.h>

#include "src/circuit/characterize.hpp"
#include "src/circuit/sta.hpp"

namespace lore::circuit {
namespace {

class StaProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  StaProperties() : lib_(make_skeleton_library("tech")) {
    Characterizer characterizer(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                                                    .load_axis_ff = {1.0, 4.0, 16.0},
                                                    .timestep_ps = 0.5},
                                device::SelfHeatingModel{});
    characterizer.characterize_library(lib_, device::OperatingPoint{});
  }
  CellLibrary lib_;
  StaEngine sta_{};
};

TEST_P(StaProperties, ArrivalsNonNegativeAndDelaysPositive) {
  const auto nl = generate_random_logic(
      lib_, RandomLogicConfig{.num_gates = 120, .seed = GetParam()});
  const auto r = sta_.run(nl, LibraryDelayModel());
  EXPECT_GT(r.worst_arrival_ps, 0.0);
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    EXPECT_GE(r.net_timing[n].arrival_ps, 0.0);
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    EXPECT_GT(r.instance_delay_ps[i], 0.0) << nl.instance(i).name;
    EXPECT_GT(r.instance_load_ff[i], 0.0);
  }
}

TEST_P(StaProperties, CriticalPathDelaysSumToWorstArrival) {
  const auto nl = generate_random_logic(
      lib_, RandomLogicConfig{.num_gates = 120, .seed = GetParam()});
  const auto r = sta_.run(nl, LibraryDelayModel());
  ASSERT_FALSE(r.critical_path.empty());
  double sum = 0.0;
  for (auto inst : r.critical_path) sum += r.instance_delay_ps[inst];
  EXPECT_NEAR(sum, r.worst_arrival_ps, 1e-6 * r.worst_arrival_ps + 1e-9);
}

TEST_P(StaProperties, DeratingIsMonotone) {
  const auto nl = generate_random_logic(
      lib_, RandomLogicConfig{.num_gates = 100, .seed = GetParam()});
  double prev = 0.0;
  for (double scale : {0.8, 1.0, 1.2, 1.5}) {
    const double arrival = sta_.run(nl, LibraryDelayModel(scale)).worst_arrival_ps;
    EXPECT_GT(arrival, prev);
    prev = arrival;
  }
}

TEST_P(StaProperties, NoInstanceArrivesAfterWorst) {
  const auto nl = generate_random_logic(
      lib_, RandomLogicConfig{.num_gates = 100, .seed = GetParam()});
  const auto r = sta_.run(nl, LibraryDelayModel());
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    EXPECT_LE(r.net_timing[n].arrival_ps, r.worst_arrival_ps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaProperties,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lore::circuit
