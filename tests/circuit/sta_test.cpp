#include "src/circuit/sta.hpp"

#include <gtest/gtest.h>

#include "src/circuit/characterize.hpp"

namespace lore::circuit {
namespace {

class StaTest : public ::testing::Test {
 protected:
  StaTest()
      : lib_(make_skeleton_library("tech")),
        characterizer_(CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                                           .load_axis_ff = {1.0, 4.0, 16.0},
                                           .timestep_ps = 0.1},
                       device::SelfHeatingModel{}) {
    characterizer_.characterize_library(lib_, device::OperatingPoint{});
  }

  CellLibrary lib_;
  Characterizer characterizer_;
  StaEngine sta_{};
};

TEST_F(StaTest, ChainDelayIsSumOfStages) {
  // PI -> INV -> INV -> PO: arrival at PO ~ two inverter delays.
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto inv = *lib_.find("INV_X1");
  const auto u1 = nl.add_instance(inv, {a});
  const auto u2 = nl.add_instance(inv, {nl.instance(u1).output_net});
  nl.mark_primary_output(nl.instance(u2).output_net);

  const auto r = sta_.run(nl, LibraryDelayModel());
  EXPECT_GT(r.worst_arrival_ps, 0.0);
  EXPECT_NEAR(r.worst_arrival_ps, r.instance_delay_ps[u1] + r.instance_delay_ps[u2], 1e-9);
  EXPECT_EQ(r.critical_path.size(), 2u);
  EXPECT_EQ(r.critical_path[0], u1);
  EXPECT_EQ(r.critical_path[1], u2);
}

TEST_F(StaTest, LongerChainIsSlower) {
  auto build_chain = [&](std::size_t n) {
    Netlist nl(&lib_);
    auto net = nl.add_primary_input();
    const auto inv = *lib_.find("INV_X1");
    for (std::size_t i = 0; i < n; ++i) net = nl.instance(nl.add_instance(inv, {net})).output_net;
    nl.mark_primary_output(net);
    return sta_.run(nl, LibraryDelayModel()).worst_arrival_ps;
  };
  EXPECT_GT(build_chain(8), build_chain(3));
}

TEST_F(StaTest, MaxOfConvergingPaths) {
  // Two parallel paths of different depth converge on a NAND: arrival is
  // governed by the deeper path.
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto inv = *lib_.find("INV_X1");
  // Short path: direct. Long path: 4 inverters.
  auto net = a;
  for (int i = 0; i < 4; ++i) net = nl.instance(nl.add_instance(inv, {net})).output_net;
  const auto nand = nl.add_instance(*lib_.find("NAND2_X1"), {a, net});
  nl.mark_primary_output(nl.instance(nand).output_net);

  const auto r = sta_.run(nl, LibraryDelayModel());
  // Critical path goes through the inverter chain (5 cells incl. the NAND).
  EXPECT_EQ(r.critical_path.size(), 5u);
}

TEST_F(StaTest, DffBreaksPathsAndLaunchesFresh) {
  // PI -> INV x12 -> DFF -> INV -> PO. Worst endpoint is the DFF D-pin (the
  // long inverter chain), while the PO path is only CLK->Q + one inverter.
  Netlist nl(&lib_);
  auto net = nl.add_primary_input();
  const auto inv = *lib_.find("INV_X1");
  for (int i = 0; i < 12; ++i) net = nl.instance(nl.add_instance(inv, {net})).output_net;
  const auto ff = nl.add_instance(*lib_.find("DFF_X1"), {net});
  const auto u_out = nl.add_instance(inv, {nl.instance(ff).output_net});
  nl.mark_primary_output(nl.instance(u_out).output_net);

  const auto r = sta_.run(nl, LibraryDelayModel());
  const double d_pin_arrival = r.net_timing[net].arrival_ps;
  const double po_arrival = r.net_timing[nl.instance(u_out).output_net].arrival_ps;
  EXPECT_GT(d_pin_arrival, po_arrival);
  EXPECT_DOUBLE_EQ(r.worst_arrival_ps, d_pin_arrival);
}

TEST_F(StaTest, DeratedModelScalesArrival) {
  const auto nl = generate_random_logic(lib_, RandomLogicConfig{.num_gates = 80});
  const auto nominal = sta_.run(nl, LibraryDelayModel(1.0)).worst_arrival_ps;
  const auto derated = sta_.run(nl, LibraryDelayModel(1.25)).worst_arrival_ps;
  EXPECT_GT(derated, nominal * 1.1);
}

TEST_F(StaTest, SlackAgainstClock) {
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto u = nl.add_instance(*lib_.find("BUF_X2"), {a});
  nl.mark_primary_output(nl.instance(u).output_net);
  const auto r = sta_.run(nl, LibraryDelayModel());
  EXPECT_GT(r.worst_slack_ps(10000.0), 0.0);
  EXPECT_LT(r.worst_slack_ps(0.001), 0.0);
}

TEST_F(StaTest, SdfWriterEmitsEveryInstance) {
  const auto nl = generate_random_logic(lib_, RandomLogicConfig{.num_gates = 10});
  const auto r = sta_.run(nl, LibraryDelayModel());
  const auto sdf = write_sdf(nl, r.instance_delay_ps, "DELAY_PS");
  for (std::size_t i = 0; i < nl.num_instances(); ++i)
    EXPECT_NE(sdf.find(nl.instance(i).name), std::string::npos);
  EXPECT_NE(sdf.find("DELAY_PS"), std::string::npos);
  // The Fig. 3 trick: the same writer carries temperatures.
  std::vector<double> temps(nl.num_instances(), 42.0);
  const auto sdf_temp = write_sdf(nl, temps, "SHE_TEMP_K");
  EXPECT_NE(sdf_temp.find("SHE_TEMP_K"), std::string::npos);
}

}  // namespace
}  // namespace lore::circuit
