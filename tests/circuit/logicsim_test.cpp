#include "src/circuit/logicsim.hpp"

#include <gtest/gtest.h>

#include "src/ml/ensemble.hpp"
#include "src/ml/metrics.hpp"

namespace lore::circuit {
namespace {

class LogicSimTest : public ::testing::Test {
 protected:
  LogicSimTest() : lib_(make_skeleton_library("tech")) {}
  CellLibrary lib_;
};

TEST_F(LogicSimTest, EvaluatesSmallCircuit) {
  // y = NAND(a, b); z = INV(y).
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto b = nl.add_primary_input();
  const auto nand = nl.add_instance(*lib_.find("NAND2_X1"), {a, b});
  const auto inv = nl.add_instance(*lib_.find("INV_X1"), {nl.instance(nand).output_net});
  nl.mark_primary_output(nl.instance(inv).output_net);

  LogicSimulator sim(&nl);
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      const auto nets = sim.evaluate({va, vb});
      EXPECT_EQ(nets[nl.instance(nand).output_net], !(va && vb));
      EXPECT_EQ(nets[nl.instance(inv).output_net], va && vb);
      const auto po = sim.outputs(nets);
      ASSERT_EQ(po.size(), 1u);
      EXPECT_EQ(po[0], va && vb);
    }
  }
}

TEST_F(LogicSimTest, StuckAtForcesOutput) {
  Netlist nl(&lib_);
  const auto a = nl.add_primary_input();
  const auto buf = nl.add_instance(*lib_.find("BUF_X1"), {a});
  nl.mark_primary_output(nl.instance(buf).output_net);
  LogicSimulator sim(&nl);
  const auto nets = sim.evaluate({true}, static_cast<std::ptrdiff_t>(buf), false);
  EXPECT_FALSE(nets[nl.instance(buf).output_net]);
}

TEST_F(LogicSimTest, CampaignObservabilityBounds) {
  const auto nl = generate_random_logic(lib_, RandomLogicConfig{.num_gates = 60, .seed = 3});
  lore::Rng rng(4);
  const auto campaign = stuck_at_campaign(nl, {.trials = 16, .base_seed = rng.next_u64()});
  ASSERT_EQ(campaign.size(), nl.num_instances());
  for (const auto& g : campaign) {
    EXPECT_GE(g.criticality(), 0.0);
    EXPECT_LE(g.criticality(), 1.0);
  }
  // Gates driving primary outputs directly must be highly observable.
  for (const auto& g : campaign) {
    if (nl.net(nl.instance(g.instance).output_net).is_primary_output) {
      EXPECT_GT(g.stuck0_observability + g.stuck1_observability, 0.5);
    }
  }
}

TEST_F(LogicSimTest, GateFeaturesShape) {
  const auto nl = generate_random_logic(lib_, RandomLogicConfig{.num_gates = 30, .seed = 5});
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto f = gate_features(nl, i);
    ASSERT_EQ(f.size(), kGateFeatureDim);
    EXPECT_GE(f[0], 1.0);  // fan-in
    EXPECT_GE(f[3], 0.0);  // distance to PO
  }
}

TEST_F(LogicSimTest, FeaturesPredictCriticality) {
  // The [20] experiment in miniature: train on one circuit, predict another.
  const auto train_nl =
      generate_random_logic(lib_, RandomLogicConfig{.num_gates = 90, .seed = 7});
  const auto test_nl =
      generate_random_logic(lib_, RandomLogicConfig{.num_gates = 90, .seed = 8});
  lore::Rng rng(9);
  const auto train_campaign = stuck_at_campaign(train_nl, {.trials = 24, .base_seed = rng.next_u64()});
  const auto test_campaign = stuck_at_campaign(test_nl, {.trials = 24, .base_seed = rng.next_u64()});
  const auto train = gate_criticality_dataset(train_nl, train_campaign, 0.3);
  const auto test = gate_criticality_dataset(test_nl, test_campaign, 0.3);

  ml::GradientBoostingClassifier gbdt(ml::GradientBoostingClassifierConfig{.num_rounds = 40});
  gbdt.fit(train.x, train.labels);
  const double acc = ml::accuracy(test.labels, gbdt.predict_batch(test.x));
  EXPECT_GT(acc, 0.7) << "cross-circuit criticality accuracy " << acc;
}

}  // namespace
}  // namespace lore::circuit
