#include "src/circuit/liberty.hpp"

#include <gtest/gtest.h>

namespace lore::circuit {
namespace {

TEST(TimingTable, ExactOnGridPoints) {
  TimingTable t({10.0, 20.0}, {1.0, 2.0});
  t.at(0, 0) = 5.0;
  t.at(0, 1) = 7.0;
  t.at(1, 0) = 9.0;
  t.at(1, 1) = 11.0;
  EXPECT_DOUBLE_EQ(t.lookup(10.0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(t.lookup(20.0, 2.0), 11.0);
}

TEST(TimingTable, BilinearMidpoint) {
  TimingTable t({10.0, 20.0}, {1.0, 2.0});
  t.at(0, 0) = 4.0;
  t.at(0, 1) = 6.0;
  t.at(1, 0) = 8.0;
  t.at(1, 1) = 10.0;
  EXPECT_DOUBLE_EQ(t.lookup(15.0, 1.5), 7.0);
}

TEST(TimingTable, ClampsOutOfRange) {
  TimingTable t({10.0, 20.0}, {1.0, 2.0});
  t.at(0, 0) = 4.0;
  t.at(1, 1) = 10.0;
  t.at(0, 1) = 6.0;
  t.at(1, 0) = 8.0;
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 0.1), 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(500.0, 99.0), 10.0);
}

TEST(TimingTable, MaxValue) {
  TimingTable t({1.0, 2.0}, {1.0});
  t.at(0, 0) = 3.0;
  t.at(1, 0) = 42.0;
  EXPECT_DOUBLE_EQ(t.max_value(), 42.0);
}

TEST(CellFunction, InputCounts) {
  EXPECT_EQ(function_input_count(CellFunction::kInv), 1u);
  EXPECT_EQ(function_input_count(CellFunction::kNand2), 2u);
  EXPECT_EQ(function_input_count(CellFunction::kAoi21), 3u);
  EXPECT_EQ(function_input_count(CellFunction::kDff), 1u);
}

TEST(CellFunction, TruthTables) {
  const bool tt[] = {true, true, false};
  EXPECT_FALSE(evaluate_function(CellFunction::kNand2, tt));
  EXPECT_TRUE(evaluate_function(CellFunction::kAnd2, tt));
  EXPECT_FALSE(evaluate_function(CellFunction::kXor2, tt));
  const bool ff[] = {false, false, true};
  EXPECT_TRUE(evaluate_function(CellFunction::kNor2, ff));
  // MUX2: select = in[2] -> picks in[1].
  const bool mux_sel1[] = {false, true, true};
  EXPECT_TRUE(evaluate_function(CellFunction::kMux2, mux_sel1));
  const bool mux_sel0[] = {false, true, false};
  EXPECT_FALSE(evaluate_function(CellFunction::kMux2, mux_sel0));
  // AOI21 = !((a&b)|c).
  const bool aoi[] = {true, false, false};
  EXPECT_TRUE(evaluate_function(CellFunction::kAoi21, aoi));
}

TEST(SkeletonLibrary, HasAllFunctionsAndDrives) {
  const auto lib = make_skeleton_library("tech");
  EXPECT_EQ(lib.size(), 36u);  // 12 functions x 3 drives
  EXPECT_TRUE(lib.find("INV_X1").has_value());
  EXPECT_TRUE(lib.find("DFF_X4").has_value());
  EXPECT_FALSE(lib.find("NAND3_X1").has_value());
}

TEST(SkeletonLibrary, DriveScalesWidthAndCap) {
  const auto lib = make_skeleton_library("tech");
  const auto& x1 = lib.cell(*lib.find("NAND2_X1"));
  const auto& x4 = lib.cell(*lib.find("NAND2_X4"));
  EXPECT_GT(x4.stage.pulldown.width_um, x1.stage.pulldown.width_um);
  EXPECT_GT(x4.input_cap_ff, x1.input_cap_ff);
  EXPECT_GT(x4.area_um2, x1.area_um2);
}

}  // namespace
}  // namespace lore::circuit
