// Composition-engine contract (DESIGN.md §14): a scenario's results are
// bit-identical at any thread count and across fabric shard dispatch, and the
// engine's stages reproduce the legacy per-layer entry points exactly — the
// DSL is a new steering wheel, not a new simulator.
#include "src/scenario/engine.hpp"

#include <gtest/gtest.h>

#include "src/fabric/runners.hpp"
#include "src/os/replica.hpp"
#include "src/rollback/montecarlo.hpp"
#include "src/scenario/invariants.hpp"

namespace {

using namespace lore;
using namespace lore::scenario;

ScenarioSpec fault_heavy_spec() {
  ScenarioSpec spec;
  spec.name = "engine_test";
  spec.seed = 321;
  spec.workloads.push_back({"dot_product", 10, 5});
  spec.workloads.push_back({"checksum", 12, 6});
  spec.faults.push_back({"arch.fault", "register", 0, 48});
  spec.faults.push_back({"arch.pipeline", "register", 1, 32});
  return spec;
}

TEST(ScenarioEngine, ThreadCountDoesNotChangeResults) {
  ScenarioSpec spec = fault_heavy_spec();
  spec.campaign.threads = 1;
  const ScenarioResult serial = run_scenario(spec);
  spec.campaign.threads = 4;
  const ScenarioResult parallel = run_scenario(spec);
  EXPECT_EQ(result_fingerprint(serial), result_fingerprint(parallel));
  ASSERT_EQ(serial.faults.size(), parallel.faults.size());
  for (std::size_t i = 0; i < serial.faults.size(); ++i)
    EXPECT_EQ(serial.faults[i].records, parallel.faults[i].records);
}

TEST(ScenarioEngine, FingerprintSeesSeedChanges) {
  ScenarioSpec spec = fault_heavy_spec();
  const std::uint64_t base = result_fingerprint(run_scenario(spec));
  spec.seed = 322;
  EXPECT_NE(base, result_fingerprint(run_scenario(spec)));
}

TEST(ScenarioEngine, RollbackStageMatchesLegacyEntryPoint) {
  ScenarioSpec spec;
  spec.name = "rollback_equiv";
  spec.rollback = RollbackSpec{};
  spec.rollback->schedulers = {"ds", "wcet"};
  spec.rollback->runs_per_point = 6;
  spec.rollback->base_seed = 97;
  spec.rollback->error_probabilities = {1e-6, 5e-6, 1e-5};
  const ScenarioResult result = run_scenario(spec);

  rollback::ExperimentConfig cfg;
  cfg.runs_per_point = 6;
  cfg.error_probabilities = {1e-6, 5e-6, 1e-5};
  cfg.campaign.base_seed = 97;
  const auto direct = rollback::run_experiment(
      cfg, {rollback::SchedulerKind::kDs, rollback::SchedulerKind::kWcet});

  ASSERT_TRUE(result.rollback.has_value());
  ASSERT_EQ(result.rollback->experiment.points.size(), direct.points.size());
  for (std::size_t i = 0; i < direct.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.rollback->experiment.points[i].p, direct.points[i].p);
    EXPECT_EQ(result.rollback->experiment.points[i].hit_rate, direct.points[i].hit_rate);
  }
}

TEST(ScenarioEngine, MixedCritStageMatchesLegacyEntryPoint) {
  ScenarioSpec spec;
  spec.name = "mc_equiv";
  spec.mixed_criticality = MixedCritSpec{};
  spec.mixed_criticality->tasks.num_tasks = 6;
  spec.mixed_criticality->tasks.utilization = 0.6;
  spec.mixed_criticality->tasks.seed = 41;
  spec.mixed_criticality->force_criticality.push_back({0, "high"});
  spec.mixed_criticality->overrun_factors = {1.1, 1.8};
  spec.mixed_criticality->duration_ms = 4000.0;
  const ScenarioResult result = run_scenario(spec);

  os::TaskSet tasks = os::generate_taskset(os::TaskSetConfig{
      .num_tasks = 6, .total_utilization = 0.6, .seed = 41});
  tasks[0].criticality = os::Criticality::kHigh;
  ASSERT_TRUE(result.mixed_criticality.has_value());
  ASSERT_EQ(result.mixed_criticality->rows.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const double overrun = spec.mixed_criticality->overrun_factors[i];
    const auto direct = os::simulate_mixed_criticality(
        tasks, os::McSimConfig{.duration_ms = 4000.0, .overrun_factor = overrun});
    const MixedCritRow& row = result.mixed_criticality->rows[i];
    EXPECT_EQ(row.hi_jobs, direct.hi_jobs);
    EXPECT_EQ(row.hi_misses, direct.hi_misses);
    EXPECT_EQ(row.mode_switches, direct.mode_switches);
    EXPECT_DOUBLE_EQ(row.lo_qos, direct.lo_qos());
  }
}

// The "scenario.fault" fabric kind must execute the exact trial bodies
// run_scenario executes: shard the campaign, run each shard through the
// registered runner, merge the LORECKP1 payloads, decode — and get the very
// same records in the very same order.
TEST(ScenarioEngine, FabricShardDispatchIsBitIdentical) {
  const ScenarioSpec spec = fault_heavy_spec();
  const ScenarioResult direct = run_scenario(spec);

  register_scenario_runners();
  const fabric::ShardRunner runner = fabric::find_runner("scenario.fault");
  ASSERT_TRUE(static_cast<bool>(runner));

  for (std::size_t fi = 0; fi < spec.faults.size(); ++fi) {
    const CampaignSpec resolved = resolved_fault_spec(spec, fi);
    CampaignCheckpoint merged;
    merged.identity = resolved.identity_hash();
    merged.build_tag = checkpoint_build_tag();
    merged.trials = resolved.trials;
    for (const TrialRange& range : shard_trial_ranges(resolved.trials, 3)) {
      fabric::ShardJob job;
      job.kind = "scenario.fault";
      job.params = fault_shard_params(spec, fi);
      job.spec = resolved;
      job.range = range;
      merge_checkpoint_entries(merged, runner(job));
    }
    const auto decoded = fault_records_from_checkpoint(spec, fi, merged);
    EXPECT_TRUE(decoded.report.complete());
    EXPECT_EQ(decoded.records, direct.faults[fi].records) << "fault " << fi;
  }
}

// A hand-planted cross-layer defect: heavy aging shrinks the safe frequency
// while a static governor pins the ladder top — the differential checker
// must connect the two layers and flag it.
TEST(ScenarioEngine, InvariantCheckerCatchesPlantedGuardbandViolation) {
  ScenarioSpec spec;
  spec.name = "planted_guardband";
  spec.device = DeviceSpec{};
  spec.device->years = 15.0;
  spec.device->nominal_fmax_ghz = 2.0;
  spec.device->margin = 1.5;
  spec.os = OsSpec{};
  spec.os->governor = "static";
  spec.os->vf_index = 4;  // ladder top: 2.0 GHz
  spec.os->duration_ms = 200.0;
  spec.os->tasks.num_tasks = 3;
  const ScenarioResult result = run_scenario(spec);
  ASSERT_TRUE(result.device.has_value());
  ASSERT_TRUE(result.os.has_value());
  ASSERT_LT(result.device->safe_fmax_ghz, result.os->max_freq_used_ghz);

  const auto findings = check_invariants(result);
  bool caught = false;
  for (const auto& f : findings)
    if (f.id == "guardband.os_vs_circuit" && f.severity == Severity::kViolation)
      caught = true;
  EXPECT_TRUE(caught);
  EXPECT_GE(count_violations(findings), 1u);
}

// The same scenario with a healthy margin must NOT trip the checker — the
// violation above is the planted defect, not checker noise.
TEST(ScenarioEngine, InvariantCheckerPassesHealthyGuardband) {
  ScenarioSpec spec;
  spec.name = "healthy_guardband";
  spec.device = DeviceSpec{};
  spec.device->years = 2.0;
  spec.device->nominal_fmax_ghz = 3.0;
  spec.os = OsSpec{};
  spec.os->governor = "static";
  spec.os->vf_index = 4;
  spec.os->duration_ms = 200.0;
  spec.os->tasks.num_tasks = 3;
  const auto findings = check_invariants(run_scenario(spec));
  for (const auto& f : findings)
    EXPECT_NE(f.severity, Severity::kViolation) << f.id << ": " << f.message;
}

}  // namespace
