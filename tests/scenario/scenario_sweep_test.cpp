// Generative sweep contract (DESIGN.md §14): the ScenarioGenerator is a pure
// function of (base_seed, index) — same seed, same scenarios, same findings,
// on any host — and the planted-defect mode produces scenarios whose
// guardband violation the invariant checker is guaranteed to catch.
#include "src/scenario/generate.hpp"

#include <gtest/gtest.h>

#include "src/scenario/engine.hpp"
#include "src/scenario/invariants.hpp"

namespace {

using namespace lore::scenario;

TEST(ScenarioGenerator, AtIsPure) {
  GeneratorConfig cfg;
  cfg.base_seed = 777;
  ScenarioGenerator gen{cfg};
  for (std::size_t i : {0u, 3u, 17u, 64u}) {
    const std::string once = to_json(gen.at(i)).dump(2);
    const std::string twice = to_json(gen.at(i)).dump(2);
    EXPECT_EQ(once, twice) << "index " << i;
  }
}

TEST(ScenarioGenerator, IndicesAreIndependentStreams) {
  ScenarioGenerator gen{GeneratorConfig{}};
  // Reading index 9 first must not perturb index 2 (counter-seeded, no
  // shared stream) — and distinct indices produce distinct scenarios.
  const std::string nine = to_json(gen.at(9)).dump(2);
  const std::string two = to_json(gen.at(2)).dump(2);
  EXPECT_EQ(two, to_json(gen.at(2)).dump(2));
  EXPECT_EQ(nine, to_json(gen.at(9)).dump(2));
  EXPECT_NE(two, nine);
}

TEST(ScenarioGenerator, SeedChangesTheSweep) {
  GeneratorConfig a;
  a.base_seed = 1;
  GeneratorConfig b;
  b.base_seed = 2;
  EXPECT_NE(to_json(ScenarioGenerator{a}.at(0)).dump(2),
            to_json(ScenarioGenerator{b}.at(0)).dump(2));
}

TEST(ScenarioSweep, RepeatedSweepsProduceIdenticalFindings) {
  GeneratorConfig cfg;
  cfg.base_seed = 42;
  const SweepReport first = run_sweep(cfg, 6);
  const SweepReport second = run_sweep(cfg, 6);
  EXPECT_EQ(first.scenarios, 6u);
  EXPECT_EQ(first.trials, second.trials);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.warnings, second.warnings);
  EXPECT_EQ(first.findings_fingerprint(), second.findings_fingerprint());
}

TEST(ScenarioSweep, PlantedViolationsAreAlwaysCaught) {
  GeneratorConfig cfg;
  cfg.base_seed = 7;
  cfg.planted_violation_rate = 1.0;
  const SweepReport report = run_sweep(cfg, 3);
  ASSERT_EQ(report.outcomes.size(), 3u);
  for (const SweepOutcome& out : report.outcomes) {
    bool caught = false;
    for (const InvariantFinding& f : out.findings)
      if (f.id == "guardband.os_vs_circuit" && f.severity == Severity::kViolation)
        caught = true;
    EXPECT_TRUE(caught) << out.name << " missed its planted guardband violation";
  }
  EXPECT_GE(report.violations, 3u);
}

TEST(ScenarioSweep, ReportJsonCarriesFingerprintAndFindings) {
  GeneratorConfig cfg;
  cfg.base_seed = 7;
  cfg.planted_violation_rate = 1.0;
  const SweepReport report = run_sweep(cfg, 2);
  const lore::obs::Json j = report.to_json();
  EXPECT_EQ(j.at("schema").as_string(), "lore.scenario_sweep.v1");
  EXPECT_EQ(j.at("scenarios").as_int(), 2);
  EXPECT_FALSE(j.at("findings_fingerprint").as_string().empty());
  EXPECT_GT(j.at("outcomes").size(), 0u);
}

}  // namespace
