// Codec contract for the declarative scenario DSL (DESIGN.md §14): the
// to_json/from_json round trip is lossless on obs::Json, unknown keys are
// forward-compatible noise, and malformed input fails with an origin-anchored
// file:line:column diagnostic instead of a bare parser message.
#include "src/scenario/spec.hpp"

#include <gtest/gtest.h>

#include "src/obs/json.hpp"

namespace {

using namespace lore::scenario;

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "kitchen_sink";
  spec.description = "every section populated";
  spec.seed = 2024;
  spec.campaign.threads = 3;
  spec.campaign.base_seed = 555;
  spec.campaign.max_retries = 1;
  spec.workloads.push_back({"matmul", 4, 7});
  spec.workloads.push_back({"checksum", 16, 9});
  spec.faults.push_back({"arch.fault", "memory", 1, 64});
  spec.faults.push_back({"arch.pipeline", "register", 0, 32});
  spec.thermal.push_back({1000.0, 320.0});
  spec.thermal.push_back({500.0, 330.0});
  spec.device = DeviceSpec{};
  spec.device->years = 7.5;
  spec.os = OsSpec{};
  spec.os->governor = "static";
  spec.os->vf_index = 1;
  spec.mixed_criticality = MixedCritSpec{};
  spec.mixed_criticality->force_criticality.push_back({0, "high"});
  spec.replica_drift = ReplicaDriftSpec{};
  spec.replica_drift->phases.push_back({"calm", 0.002, 4});
  spec.rollback = RollbackSpec{};
  spec.rollback->schedulers = {"ds", "wcet"};
  spec.rollback->base_seed = 11;
  spec.rollback->error_probabilities = {1e-6, 1e-5};
  spec.crosslayer = CrossLayerSpec{};
  spec.crosslayer->episodes = 4;
  return spec;
}

TEST(ScenarioSpec, RoundTripIsLossless) {
  const ScenarioSpec spec = full_spec();
  const lore::obs::Json first = to_json(spec);
  const ScenarioSpec reparsed = scenario_from_json(first);
  const lore::obs::Json second = to_json(reparsed);
  // obs::Json preserves insertion order, so equal dumps mean equal documents.
  EXPECT_EQ(first.dump(2), second.dump(2));
}

TEST(ScenarioSpec, RoundTripSurvivesTextSerialization) {
  const ScenarioSpec spec = full_spec();
  const std::string text = to_json(spec).dump(2);
  const ScenarioSpec reparsed = parse_scenario(text, "roundtrip.json");
  EXPECT_EQ(text, to_json(reparsed).dump(2));
}

TEST(ScenarioSpec, UnknownKeysAreTolerated) {
  const char* text = R"({
    "schema": "lore.scenario.v1",
    "name": "forward_compat",
    "future_section": {"nested": [1, 2, 3]},
    "seed": 5,
    "campaign": {"threads": 2, "future_knob": true},
    "workloads": [{"name": "matmul", "scale": 4, "annotation": "ignored"}],
    "faults": [{"layer": "arch.fault", "target": "register", "workload": 0,
                "trials": 10, "color": "red"}]
  })";
  const ScenarioSpec spec = parse_scenario(text, "compat.json");
  EXPECT_EQ(spec.name, "forward_compat");
  EXPECT_EQ(spec.seed, 5u);
  EXPECT_EQ(spec.campaign.threads, 2u);
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].name, "matmul");
  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_EQ(spec.faults[0].trials, 10u);
}

TEST(ScenarioSpec, MalformedJsonReportsFileLineColumn) {
  // The defect (a dangling comma before '}') sits on line 3.
  const char* text = "{\n  \"name\": \"broken\",\n  \"seed\": ,\n}\n";
  try {
    parse_scenario(text, "broken.scenario.json");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("broken.scenario.json:3:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("json parse error"), std::string::npos) << msg;
  }
}

TEST(ScenarioSpec, SemanticErrorsCarryJsonPath) {
  const char* bad_layer = R"({
    "workloads": [{"name": "matmul"}],
    "faults": [{"layer": "quantum.fault"}]
  })";
  try {
    parse_scenario(bad_layer, "bad.json");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad.json"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scenario.faults[0].layer"), std::string::npos) << msg;
  }
}

TEST(ScenarioSpec, FaultWorkloadIndexIsRangeChecked) {
  const char* dangling = R"({
    "workloads": [{"name": "matmul"}],
    "faults": [{"layer": "arch.fault", "workload": 3}]
  })";
  try {
    parse_scenario(dangling, "dangling.json");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST(ScenarioSpec, UnsupportedSchemaIsRejected) {
  EXPECT_THROW(parse_scenario(R"({"schema": "lore.scenario.v9"})", "future.json"),
               SpecError);
}

TEST(ScenarioSpec, EmptyObjectYieldsDefaults) {
  const ScenarioSpec spec = parse_scenario("{}", "defaults.json");
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.campaign.threads, 0u);
  EXPECT_FALSE(spec.campaign.base_seed.has_value());
  EXPECT_TRUE(spec.workloads.empty());
  EXPECT_FALSE(spec.device.has_value());
  EXPECT_FALSE(spec.rollback.has_value());
}

}  // namespace
