// The Monte Carlo sweep engine of Sec. V: trial statistics must converge to
// the closed-form error model (Eq. 2), and the derived figures (hit rates,
// wall positions) must behave like the paper's.
#include "src/rollback/montecarlo.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/rollback/error_model.hpp"

namespace lore::rollback {
namespace {

TEST(ProbabilityGrid, SpansPaperRangeAndIncreases) {
  const auto grid = ExperimentConfig::default_probability_grid();
  ASSERT_FALSE(grid.empty());
  EXPECT_NEAR(grid.front(), 1e-8, 1e-12);
  EXPECT_LE(grid.back(), 1e-3 + 1e-9);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
}

TEST(MonteCarlo, RollbacksConvergeToClosedFormExpectation) {
  ExperimentConfig cfg;
  cfg.error_probabilities = {1e-6, 1e-5};
  cfg.runs_per_point = 300;
  const auto result = run_experiment(cfg, {SchedulerKind::kDs});

  ASSERT_EQ(result.points.size(), 2u);
  for (const auto& point : result.points) {
    // Eq. (2) expectation, averaged over segments; an attempt's error window
    // includes the checkpoint routine itself.
    double analytic = 0.0;
    for (const auto& seg : result.segments)
      analytic += expected_rollbacks(
          point.p, seg.nominal_cycles + cfg.mitigation.checkpoint.checkpoint_cycles);
    analytic /= static_cast<double>(result.segments.size());

    // Within 4 standard errors of the Monte Carlo mean (plus an absolute
    // floor for the near-zero low-p points).
    const double tolerance = 4.0 * point.sem_rollbacks + 1e-3;
    EXPECT_NEAR(point.avg_rollbacks_per_segment, analytic, tolerance)
        << "p=" << point.p;
  }
}

TEST(MonteCarlo, SemShrinksWithMoreRuns) {
  ExperimentConfig small, large;
  small.error_probabilities = large.error_probabilities = {1e-5};
  small.runs_per_point = 30;
  large.runs_per_point = 480;
  const double sem_small =
      run_experiment(small, {SchedulerKind::kDs}).points[0].sem_rollbacks;
  const double sem_large =
      run_experiment(large, {SchedulerKind::kDs}).points[0].sem_rollbacks;
  EXPECT_LT(sem_large, sem_small);
}

TEST(MonteCarlo, HitRateDegradesTowardTheWall) {
  ExperimentConfig cfg;
  cfg.error_probabilities = {1e-8, 1e-4};
  cfg.runs_per_point = 60;
  const auto result = run_experiment(cfg, {SchedulerKind::kDs});
  const double clean = result.points.front().hit_rate.at(SchedulerKind::kDs);
  const double wall = result.points.back().hit_rate.at(SchedulerKind::kDs);
  EXPECT_GT(clean, 0.95);  // essentially error-free at 1e-8
  EXPECT_LT(wall, clean);  // past the paper's error-rate wall
}

TEST(MonteCarlo, ConservativeBudgetsPushTheWallOut) {
  ExperimentConfig cfg;
  cfg.runs_per_point = 40;
  const auto result =
      run_experiment(cfg, {SchedulerKind::kDs, SchedulerKind::kWcet});
  // WCET grants every segment the worst-case window, so its deadline hit
  // rate survives to at least as high an error probability as DS.
  EXPECT_GE(result.wall_position(SchedulerKind::kWcet),
            result.wall_position(SchedulerKind::kDs));
}

TEST(MonteCarlo, WallPositionFallsInsideSweptGrid) {
  ExperimentConfig cfg;
  cfg.runs_per_point = 40;
  const auto result = run_experiment(cfg, {SchedulerKind::kDs});
  const double wall = result.wall_position(SchedulerKind::kDs);
  EXPECT_GE(wall, cfg.error_probabilities.front());
  EXPECT_LE(wall, cfg.error_probabilities.back());
}

}  // namespace
}  // namespace lore::rollback
