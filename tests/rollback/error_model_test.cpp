// Property tests of the paper's Eq. (1)-(2) implementations, including a
// parameterized Monte Carlo vs closed-form agreement sweep.
#include "src/rollback/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.hpp"

namespace lore::rollback {
namespace {

TEST(ErrorModel, Eq1BasicValues) {
  EXPECT_DOUBLE_EQ(prob_error_free(0.0, 100000), 1.0);
  EXPECT_DOUBLE_EQ(prob_error_free(1.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(prob_error_free(1.0, 0), 1.0);
  EXPECT_NEAR(prob_error_free(0.5, 2), 0.25, 1e-12);
  // Tiny-p stability: (1-1e-9)^1e6 = exp(-1e-3) approx.
  EXPECT_NEAR(prob_error_free(1e-9, 1000000), std::exp(-1e-3), 1e-9);
}

TEST(ErrorModel, Eq1MonotoneInBoth) {
  EXPECT_GT(prob_error_free(1e-6, 10000), prob_error_free(1e-5, 10000));
  EXPECT_GT(prob_error_free(1e-6, 10000), prob_error_free(1e-6, 100000));
}

TEST(ErrorModel, Eq2IsNormalizedDistribution) {
  const double p = 2e-5;
  const std::uint64_t cycles = 50000;
  double mass = 0.0;
  for (std::uint64_t n = 0; n < 2000; ++n) mass += prob_rollbacks(p, cycles, n);
  EXPECT_NEAR(mass, 1.0, 1e-6);
}

TEST(ErrorModel, Eq2MeanMatchesClosedForm) {
  const double p = 1e-5;
  const std::uint64_t cycles = 100000;
  double mean = 0.0;
  for (std::uint64_t n = 1; n < 5000; ++n)
    mean += static_cast<double>(n) * prob_rollbacks(p, cycles, n);
  EXPECT_NEAR(mean, expected_rollbacks(p, cycles), 1e-6);
}

TEST(ErrorModel, ExpectedRollbacksGrowsSuperlinearly) {
  // The "error rate wall": a decade of p costs much more than a decade of
  // rollbacks once p * n_c approaches 1.
  const std::uint64_t cycles = 150000;
  const double r6 = expected_rollbacks(1e-6, cycles);
  const double r5 = expected_rollbacks(1e-5, cycles);
  const double r4 = expected_rollbacks(1e-4, cycles);
  EXPECT_GT(r5 / r6, 10.0);
  EXPECT_GT(r4 / r5, 100.0);
}

struct McCase {
  double p;
  std::uint64_t cycles;
};

class RollbackMonteCarlo : public ::testing::TestWithParam<McCase> {};

TEST_P(RollbackMonteCarlo, SampleMeanMatchesEq2) {
  const auto [p, cycles] = GetParam();
  lore::Rng rng(1234);
  lore::RunningStats stats;
  for (int i = 0; i < 40000; ++i)
    stats.add(static_cast<double>(sample_rollbacks(p, cycles, rng)));
  const double expected = expected_rollbacks(p, cycles);
  EXPECT_NEAR(stats.mean(), expected, 4.0 * stats.sem() + 1e-3)
      << "p=" << p << " cycles=" << cycles;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RollbackMonteCarlo,
                         ::testing::Values(McCase{1e-7, 40000}, McCase{1e-6, 40000},
                                           McCase{1e-6, 270000}, McCase{5e-6, 150000},
                                           McCase{1e-5, 100000}, McCase{5e-5, 40000}),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            -std::log10(info.param.p) * 10)) +
                                  "_c" + std::to_string(info.param.cycles);
                         });

TEST(SegmentTiming, TotalCyclesFormula) {
  const CheckpointParams params{};
  // No rollbacks: one attempt = segment + checkpoint.
  EXPECT_EQ(segment_total_cycles(40000, 0, params), 40100u);
  // Two rollbacks: three attempts + two restores.
  EXPECT_EQ(segment_total_cycles(40000, 2, params), 3u * 40100u + 2u * 48u);
}

TEST(SegmentTiming, ExpectedCyclesMatchesSampling) {
  const CheckpointParams params{};
  const double p = 5e-6;
  const std::uint64_t nc = 120000;
  lore::Rng rng(77);
  lore::RunningStats stats;
  for (int i = 0; i < 30000; ++i)
    stats.add(static_cast<double>(sample_segment_cycles(p, nc, params, rng)));
  EXPECT_NEAR(stats.mean() / expected_segment_cycles(p, nc, params), 1.0, 0.02);
}

TEST(SegmentTiming, ErrorFreeLimit) {
  const CheckpointParams params{};
  EXPECT_DOUBLE_EQ(expected_segment_cycles(0.0, 50000, params), 50100.0);
  lore::Rng rng(78);
  EXPECT_EQ(sample_segment_cycles(0.0, 50000, params, rng), 50100u);
}

}  // namespace
}  // namespace lore::rollback
