#include "src/rollback/adpcm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lore::rollback {
namespace {

TEST(Adpcm, RoundTripTracksSignal) {
  const auto pcm = synth_audio(4000, 7);
  const auto codes = adpcm_encode(pcm);
  const auto decoded = adpcm_decode(codes);
  ASSERT_EQ(decoded.size(), pcm.size());
  // ADPCM is lossy; require a sensible SNR over the steady part.
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 500; i < pcm.size(); ++i) {
    signal += static_cast<double>(pcm[i]) * pcm[i];
    const double d = static_cast<double>(pcm[i]) - decoded[i];
    noise += d * d;
  }
  const double snr_db = 10.0 * std::log10(signal / (noise + 1.0));
  EXPECT_GT(snr_db, 12.0) << "SNR " << snr_db << " dB";
}

TEST(Adpcm, CodesAreFourBit) {
  const auto pcm = synth_audio(1000, 8);
  for (auto c : adpcm_encode(pcm)) EXPECT_LT(c, 16);
}

TEST(Adpcm, EncoderDeterministic) {
  const auto pcm = synth_audio(500, 9);
  EXPECT_EQ(adpcm_encode(pcm), adpcm_encode(pcm));
}

TEST(Adpcm, StepIndexStaysInRange) {
  // Extreme square wave stresses the index adaptation.
  std::vector<std::int16_t> pcm(2000);
  for (std::size_t i = 0; i < pcm.size(); ++i) pcm[i] = (i / 7) % 2 ? 32000 : -32000;
  AdpcmState state;
  for (auto s : pcm) {
    adpcm_encode_sample(state, s);
    EXPECT_GE(state.step_index, 0);
    EXPECT_LE(state.step_index, 88);
    EXPECT_GE(state.predictor, -32768);
    EXPECT_LE(state.predictor, 32767);
  }
}

TEST(CycleCost, LinearInSamples) {
  EXPECT_GT(adpcm_cycle_cost(2000), 2 * adpcm_cycle_cost(999));
  EXPECT_EQ(adpcm_cycle_cost(0), 20u);
}

TEST(Segmentation, CyclesInPaperRange) {
  const auto segments = segment_adpcm_workload(SegmentationConfig{});
  EXPECT_EQ(segments.size(), 24u);
  for (const auto& s : segments) {
    EXPECT_GE(s.nominal_cycles, 38000u);   // small tolerance below 40k
    EXPECT_LE(s.nominal_cycles, 275000u);  // and above 270k (rounding)
  }
}

TEST(Segmentation, SpreadAcrossRange) {
  const auto segments = segment_adpcm_workload(SegmentationConfig{.num_segments = 40});
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& s : segments) {
    lo = std::min(lo, s.nominal_cycles);
    hi = std::max(hi, s.nominal_cycles);
  }
  EXPECT_LT(lo, 90000u);
  EXPECT_GT(hi, 200000u);
}

TEST(Segmentation, DeterministicPerSeed) {
  const auto a = segment_adpcm_workload(SegmentationConfig{.seed = 4});
  const auto b = segment_adpcm_workload(SegmentationConfig{.seed = 4});
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].nominal_cycles, b[i].nominal_cycles);
}

}  // namespace
}  // namespace lore::rollback
