#include "src/rollback/schedule.hpp"

#include <gtest/gtest.h>

#include "src/common/stats.hpp"
#include "src/rollback/montecarlo.hpp"

namespace lore::rollback {
namespace {

std::vector<Segment> test_segments() {
  return segment_adpcm_workload(SegmentationConfig{.num_segments = 16, .seed = 31});
}

TEST(StaticBudgets, DsVariantsScale) {
  const auto segments = test_segments();
  const CheckpointParams cp{};
  const auto ds = static_budgets(SchedulerKind::kDs, segments, cp);
  const auto ds15 = static_budgets(SchedulerKind::kDs15, segments, cp);
  const auto ds2 = static_budgets(SchedulerKind::kDs2, segments, cp);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds[i], static_cast<double>(segments[i].nominal_cycles + 100));
    EXPECT_DOUBLE_EQ(ds15[i], 1.5 * ds[i]);
    EXPECT_DOUBLE_EQ(ds2[i], 2.0 * ds[i]);
  }
}

TEST(StaticBudgets, WcetIsUniformWorstCase) {
  const auto segments = test_segments();
  const auto wcet = static_budgets(SchedulerKind::kWcet, segments, CheckpointParams{});
  double worst = 0.0;
  for (const auto& s : segments)
    worst = std::max(worst, static_cast<double>(s.nominal_cycles + 100));
  for (double b : wcet) EXPECT_DOUBLE_EQ(b, worst);
}

TEST(SimulateRun, ErrorFreeAlwaysHits) {
  const auto segments = test_segments();
  const MitigationConfig cfg{};
  const auto budgets = static_budgets(SchedulerKind::kDs, segments, cfg.checkpoint);
  lore::Rng rng(41);
  const auto outcome = simulate_run(segments, budgets, 0.0, cfg, rng);
  EXPECT_DOUBLE_EQ(outcome.deadline_hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(outcome.mean_rollbacks_per_segment, 0.0);
}

TEST(SimulateRun, ExtremeErrorRateMissesEverything) {
  const auto segments = test_segments();
  const MitigationConfig cfg{};
  const auto budgets = static_budgets(SchedulerKind::kWcet, segments, cfg.checkpoint);
  lore::Rng rng(42);
  const auto outcome = simulate_run(segments, budgets, 1e-3, cfg, rng);
  EXPECT_LT(outcome.deadline_hit_rate, 0.1);
  EXPECT_GT(outcome.mean_rollbacks_per_segment, 10.0);
}

TEST(SimulateRun, ConservativeBudgetsHitMoreInTheWindow) {
  const auto segments = test_segments();
  const MitigationConfig cfg{};
  const double p = 4e-6;  // inside the transition window
  lore::RunningStats ds_hits, wcet_hits;
  for (int run = 0; run < 60; ++run) {
    lore::Rng rng_a(1000 + run), rng_b(1000 + run);
    ds_hits.add(simulate_run(segments,
                             static_budgets(SchedulerKind::kDs, segments, cfg.checkpoint), p,
                             cfg, rng_a)
                    .deadline_hit_rate);
    wcet_hits.add(simulate_run(segments,
                               static_budgets(SchedulerKind::kWcet, segments, cfg.checkpoint),
                               p, cfg, rng_b)
                      .deadline_hit_rate);
  }
  EXPECT_GE(wcet_hits.mean(), ds_hits.mean());
}

TEST(LearnedScheduler, BudgetsAtLeastWindowAndTrackErrors) {
  const auto segments = test_segments();
  const CheckpointParams cp{};
  LearnedBudgetScheduler quiet, noisy;
  lore::Rng rng(51);
  quiet.calibrate(segments, 1e-8, cp, 10, rng);
  noisy.calibrate(segments, 8e-6, cp, 10, rng);
  const auto quiet_budgets = quiet.budgets(segments, cp);
  const auto noisy_budgets = noisy.budgets(segments, cp);
  std::size_t strictly_inflated = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double window = static_cast<double>(segments[i].nominal_cycles + 100);
    EXPECT_GE(quiet_budgets[i], window);
    // Seeing errors during calibration inflates the budgets (up to the
    // worst-case clamp, where both coincide).
    EXPECT_GE(noisy_budgets[i], quiet_budgets[i]);
    strictly_inflated += noisy_budgets[i] > quiet_budgets[i];
  }
  EXPECT_GT(strictly_inflated, segments.size() / 2);
}

TEST(Experiment, ReproducesFig5And6Shape) {
  ExperimentConfig cfg;
  cfg.segmentation.num_segments = 12;
  cfg.runs_per_point = 30;
  cfg.error_probabilities = {1e-8, 1e-7, 1e-6, 3e-6, 1e-5, 1e-4};
  const std::vector<SchedulerKind> schedulers{SchedulerKind::kDs, SchedulerKind::kDs15,
                                              SchedulerKind::kDs2, SchedulerKind::kWcet};
  const auto result = run_experiment(cfg, schedulers);
  ASSERT_EQ(result.points.size(), 6u);

  // Fig. 5 shape: rollbacks negligible at 1e-8, >10 beyond 1e-5.
  EXPECT_LT(result.points[0].avg_rollbacks_per_segment, 0.01);
  EXPECT_GT(result.points[5].avg_rollbacks_per_segment, 10.0);
  // Monotone growth.
  for (std::size_t i = 1; i < result.points.size(); ++i)
    EXPECT_GE(result.points[i].avg_rollbacks_per_segment,
              result.points[i - 1].avg_rollbacks_per_segment);

  // Fig. 6 shape: everyone hits at 1e-8, everyone collapses at 1e-4.
  for (auto kind : schedulers) {
    EXPECT_GT(result.points[0].hit_rate.at(kind), 0.97) << scheduler_name(kind);
    EXPECT_LT(result.points[5].hit_rate.at(kind), 0.05) << scheduler_name(kind);
  }
  // Inside the window conservative schedulers dominate.
  const auto& mid = result.points[3];  // p = 3e-6
  EXPECT_GE(mid.hit_rate.at(SchedulerKind::kWcet), mid.hit_rate.at(SchedulerKind::kDs));
  EXPECT_GE(mid.hit_rate.at(SchedulerKind::kDs2), mid.hit_rate.at(SchedulerKind::kDs15) - 0.02);
  EXPECT_GE(mid.hit_rate.at(SchedulerKind::kDs15), mid.hit_rate.at(SchedulerKind::kDs) - 0.02);

  // The wall sits in the 1e-6..1e-5 band for every scheduler.
  for (auto kind : schedulers) {
    const double wall = result.wall_position(kind);
    EXPECT_GE(wall, 1e-7) << scheduler_name(kind);
    EXPECT_LE(wall, 1e-4) << scheduler_name(kind);
  }
}

TEST(Experiment, LearnedSchedulerCompetitive) {
  ExperimentConfig cfg;
  cfg.segmentation.num_segments = 10;
  cfg.runs_per_point = 20;
  cfg.error_probabilities = {1e-6, 3e-6};
  const auto result = run_experiment(
      cfg, {SchedulerKind::kDs, SchedulerKind::kDsLearned, SchedulerKind::kWcet});
  for (const auto& point : result.points) {
    // DS-ML should at least match plain DS (it budgets from observed noise).
    EXPECT_GE(point.hit_rate.at(SchedulerKind::kDsLearned),
              point.hit_rate.at(SchedulerKind::kDs) - 0.05)
        << "p=" << point.p;
  }
}

}  // namespace
}  // namespace lore::rollback
