// Parameterized scheduler properties across the error-probability sweep:
// larger budgets can never hurt the hit rate under paired error
// realizations, and the DS-scaling family is ordered everywhere.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.hpp"
#include "src/rollback/schedule.hpp"

namespace lore::rollback {
namespace {

class SchedulerOrdering : public ::testing::TestWithParam<double> {
 protected:
  SchedulerOrdering()
      : segments_(segment_adpcm_workload(SegmentationConfig{.num_segments = 14,
                                                            .seed = 71})) {}
  std::vector<Segment> segments_;
  MitigationConfig cfg_{};
};

TEST_P(SchedulerOrdering, BudgetScalingIsMonotone) {
  const double p = GetParam();
  lore::RunningStats ds, ds15, ds2;
  for (int run = 0; run < 40; ++run) {
    // Same error realization per scheduler (paired seeds).
    lore::Rng a(5000 + run), b(5000 + run), c(5000 + run);
    ds.add(simulate_run(segments_, static_budgets(SchedulerKind::kDs, segments_, cfg_.checkpoint),
                        p, cfg_, a)
               .deadline_hit_rate);
    ds15.add(simulate_run(segments_,
                          static_budgets(SchedulerKind::kDs15, segments_, cfg_.checkpoint), p,
                          cfg_, b)
                 .deadline_hit_rate);
    ds2.add(simulate_run(segments_,
                         static_budgets(SchedulerKind::kDs2, segments_, cfg_.checkpoint), p,
                         cfg_, c)
                .deadline_hit_rate);
  }
  EXPECT_GE(ds15.mean(), ds.mean() - 1e-12) << "p=" << p;
  EXPECT_GE(ds2.mean(), ds15.mean() - 1e-12) << "p=" << p;
}

TEST_P(SchedulerOrdering, MoreSpeedHeadroomNeverHurts) {
  const double p = GetParam();
  const auto budgets = static_budgets(SchedulerKind::kDs15, segments_, cfg_.checkpoint);
  lore::RunningStats slow, fast;
  for (int run = 0; run < 40; ++run) {
    lore::Rng a(6000 + run), b(6000 + run);
    MitigationConfig low = cfg_;
    low.speed_ratio = 1.5;
    MitigationConfig high = cfg_;
    high.speed_ratio = 3.0;
    slow.add(simulate_run(segments_, budgets, p, low, a).deadline_hit_rate);
    fast.add(simulate_run(segments_, budgets, p, high, b).deadline_hit_rate);
  }
  EXPECT_GE(fast.mean(), slow.mean() - 1e-12) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(ProbabilitySweep, SchedulerOrdering,
                         ::testing::Values(1e-7, 1e-6, 3e-6, 1e-5, 5e-5),
                         [](const auto& info) {
                           const int code = static_cast<int>(-std::log10(info.param) * 10);
                           return "p" + std::to_string(code);
                         });

}  // namespace
}  // namespace lore::rollback
