#include "src/rollback/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lore::rollback {
namespace {

TEST(CheckpointOptimizer, ErrorFreePrefersOneCheckpoint) {
  const CheckpointParams params{};
  const auto plan = optimize_checkpoints(0.0, 200000, params);
  EXPECT_EQ(plan.checkpoints, 1u);
  EXPECT_NEAR(plan.overhead_factor, 1.0, 1e-12);
}

TEST(CheckpointOptimizer, HighErrorRateWantsMoreCheckpoints) {
  const CheckpointParams params{};
  const auto low = optimize_checkpoints(1e-7, 200000, params);
  const auto high = optimize_checkpoints(3e-5, 200000, params);
  EXPECT_GE(high.checkpoints, low.checkpoints);
  EXPECT_GT(high.checkpoints, 1u);
}

TEST(CheckpointOptimizer, OptimumBeatsNeighbours) {
  const CheckpointParams params{};
  const double p = 1e-5;
  const std::uint64_t nc = 150000;
  const auto plan = optimize_checkpoints(p, nc, params);
  const double at_best = expected_cycles_with_k_checkpoints(p, nc, plan.checkpoints, params);
  EXPECT_LE(at_best, expected_cycles_with_k_checkpoints(p, nc, 1, params));
  if (plan.checkpoints > 1) {
    EXPECT_LE(at_best,
              expected_cycles_with_k_checkpoints(p, nc, plan.checkpoints - 1, params) + 1e-9);
  }
  EXPECT_LE(at_best,
            expected_cycles_with_k_checkpoints(p, nc, plan.checkpoints + 1, params) + 1e-9);
}

TEST(CheckpointOptimizer, SplitCostConservesNominalWorkAtZeroError) {
  const CheckpointParams params{};
  const std::uint64_t nc = 120000;
  for (std::size_t k : {1, 2, 5, 9}) {
    const double cost = expected_cycles_with_k_checkpoints(0.0, nc, k, params);
    EXPECT_NEAR(cost, static_cast<double>(nc) +
                          static_cast<double>(k) * params.checkpoint_cycles,
                1e-9)
        << "k=" << k;
  }
}

TEST(CheckpointOptimizer, ApproximationTracksExactWithinFactor) {
  const CheckpointParams params{};
  for (double p : {1e-6, 5e-6, 2e-5}) {
    const std::uint64_t nc = 200000;
    const auto exact = optimize_checkpoints(p, nc, params);
    const double approx = approximate_optimal_checkpoints(p, nc, params);
    // Same order of magnitude is what the closed form promises.
    EXPECT_LT(std::abs(std::log2(approx / static_cast<double>(exact.checkpoints))), 2.0)
        << "p=" << p << " exact=" << exact.checkpoints << " approx=" << approx;
  }
}

TEST(CheckpointOptimizer, MovesTheWallLikeTheAblation) {
  // Optimized checkpointing must reduce the expected overhead at wall-range
  // error rates (the [51] claim the Sec. V discussion cites).
  const CheckpointParams params{};
  const double p = 1e-5;
  const std::uint64_t nc = 250000;
  const auto plan = optimize_checkpoints(p, nc, params);
  const double naive = expected_cycles_with_k_checkpoints(p, nc, 1, params);
  EXPECT_LT(plan.expected_cycles, 0.5 * naive);
}

}  // namespace
}  // namespace lore::rollback
