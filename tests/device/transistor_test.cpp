#include "src/device/transistor.hpp"

#include <gtest/gtest.h>

namespace lore::device {
namespace {

TEST(Transistor, CurrentIncreasesWithVdd) {
  Transistor t(TransistorParams{});
  OperatingPoint lo{.vdd = 0.6};
  OperatingPoint hi{.vdd = 1.0};
  EXPECT_GT(t.saturation_current(hi), t.saturation_current(lo));
}

TEST(Transistor, AgingReducesCurrent) {
  Transistor t(TransistorParams{});
  OperatingPoint fresh{.vdd = 0.8, .delta_vth = 0.0};
  OperatingPoint aged{.vdd = 0.8, .delta_vth = 0.05};
  EXPECT_GT(t.saturation_current(fresh), t.saturation_current(aged));
}

TEST(Transistor, HotterIsSlowerAtNominalVdd) {
  // At nominal overdrive, mobility degradation dominates the Vth drop.
  Transistor t(TransistorParams{});
  OperatingPoint cool{.vdd = 0.8, .temperature = 300.0};
  OperatingPoint hot{.vdd = 0.8, .temperature = 400.0};
  EXPECT_GT(t.saturation_current(cool), t.saturation_current(hot));
}

TEST(Transistor, CutoffWhenUnderThreshold) {
  Transistor t(TransistorParams{.vth0 = 0.35});
  OperatingPoint op{.vdd = 0.3};
  EXPECT_TRUE(t.in_cutoff(op));
  EXPECT_DOUBLE_EQ(t.saturation_current(op), 0.0);
  EXPECT_GE(t.effective_resistance(op), 1e8);
}

TEST(Transistor, WidthScalesCurrentLinearly) {
  TransistorParams narrow{.width_um = 0.5};
  TransistorParams wide{.width_um = 1.0};
  OperatingPoint op{};
  EXPECT_NEAR(Transistor(wide).saturation_current(op),
              2.0 * Transistor(narrow).saturation_current(op), 1e-12);
}

TEST(GateStage, DelayIncreasesWithLoad) {
  GateStage stage(GateStageParams{});
  OperatingPoint op{};
  const auto light = stage.fall(20.0, 1.0, op);
  const auto heavy = stage.fall(20.0, 16.0, op);
  EXPECT_GT(heavy.delay_ps, light.delay_ps);
  EXPECT_GT(heavy.out_slew_ps, light.out_slew_ps);
}

TEST(GateStage, DelayIncreasesWithInputSlew) {
  GateStage stage(GateStageParams{});
  OperatingPoint op{};
  const auto sharp = stage.rise(5.0, 4.0, op);
  const auto slow = stage.rise(160.0, 4.0, op);
  EXPECT_GT(slow.delay_ps, sharp.delay_ps);
}

TEST(GateStage, AgingSlowsTheStage) {
  GateStage stage(GateStageParams{});
  OperatingPoint fresh{};
  OperatingPoint aged{.delta_vth = 0.06};
  EXPECT_GT(stage.fall(20.0, 4.0, aged).delay_ps, stage.fall(20.0, 4.0, fresh).delay_ps);
}

TEST(GateStage, SwitchingEnergyGrowsWithLoadAndSlew) {
  GateStage stage(GateStageParams{});
  OperatingPoint op{};
  EXPECT_GT(stage.switching_energy(20.0, 16.0, op), stage.switching_energy(20.0, 1.0, op));
  EXPECT_GT(stage.switching_energy(160.0, 4.0, op), stage.switching_energy(5.0, 4.0, op));
}

}  // namespace
}  // namespace lore::device
