#include "src/device/aging.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/device/selfheat.hpp"

namespace lore::device {
namespace {

TEST(NbtiModel, MonotoneInTimeVoltageTemperature) {
  NbtiModel m;
  StressCondition base{};
  auto shifted = [&](auto mutate) {
    StressCondition s = base;
    mutate(s);
    return m.delta_vth(s);
  };
  const double ref = m.delta_vth(base);
  EXPECT_GT(shifted([](auto& s) { s.years = 10.0; }), ref);
  EXPECT_GT(shifted([](auto& s) { s.vdd = 1.0; }), ref);
  EXPECT_GT(shifted([](auto& s) { s.temperature = 380.0; }), ref);
  EXPECT_LT(shifted([](auto& s) { s.duty_cycle = 0.1; }), ref);
}

TEST(NbtiModel, PowerLawExponent) {
  NbtiModel m;
  StressCondition one_year{.years = 1.0};
  StressCondition sixtyfour{.years = 64.0};
  // n = 1/6: 64x time -> 64^(1/6) = 2x shift.
  EXPECT_NEAR(m.delta_vth(sixtyfour) / m.delta_vth(one_year), 2.0, 1e-9);
}

TEST(NbtiModel, ZeroStressIsZeroShift) {
  NbtiModel m;
  StressCondition none{.duty_cycle = 0.0};
  EXPECT_DOUBLE_EQ(m.delta_vth(none), 0.0);
  StressCondition no_time{.years = 0.0};
  EXPECT_DOUBLE_EQ(m.delta_vth(no_time), 0.0);
}

TEST(HciModel, GrowsWithActivity) {
  HciModel m;
  StressCondition idle{.toggle_rate_ghz = 0.1};
  StressCondition busy{.toggle_rate_ghz = 2.0};
  EXPECT_GT(m.delta_vth(busy), m.delta_vth(idle));
}

TEST(HciModel, SqrtTimeDependence) {
  HciModel m;
  StressCondition t1{.years = 1.0};
  StressCondition t4{.years = 4.0};
  EXPECT_NEAR(m.delta_vth(t4) / m.delta_vth(t1), 2.0, 1e-9);
}

TEST(AgingModel, CombinedIsSumOfMechanisms) {
  AgingModel combined;
  NbtiModel nbti;
  HciModel hci;
  StressCondition s{.vdd = 0.9, .temperature = 350.0, .years = 3.0};
  EXPECT_NEAR(combined.delta_vth(s), nbti.delta_vth(s) + hci.delta_vth(s), 1e-15);
}

TEST(SelfHeating, MoreFinsMoreConfinementMoreRth) {
  SelfHeatingModel she;
  TransistorParams two_fins{.num_fins = 2};
  TransistorParams six_fins{.num_fins = 6};
  EXPECT_GT(she.thermal_resistance(six_fins), she.thermal_resistance(two_fins));
}

TEST(SelfHeating, WiderDeviceCoolsBetter) {
  SelfHeatingModel she;
  TransistorParams narrow{.width_um = 0.3};
  TransistorParams wide{.width_um = 1.0};
  EXPECT_GT(she.thermal_resistance(narrow), she.thermal_resistance(wide));
}

TEST(SelfHeating, TemperatureRiseGrowsWithActivity) {
  SelfHeatingModel she;
  GateStage stage(GateStageParams{});
  OperatingPoint op{};
  ActivityProfile idle{.toggle_rate_ghz = 0.05};
  ActivityProfile busy{.toggle_rate_ghz = 2.0};
  EXPECT_GT(she.temperature_rise(stage, busy, op), she.temperature_rise(stage, idle, op));
}

TEST(SelfHeating, ZeroActivityZeroRise) {
  SelfHeatingModel she;
  GateStage stage(GateStageParams{});
  OperatingPoint op{};
  ActivityProfile off{.toggle_rate_ghz = 0.0};
  EXPECT_DOUBLE_EQ(she.temperature_rise(stage, off, op), 0.0);
}

TEST(SelfHeating, LoadIncreasesHeat) {
  SelfHeatingModel she;
  GateStage stage(GateStageParams{});
  OperatingPoint op{};
  ActivityProfile light{.toggle_rate_ghz = 1.0, .load_ff = 1.0};
  ActivityProfile heavy{.toggle_rate_ghz = 1.0, .load_ff = 20.0};
  EXPECT_GT(she.temperature_rise(stage, heavy, op), she.temperature_rise(stage, light, op));
}

}  // namespace
}  // namespace lore::device
