#include "src/device/lifetime.hpp"

#include <gtest/gtest.h>

namespace lore::device {
namespace {

TEST(Electromigration, BlackEquationScaling) {
  EmParams params{.mttf_ref_years = 100.0};
  params.current_exponent = 2.0;
  ElectromigrationModel em(params);
  LifetimeCondition ref{.temperature = params.ref_temperature_k, .current_density = 1.0};
  EXPECT_NEAR(em.mttf_years(ref), 100.0, 1e-9);
  LifetimeCondition doubled = ref;
  doubled.current_density = 2.0;
  EXPECT_NEAR(em.mttf_years(doubled), 25.0, 1e-9);
}

TEST(Electromigration, HotterDiesFaster) {
  ElectromigrationModel em;
  LifetimeCondition cool{.temperature = 320.0};
  LifetimeCondition hot{.temperature = 380.0};
  EXPECT_GT(em.mttf_years(cool), em.mttf_years(hot));
}

TEST(Tddb, VoltageAcceleration) {
  TddbModel tddb;
  LifetimeCondition nominal{.vdd = 0.8};
  LifetimeCondition overdrive{.vdd = 1.0};
  EXPECT_GT(tddb.mttf_years(nominal), 3.0 * tddb.mttf_years(overdrive));
}

TEST(ThermalCycling, CoffinMansonAmplitude) {
  ThermalCyclingModel tc(ThermalCyclingParams{.cycles_to_failure_ref = 1e6,
                                              .delta_t_ref = 20.0,
                                              .coffin_manson_exponent = 2.0});
  LifetimeCondition small{.thermal_cycle_amplitude = 20.0, .thermal_cycles_per_day = 24.0};
  LifetimeCondition big = small;
  big.thermal_cycle_amplitude = 40.0;
  EXPECT_NEAR(tc.mttf_years(small) / tc.mttf_years(big), 4.0, 1e-9);
}

TEST(ThermalCycling, NoCyclingIsNoFailure) {
  ThermalCyclingModel tc;
  LifetimeCondition steady{.thermal_cycle_amplitude = 0.0};
  EXPECT_GE(tc.mttf_years(steady), 1e5);
}

TEST(NbtiLifetime, InverseOfDeltaVthPowerLaw) {
  // With critical shift exactly the 1-year shift, lifetime should be 1 year.
  NbtiParams nbti;
  NbtiModel model(nbti);
  LifetimeCondition c{.temperature = 350.0, .vdd = 0.85, .duty_cycle = 0.5};
  StressCondition s{.vdd = c.vdd, .temperature = c.temperature,
                    .duty_cycle = c.duty_cycle, .years = 1.0};
  const double dvth_1y = model.delta_vth(s);
  NbtiLifetimeModel life(nbti, VthLifetimeParams{.critical_delta_vth = dvth_1y});
  EXPECT_NEAR(life.mttf_years(c), 1.0, 1e-6);
}

TEST(NbtiLifetime, HigherCriterionLastsLonger) {
  NbtiLifetimeModel tight({}, VthLifetimeParams{.critical_delta_vth = 0.03});
  NbtiLifetimeModel loose({}, VthLifetimeParams{.critical_delta_vth = 0.06});
  LifetimeCondition c{};
  EXPECT_GT(loose.mttf_years(c), tight.mttf_years(c));
}

TEST(CombinedMttf, SumOfRates) {
  auto mechanisms = standard_mechanisms();
  LifetimeCondition c{};
  const double combined = combined_mttf_years(mechanisms, c);
  double min_single = 1e30;
  for (const auto& m : mechanisms) min_single = std::min(min_single, m->mttf_years(c));
  // Combined MTTF is below the weakest single mechanism.
  EXPECT_LT(combined, min_single);
  EXPECT_GT(combined, 0.0);
}

TEST(CombinedMttf, StressMonotonicity) {
  auto mechanisms = standard_mechanisms();
  LifetimeCondition gentle{.temperature = 320.0, .vdd = 0.7, .toggle_rate_ghz = 0.2};
  LifetimeCondition harsh{.temperature = 390.0, .vdd = 1.0, .toggle_rate_ghz = 2.0};
  EXPECT_GT(combined_mttf_years(mechanisms, gentle), combined_mttf_years(mechanisms, harsh));
}

TEST(MonteCarloLifetime, ShapeOneMatchesSumOfRates) {
  auto mechanisms = standard_mechanisms();
  LifetimeCondition c{};
  lore::Rng rng(700);
  const auto mc = monte_carlo_lifetime(mechanisms, c, 20000, 1.0, rng);
  const double analytic = combined_mttf_years(mechanisms, c);
  // Weibull(shape=1) per mechanism = exponential; the min is exponential with
  // the summed rate, so the MC mean must match the closed form.
  EXPECT_NEAR(mc.mean_years / analytic, 1.0, 0.05);
}

TEST(MonteCarloLifetime, PercentilesOrdered) {
  auto mechanisms = standard_mechanisms();
  LifetimeCondition c{};
  lore::Rng rng(701);
  const auto mc = monte_carlo_lifetime(mechanisms, c, 5000, 2.0, rng);
  EXPECT_LT(mc.p10_years, mc.p50_years);
  EXPECT_GT(mc.mean_years, 0.0);
}

}  // namespace
}  // namespace lore::device
