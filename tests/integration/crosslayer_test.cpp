// Cross-module integration tests: information produced by one abstraction
// layer drives decisions in another, the way the paper's Fig. 1 loop and
// Sec. VI-A cross-layer challenge intend.
#include <gtest/gtest.h>

#include "src/arch/fault.hpp"
#include "src/common/stats.hpp"
#include "src/circuit/she_flow.hpp"
#include "src/device/lifetime.hpp"
#include "src/os/replica.hpp"
#include "src/rollback/montecarlo.hpp"
#include "src/rollback/optimize.hpp"

namespace lore {
namespace {

TEST(CrossLayer, CircuitSheFeedsDeviceLifetime) {
  // Circuit layer: per-instance SHE temperatures. Device layer: those
  // temperatures shorten the hottest instance's wear-out MTTF.
  using namespace circuit;
  CellLibrary lib = make_skeleton_library("tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.4},
      device::SelfHeatingModel{});
  device::OperatingPoint op{};
  op.temperature = 330.0;
  characterizer.characterize_library(lib, op);
  const auto nl = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 2,
                                                         .regs_per_stage = 6,
                                                         .gates_per_stage = 40});
  StaEngine sta;
  const auto timing = sta.run(nl, LibraryDelayModel());
  const auto she = instance_she_rise(nl, timing, 1.0);

  double hottest = 0.0, coolest = 1e9;
  for (double t : she) {
    hottest = std::max(hottest, t);
    coolest = std::min(coolest, t);
  }
  ASSERT_GT(hottest, coolest);

  const auto mechanisms = device::standard_mechanisms();
  device::LifetimeCondition hot{.temperature = 330.0 + hottest};
  device::LifetimeCondition cool{.temperature = 330.0 + coolest};
  EXPECT_LT(device::combined_mttf_years(mechanisms, hot),
            device::combined_mttf_years(mechanisms, cool));
}

TEST(CrossLayer, ArchCampaignDrivesOsReplicaPolicy) {
  // Architecture layer: measure the workload's real fault-to-failure rate by
  // injection. OS layer: the replica manager prices redundancy from it.
  using namespace arch;
  const auto w = make_checksum(12, 3);
  FaultInjector injector(w);
  lore::Rng rng(4);
  const auto campaign = injector.campaign(400, FaultTarget::kRegister, rng.next_u64());
  const auto mix = summarize(campaign);

  os::ReplicaManager calm_mgr(os::ReplicaManagerConfig{.failure_penalty = 50.0});
  calm_mgr.observe(mix.sdc + mix.crash + mix.hang, campaign.size());
  // Same observed rate but a catastrophic failure penalty (avionics-class):
  // redundancy must kick in.
  os::ReplicaManager critical_mgr(os::ReplicaManagerConfig{.failure_penalty = 5000.0});
  critical_mgr.observe(mix.sdc + mix.crash + mix.hang, campaign.size());
  EXPECT_GE(critical_mgr.recommended_replicas(), calm_mgr.recommended_replicas());
  EXPECT_GE(critical_mgr.recommended_replicas(), 2u);
}

TEST(CrossLayer, CheckpointOptimizerImprovesMonteCarloRuntime) {
  // Rollback layer: the analytic optimizer's plan must hold up in the
  // sampled simulation, not just in expectation.
  using namespace rollback;
  const double p = 1.5e-5;
  const std::uint64_t nc = 220000;
  const CheckpointParams params{};
  const auto plan = optimize_checkpoints(p, nc, params);
  ASSERT_GT(plan.checkpoints, 1u);

  lore::Rng rng(5);
  lore::RunningStats naive, optimized;
  for (int run = 0; run < 4000; ++run) {
    naive.add(static_cast<double>(sample_segment_cycles(p, nc, params, rng)));
    double total = 0.0;
    const std::uint64_t sub = nc / plan.checkpoints;
    for (std::size_t k = 0; k < plan.checkpoints; ++k)
      total += static_cast<double>(sample_segment_cycles(p, sub, params, rng));
    optimized.add(total);
  }
  EXPECT_LT(optimized.mean(), naive.mean());
}

TEST(CrossLayer, SheAwareStaChangesOsTimingBudgetFeasibility) {
  // Circuit timing feeds system-level cycle budgets: an SHE-aware clock
  // period derived from per-instance STA admits a workload the worst-case
  // corner would reject.
  using namespace circuit;
  CellLibrary lib = make_skeleton_library("tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.4},
      device::SelfHeatingModel{});
  SheFlowConfig cfg;
  device::OperatingPoint typical{};
  typical.temperature = cfg.chip_temperature;
  characterizer.characterize_library(lib, typical);
  auto nl = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 2,
                                                   .regs_per_stage = 6,
                                                   .gates_per_stage = 40});
  StaEngine sta;
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 20, .temperature_samples = 2,
      .mlp = {.hidden = {24}, .learning_rate = 3e-3, .epochs = 50, .batch_size = 32}});
  const auto report = run_guardband_flow(nl, lib, characterizer, ml, cfg, sta);

  // A clock between the SHE-aware arrival and the worst-case arrival is
  // feasible under SHE-aware signoff but infeasible under the blanket corner.
  const double clock_ps =
      0.5 * (report.she_exact_arrival_ps + report.worst_case_arrival_ps);
  EXPECT_GT(clock_ps, report.she_exact_arrival_ps);   // SHE-aware: positive slack
  EXPECT_LT(clock_ps, report.worst_case_arrival_ps);  // corner: negative slack
}

}  // namespace
}  // namespace lore
