// Fleet-level tracing + post-mortem, end to end (DESIGN.md §15): a real
// coordinator with forked workers run under a root span must stitch every
// executed shard back as a child span of that root (the merged-trace
// contract), trace collection must leave campaign results bit-identical to
// the untraced run, and a worker SIGKILLed mid-shard must leave a flight
// ring whose decode names the inflight shard and the spans open at death.
//
// Fork discipline: workers fork between Coordinator::bind() and serve(),
// while this process is still single-threaded.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/fabric/coordinator.hpp"
#include "src/fabric/runners.hpp"
#include "src/fabric/spawn.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/span.hpp"

namespace {

using namespace lore;
using namespace lore::fabric;

obs::Json fault_params(const std::string& workload) {
  obs::Json p = obs::Json::object();
  p["workload"] = workload;
  p["scale"] = std::int64_t{16};
  p["wseed"] = std::int64_t{7};
  p["target"] = "register";
  return p;
}

CampaignSpec base_spec(std::size_t trials) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 42;
  spec.threads = 1;
  return spec;
}

struct RecorderOn {
  RecorderOn() {
    obs::TraceRecorder::global().clear();
    obs::TraceRecorder::global().set_enabled(true);
  }
  ~RecorderOn() {
    obs::TraceRecorder::global().set_enabled(false);
    obs::TraceRecorder::global().clear();
  }
};

/// The ring-side inflight-shard rule lore_postmortem.py implements: the last
/// shard_begin without a matching shard_end.
long long ring_inflight_shard(const obs::FlightRingDump& dump) {
  long long shard = -1;
  for (const auto& r : dump.records) {
    if (r.kind == obs::EventKind::kShardBegin)
      shard = static_cast<long long>(r.a);
    else if (r.kind == obs::EventKind::kShardEnd &&
             shard == static_cast<long long>(r.a))
      shard = -1;
  }
  return shard;
}

TEST(FleetTrace, EveryShardBecomesAChildSpanOfTheCoordinatorRoot) {
  RecorderOn on;
  const obs::Json params = fault_params("dot_product");
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(400));
  ASSERT_TRUE(resolved.has_value());

  CoordinatorConfig cfg;
  cfg.expected_workers = 4;
  Coordinator coord;
  ASSERT_TRUE(coord.bind(cfg));
  std::vector<pid_t> kids;
  for (int i = 0; i < 4; ++i)
    kids.push_back(fork_local_worker(coord.port(), {}, coord.listen_fd()));

  // The tracing contract: a root span inside an installed context, open when
  // serve() captures the ambient state.
  obs::TraceContextScope root_scope(obs::TraceContext{obs::make_trace_id(), 0});
  obs::Span root("fabric.fleet", "fabric");
  ASSERT_NE(root.id(), 0u);

  coord.serve({"arch.fault", params, *resolved});
  ASSERT_TRUE(coord.wait(std::chrono::minutes(2)));
  const FleetSnapshot snap = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  for (const pid_t pid : kids) wait_worker(pid);

  ASSERT_GT(snap.shards_done, 0u);
  EXPECT_GT(snap.spans_stitched, 0u);

  // Every executed shard must appear as `fabric.shard/<id>`, in the root's
  // trace, parented directly under the root span, stamped with a worker pid.
  const std::size_t shard_total = snap.shards_done;
  std::vector<char> seen(shard_total, 0);
  for (const obs::TraceEvent& e : obs::TraceRecorder::global().events()) {
    if (e.name.rfind("fabric.shard/", 0) != 0) continue;
    EXPECT_TRUE(e.trace == root.trace()) << e.name;
    EXPECT_EQ(e.parent, root.id()) << e.name;
    EXPECT_NE(e.pid, 0u) << e.name << " should carry the worker's pid";
    EXPECT_GT(e.dur_us, 0.0);
    const auto id = static_cast<std::size_t>(std::atol(e.name.c_str() + 13));
    if (id < seen.size()) seen[id] = 1;
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_TRUE(seen[i]) << "shard " << i << " missing from the merged trace";

  // And the merge itself is still exact.
  const auto result = records_from_checkpoint("arch.fault", *resolved, merged);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records.size(), 400u);
}

TEST(FleetTrace, TraceCollectionLeavesResultsBitIdentical) {
  const obs::Json params = fault_params("dot_product");
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(300));
  ASSERT_TRUE(resolved.has_value());

  // Untraced single-process reference, computed with the recorder off.
  const auto w = workload_from_params(params);
  const arch::FaultInjector inj(*w);
  const auto reference =
      inj.campaign_run(base_spec(300), arch::FaultTarget::kRegister).records;

  // Traced 2-worker fleet run of the same campaign.
  RecorderOn on;
  CoordinatorConfig cfg;
  cfg.expected_workers = 2;
  Coordinator coord;
  ASSERT_TRUE(coord.bind(cfg));
  std::vector<pid_t> kids;
  for (int i = 0; i < 2; ++i)
    kids.push_back(fork_local_worker(coord.port(), {}, coord.listen_fd()));

  obs::TraceContextScope root_scope(obs::TraceContext{obs::make_trace_id(), 0});
  obs::Span root("fabric.fleet", "fabric");
  coord.serve({"arch.fault", params, *resolved});
  ASSERT_TRUE(coord.wait(std::chrono::minutes(2)));
  const CampaignCheckpoint merged = coord.finish();
  for (const pid_t pid : kids) wait_worker(pid);

  const auto result = records_from_checkpoint("arch.fault", *resolved, merged);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records, reference)
      << "tracing must be advisory: bit-identical results";
}

TEST(FleetTrace, KilledWorkerFlightRingNamesTheInflightShard) {
  // Heavy campaign so the victim is guaranteed to be mid-shard when killed.
  obs::Json params = fault_params("matmul");
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(3000));
  ASSERT_TRUE(resolved.has_value());

  const std::string flight_dir = testing::TempDir();
  ASSERT_EQ(::setenv("LORE_FLIGHT_DIR", flight_dir.c_str(), 1), 0);

  CoordinatorConfig cfg;
  cfg.expected_workers = 2;
  cfg.shard_count = 6;
  Coordinator coord;
  ASSERT_TRUE(coord.bind(cfg));
  const pid_t victim = fork_local_worker(coord.port(), {}, coord.listen_fd());
  const pid_t survivor = fork_local_worker(coord.port(), {}, coord.listen_fd());
  ASSERT_EQ(::unsetenv("LORE_FLIGHT_DIR"), 0);
  const std::string ring_path =
      flight_dir + "flight-" + std::to_string(victim) + ".ring";

  coord.serve({"arch.fault", params, *resolved});

  // Poll the victim's live ring until it has demonstrably begun a shard and
  // buried >= 100 events behind it, then SIGKILL mid-shard. The mmap'd ring
  // is file-backed, so the parent reads the child's writes directly.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool armed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto live = obs::decode_flight_file(ring_path);
    if (live && live->records.size() >= 100 && ring_inflight_shard(*live) >= 0) {
      armed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(armed) << "victim never reached mid-shard state";
  testing::internal::CaptureStderr();  // the coordinator logs the collection
  kill_worker(victim);

  ASSERT_TRUE(coord.wait(std::chrono::minutes(2)));
  const FleetSnapshot snap = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  const std::string log = testing::internal::GetCapturedStderr();
  wait_worker(survivor);

  // The coordinator noticed the death, salvaged the ring, re-dispatched.
  EXPECT_EQ(snap.flight_rings_collected, 1u);
  EXPECT_NE(log.find("collected flight ring"), std::string::npos) << log;

  // Post-mortem contract: the torn ring still decodes, names the inflight
  // shard, has the shard span open at death, and holds >= 64 events.
  const auto dump = obs::decode_flight_file(ring_path);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->sealed, obs::kFlightTorn);
  EXPECT_EQ(dump->pid, static_cast<std::uint32_t>(victim));
  EXPECT_GE(dump->records.size(), 64u);
  const long long inflight = ring_inflight_shard(*dump);
  ASSERT_GE(inflight, 0);
  EXPECT_LT(inflight, 6);

  // The shard span (fabric.shard/<id>) began and never ended.
  std::size_t open_spans = 0;
  bool shard_span_open = false;
  std::vector<std::uint64_t> begun;
  for (const auto& r : dump->records) {
    if (r.kind == obs::EventKind::kSpanBegin) {
      ++open_spans;
      begun.push_back(r.span);
    } else if (r.kind == obs::EventKind::kSpanEnd) {
      if (open_spans) --open_spans;
      std::erase(begun, r.span);
    }
  }
  for (const auto& r : dump->records)
    if (r.kind == obs::EventKind::kSpanBegin &&
        std::string(r.label).rfind("fabric.shard/", 0) == 0)
      for (const std::uint64_t s : begun)
        if (s == r.span) shard_span_open = true;
  EXPECT_GT(open_spans, 0u);
  EXPECT_TRUE(shard_span_open) << "the inflight shard's span must be open at death";

  // And the campaign still merged exactly: re-dispatch covered the loss.
  const auto result = records_from_checkpoint("arch.fault", *resolved, merged);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->report.completed, 3000u);
  const auto w = workload_from_params(params);
  const arch::FaultInjector inj(*w);
  EXPECT_EQ(result->records,
            inj.campaign_run(base_spec(3000), arch::FaultTarget::kRegister).records);

  std::remove(ring_path.c_str());
  const std::string survivor_ring =
      flight_dir + "flight-" + std::to_string(survivor) + ".ring";
  std::remove(survivor_ring.c_str());
}

}  // namespace
