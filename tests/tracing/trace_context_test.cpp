// Distributed-tracing identity plumbing (DESIGN.md §15): trace/span id
// generation, the hex wire codec, ambient TraceContext propagation through
// TraceContextScope and Span nesting, the parent/trace fields recorded into
// TraceEvents, the Chrome-trace export of those ids, and the ambient span id
// stamped onto ring events.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/obs/export.hpp"
#include "src/obs/ring.hpp"
#include "src/obs/span.hpp"

namespace {

using namespace lore::obs;

/// Enables the global recorder for one test and restores silence after.
struct RecorderOn {
  RecorderOn() {
    TraceRecorder::global().clear();
    TraceRecorder::global().set_enabled(true);
  }
  ~RecorderOn() {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().clear();
  }
};

TEST(TraceContext, IdsAreNonZeroAndDistinct) {
  std::set<SpanId> spans;
  std::set<std::pair<std::uint64_t, std::uint64_t>> traces;
  for (int i = 0; i < 1000; ++i) {
    const SpanId s = make_span_id();
    const TraceId t = make_trace_id();
    EXPECT_NE(s, 0u);
    EXPECT_TRUE(t.valid());
    spans.insert(s);
    traces.insert({t.hi, t.lo});
  }
  EXPECT_EQ(spans.size(), 1000u);
  EXPECT_EQ(traces.size(), 1000u);
}

TEST(TraceContext, IdsAreDistinctAcrossThreads) {
  std::vector<std::vector<SpanId>> per_thread(4);
  std::vector<std::thread> threads;
  for (auto& out : per_thread)
    threads.emplace_back([&out] {
      for (int i = 0; i < 256; ++i) out.push_back(make_span_id());
    });
  for (auto& t : threads) t.join();
  std::set<SpanId> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 4u * 256u);
}

TEST(TraceContext, HexCodecRoundTrips) {
  const SpanId s = make_span_id();
  EXPECT_EQ(span_id_from_hex(span_id_hex(s)), s);
  EXPECT_EQ(span_id_hex(s).size(), 16u);

  const TraceId t = make_trace_id();
  EXPECT_TRUE(trace_id_from_hex(trace_id_hex(t)) == t);
  EXPECT_EQ(trace_id_hex(t).size(), 32u);

  // Malformed input parses to "no id", never throws.
  EXPECT_EQ(span_id_from_hex(""), 0u);
  EXPECT_EQ(span_id_from_hex("zz"), 0u);
  EXPECT_EQ(span_id_from_hex("123"), 0u);  // wrong width
  EXPECT_FALSE(trace_id_from_hex("deadbeef").valid());
  EXPECT_FALSE(trace_id_from_hex(std::string(32, 'g')).valid());
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  EXPECT_FALSE(current_trace_context().valid());
  const TraceContext outer{make_trace_id(), make_span_id()};
  {
    TraceContextScope scope(outer);
    EXPECT_TRUE(current_trace_context().trace == outer.trace);
    EXPECT_EQ(current_trace_context().span, outer.span);
    {
      const TraceContext inner{make_trace_id(), make_span_id()};
      TraceContextScope nested(inner);
      EXPECT_TRUE(current_trace_context().trace == inner.trace);
    }
    EXPECT_TRUE(current_trace_context().trace == outer.trace);
    EXPECT_EQ(current_trace_context().span, outer.span);
  }
  EXPECT_FALSE(current_trace_context().valid());
}

TEST(TraceContext, SpanNestingRecordsParentage) {
  RecorderOn on;
  const TraceId trace = make_trace_id();
  SpanId outer_id = 0, inner_id = 0;
  {
    TraceContextScope scope(TraceContext{trace, 0});
    Span outer("outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(outer.parent(), 0u);
    EXPECT_TRUE(outer.trace() == trace);
    // The open span is the ambient parent for anything nested.
    EXPECT_EQ(current_trace_context().span, outer_id);
    {
      Span inner("inner");
      inner_id = inner.id();
      EXPECT_EQ(inner.parent(), outer_id);
      EXPECT_TRUE(inner.trace() == trace);
    }
    EXPECT_EQ(current_trace_context().span, outer_id);
  }

  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 2u);  // inner closed first
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].span, inner_id);
  EXPECT_EQ(events[0].parent, outer_id);
  EXPECT_TRUE(events[0].trace == trace);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].span, outer_id);
  EXPECT_EQ(events[1].parent, 0u);
}

TEST(TraceContext, ScopeCarriesContextAcrossThreads) {
  RecorderOn on;
  const TraceContext ctx{make_trace_id(), make_span_id()};
  SpanId child_id = 0;
  std::thread worker([&] {
    // The pattern parallel_for bodies and fabric workers use: adopt the
    // spawning side's context, then open spans under it.
    TraceContextScope scope(ctx);
    Span s("cross-thread");
    child_id = s.id();
    EXPECT_EQ(s.parent(), ctx.span);
    EXPECT_TRUE(s.trace() == ctx.trace);
  });
  worker.join();
  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span, child_id);
  EXPECT_EQ(events[0].parent, ctx.span);
}

TEST(TraceContext, ChromeExportCarriesIdsAndProcessLanes) {
  TraceEvent local;
  local.name = "local";
  local.span = 7;
  local.parent = 3;
  local.trace = make_trace_id();
  TraceEvent remote = local;
  remote.name = "remote";
  remote.pid = 4242;  // stitched from a worker
  TraceEvent anonymous;
  anonymous.name = "anon";  // span == 0: no id args at all

  const Json doc = chrome_trace_json({local, remote, anonymous});
  const auto& list = doc.at("traceEvents").items();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].at("pid").as_int(), 1);  // local lane
  EXPECT_EQ(list[1].at("pid").as_int(), 4242);
  EXPECT_EQ(list[0].at("args").at("span").as_string(), span_id_hex(7));
  EXPECT_EQ(list[0].at("args").at("parent").as_string(), span_id_hex(3));
  EXPECT_EQ(list[0].at("args").at("trace").as_string(), trace_id_hex(local.trace));
  EXPECT_EQ(list[2].at("args").find("span"), nullptr);
}

TEST(TraceContext, RingEventsCarryAmbientSpanId) {
  auto& ring = EventRing::global();
  Event drain;
  while (ring.try_pop(drain)) {
  }
  ring.set_enabled(true);
  {
    RecorderOn on;
    TraceContextScope scope(TraceContext{make_trace_id(), 0});
    Span s("emitter");
    emit_event(EventKind::kTrialCompleted, 11, 1.0);
    Event got;
    bool found = false;
    while (ring.try_pop(got)) {
      if (got.kind == EventKind::kTrialCompleted && got.a == 11) {
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
    EXPECT_EQ(got.span, s.id());
  }
  ring.set_enabled(false);
  while (ring.try_pop(drain)) {
  }
}

TEST(TraceContext, SpansCostNothingWhenEverythingIsOff) {
  // Neither the recorder nor any event stream is on: no identity generated,
  // no ambient context disturbed.
  ASSERT_FALSE(TraceRecorder::global().recording());
  ASSERT_FALSE(event_stream_enabled());
  Span s("idle");
  EXPECT_EQ(s.id(), 0u);
  EXPECT_FALSE(current_trace_context().valid());
}

}  // namespace
