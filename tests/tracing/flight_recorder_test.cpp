// Crash-safe flight recorder (`lore.flight.v1`, DESIGN.md §15): mmap ring
// round trips, wraparound windowing, CRC-based torn-slot recovery, and the
// two death modes the format exists for — a fatal signal sealing the header
// from the handler, and SIGKILL leaving a torn-but-decodable ring behind.
// Child processes do the dying; the parent decodes what they left on disk.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/obs/flight.hpp"

namespace {

using namespace lore::obs;

std::string temp_ring_path(const char* tag) {
  return testing::TempDir() + "lore_flight_" + tag + "_" +
         std::to_string(::getpid()) + ".ring";
}

TEST(FlightRecorder, RoundTripsRecordsThroughCleanClose) {
  const std::string path = temp_ring_path("roundtrip");
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path, 256));
  EXPECT_TRUE(rec.active());
  EXPECT_EQ(rec.capacity(), 256u);
  for (int i = 0; i < 10; ++i)
    rec.record(EventKind::kTrialCompleted, static_cast<std::uint64_t>(i),
               i * 1.5, 0xabcd, "trial");
  rec.record(EventKind::kShardBegin, 7, 0.0, 0, "arch.fault");
  rec.close();
  EXPECT_FALSE(rec.active());

  std::string err;
  const auto dump = decode_flight_file(path, &err);
  ASSERT_TRUE(dump.has_value()) << err;
  EXPECT_EQ(dump->version, 1u);
  EXPECT_EQ(dump->pid, static_cast<std::uint32_t>(::getpid()));
  EXPECT_EQ(dump->sealed, kFlightSealedClean);
  EXPECT_EQ(dump->capacity, 256u);
  EXPECT_EQ(dump->cursor, 11u);
  EXPECT_EQ(dump->torn_records, 0u);
  ASSERT_EQ(dump->records.size(), 11u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dump->records[i].seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(dump->records[i].kind, EventKind::kTrialCompleted);
    EXPECT_EQ(dump->records[i].a, static_cast<std::uint64_t>(i));
    EXPECT_DOUBLE_EQ(dump->records[i].value, i * 1.5);
    EXPECT_EQ(dump->records[i].span, 0xabcdu);
    EXPECT_EQ(dump->records[i].label, "trial");
  }
  EXPECT_EQ(dump->records.back().kind, EventKind::kShardBegin);
  EXPECT_EQ(dump->records.back().a, 7u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, WrapAroundKeepsTheNewestCapacityRecords) {
  const std::string path = temp_ring_path("wrap");
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path, 64));
  for (std::uint64_t i = 0; i < 200; ++i)
    rec.record(EventKind::kTrialCompleted, i, 0.0, 0, {});
  rec.close();

  const auto dump = decode_flight_file(path);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->cursor, 200u);
  ASSERT_EQ(dump->records.size(), 64u);
  // Oldest surviving record is seq 136 (= 200 - 64), newest is 199.
  EXPECT_EQ(dump->records.front().seq, 136u);
  EXPECT_EQ(dump->records.back().seq, 199u);
  EXPECT_EQ(dump->records.back().a, 199u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, CapacityRoundsUpToAPowerOfTwo) {
  const std::string path = temp_ring_path("pow2");
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path, 100));
  EXPECT_EQ(rec.capacity(), 128u);
  rec.close();
  std::remove(path.c_str());
}

TEST(FlightRecorder, DecodeSkipsCorruptedSlotsAsTorn) {
  const std::string path = temp_ring_path("torn");
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path, 64));
  for (std::uint64_t i = 0; i < 8; ++i)
    rec.record(EventKind::kTrialCompleted, i, 0.0, 0, {});
  rec.close();

  // Flip a byte inside record 3's payload: its CRC no longer matches, so the
  // decoder must drop exactly that slot and keep the other seven.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(4096 + 3 * 64 + 16);  // record 3, `a` field
    const char x = 0x5a;
    f.write(&x, 1);
  }
  const auto dump = decode_flight_file(path);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->torn_records, 1u);
  ASSERT_EQ(dump->records.size(), 7u);
  for (const auto& r : dump->records) EXPECT_NE(r.seq, 3u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RejectsForeignAndTruncatedFiles) {
  const std::string path = temp_ring_path("foreign");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a flight ring";
  }
  std::string err;
  EXPECT_FALSE(decode_flight_file(path, &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(decode_flight_file("/nonexistent/nowhere.ring", &err).has_value());
  std::remove(path.c_str());
}

TEST(FlightRecorder, FatalSignalSealsTheHeaderFromTheHandler) {
  const std::string path = temp_ring_path("sigabrt");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: open a ring, install the handlers, write context, then die the
    // catchable way. The handler must seal (signal + timestamp) and re-raise.
    FlightRecorder& rec = FlightRecorder::global();
    if (!rec.open(path, 128)) _exit(3);
    if (!FlightRecorder::install_signal_handlers()) _exit(4);
    rec.record(EventKind::kShardBegin, 42, 0.0, 0, "doomed");
    for (std::uint64_t i = 0; i < 100; ++i)
      rec.record(EventKind::kTrialCompleted, i, 0.0, 0, {});
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const auto dump = decode_flight_file(path);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->sealed, kFlightSealedSignal);
  EXPECT_EQ(dump->seal_signal, SIGABRT);
  EXPECT_GT(dump->seal_t_us, 0.0);
  EXPECT_EQ(dump->pid, static_cast<std::uint32_t>(child));
  EXPECT_EQ(dump->records.size(), 101u);
  EXPECT_EQ(dump->records.front().kind, EventKind::kShardBegin);
  EXPECT_EQ(dump->records.front().a, 42u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, SigkillLeavesATornButDecodableRing) {
  const std::string path = temp_ring_path("sigkill");
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: fill the ring past the post-mortem contract's 64-event floor,
    // signal readiness, then spin until SIGKILLed — no chance to seal.
    ::close(ready[0]);
    FlightRecorder& rec = FlightRecorder::global();
    if (!rec.open(path, 256)) _exit(3);
    rec.record(EventKind::kShardBegin, 9, 0.0, 0, "arch.fault");
    for (std::uint64_t i = 0; i < 128; ++i)
      rec.record(EventKind::kTrialCompleted, i, 1.0, 0, {});
    const char ok = 1;
    (void)!::write(ready[1], &ok, 1);
    for (;;) ::pause();
  }
  ::close(ready[1]);
  char ok = 0;
  ASSERT_EQ(::read(ready[0], &ok, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Nothing sealed the header — but every completed record survives in the
  // page cache, and the decoder recovers all of them.
  const auto dump = decode_flight_file(path);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->sealed, kFlightTorn);
  EXPECT_GE(dump->records.size(), 64u);
  EXPECT_EQ(dump->records.size(), 129u);
  EXPECT_EQ(dump->records.front().kind, EventKind::kShardBegin);
  EXPECT_EQ(dump->records.front().a, 9u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EmitEventDualRoutesIntoTheRing) {
  const std::string path = temp_ring_path("dualroute");
  FlightRecorder& rec = FlightRecorder::global();
  ASSERT_TRUE(rec.open(path, 128));
  EXPECT_TRUE(event_stream_enabled());  // flight alone keeps the stream on
  emit_event(EventKind::kTrialsPruned, 17, 512.0, "chunk");
  rec.close();
  EXPECT_FALSE(event_stream_enabled());

  const auto dump = decode_flight_file(path);
  ASSERT_TRUE(dump.has_value());
  ASSERT_EQ(dump->records.size(), 1u);
  EXPECT_EQ(dump->records[0].kind, EventKind::kTrialsPruned);
  EXPECT_EQ(dump->records[0].a, 17u);
  EXPECT_DOUBLE_EQ(dump->records[0].value, 512.0);
  EXPECT_EQ(dump->records[0].label, "chunk");
  std::remove(path.c_str());
}

}  // namespace
