#include "src/core/framework.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/crosslayer.hpp"

namespace lore::core {
namespace {

/// Minimal two-state environment: action 0 is always right (+1), action 1 is
/// always wrong (-1).
class TrivialEnv final : public ReliabilityEnvironment {
 public:
  std::size_t num_states() const override { return 2; }
  std::size_t num_actions() const override { return 2; }
  std::size_t reset() override {
    state_ = 0;
    return state_;
  }
  StepResult step(std::size_t action) override {
    state_ = 1 - state_;
    return {state_, action == 0 ? 1.0 : -1.0, false};
  }
  std::string name() const override { return "trivial"; }

 private:
  std::size_t state_ = 0;
};

TEST(ResiliencyModelRegistry, RegisterAndEvaluate) {
  ResiliencyModelRegistry reg;
  reg.register_model("double-first", [](std::span<const double> obs) { return 2.0 * obs[0]; });
  EXPECT_TRUE(reg.has("double-first"));
  EXPECT_FALSE(reg.has("missing"));
  const double obs[] = {21.0};
  EXPECT_DOUBLE_EQ(reg.evaluate("double-first", obs), 42.0);
  EXPECT_EQ(reg.names().size(), 1u);
}

TEST(LearningController, SolvesTrivialEnvironment) {
  TrivialEnv env;
  LearningController controller;
  const auto report = controller.train(env, 50, 20);
  EXPECT_EQ(report.episode_rewards.size(), 50u);
  EXPECT_GT(report.late_mean(5), report.early_mean(5) - 0.05);
  EXPECT_EQ(controller.policy(0), 0u);
  EXPECT_EQ(controller.policy(1), 0u);
  EXPECT_GT(controller.evaluate(env, 5, 20), 0.99);
}

TEST(TrainingReport, EarlyLateMeans) {
  TrainingReport r;
  r.episode_rewards = {0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(r.early_mean(2), 0.0);
  EXPECT_DOUBLE_EQ(r.late_mean(2), 1.0);
}

TEST(CrossLayerEnvironment, StateSpaceAndDynamics) {
  CrossLayerEnvironment env;
  EXPECT_EQ(env.num_actions(), 5u);
  EXPECT_EQ(env.num_states(), 6u * 4u * 5u);
  const auto s0 = env.reset();
  EXPECT_LT(s0, env.num_states());
  const auto result = env.step(2);
  EXPECT_LT(result.next_state, env.num_states());
  EXPECT_FALSE(result.terminal);
  EXPECT_TRUE(std::isfinite(result.reward));
}

TEST(CrossLayerEnvironment, RegistryCoversThreeLayers) {
  CrossLayerEnvironment env;
  EXPECT_TRUE(env.registry().has("energy"));
  EXPECT_TRUE(env.registry().has("ser"));
  EXPECT_TRUE(env.registry().has("mttf"));
}

TEST(CrossLayerEnvironment, SustainedTopSpeedHeats) {
  CrossLayerEnvironment env;
  env.reset();
  for (int i = 0; i < 300; ++i) env.step(4);
  const double hot = env.temperature_k();
  for (int i = 0; i < 300; ++i) env.step(0);
  EXPECT_LT(env.temperature_k(), hot);
}

TEST(CrossLayerLoop, LearningImprovesReward) {
  CrossLayerEnvironment env(CrossLayerConfig{.seed = 7});
  LearningController controller(ml::QLearnerConfig{.alpha = 0.15,
                                                   .gamma = 0.8,
                                                   .epsilon = 0.3,
                                                   .epsilon_decay = 0.97});
  const auto report = controller.train(env, 80, 150);
  // The Fig. 1 promise: the loop improves the composite reliability reward.
  EXPECT_GT(report.late_mean(10), report.early_mean(10));
}

}  // namespace
}  // namespace lore::core
