// Interrupt/resume equivalence for the real campaign entry points: an arch
// fault-injection campaign, a circuit stuck-at campaign, a cell-
// characterization grid, and the rollback Monte Carlo, each interrupted via
// `max_trials_per_run` slices and resumed from its checkpoint, must be
// bit-identical to the uninterrupted run — at 1, 4, and hardware threads.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "src/arch/fault.hpp"
#include "src/circuit/characterize.hpp"
#include "src/circuit/logicsim.hpp"
#include "src/circuit/netlist.hpp"
#include "src/rollback/montecarlo.hpp"

namespace lore {
namespace {

std::string temp_ckpt(const char* name) {
  return ::testing::TempDir() + "resume_" + name + ".ckpt";
}

std::vector<unsigned> thread_counts() {
  const unsigned hw = std::thread::hardware_concurrency();
  return {1u, 4u, hw ? hw : 2u};
}

/// Run `run(spec)` in `chunk`-sized slices until its report says complete.
template <typename RunFn>
auto run_in_slices(CampaignSpec spec, std::size_t chunk, const RunFn& run) {
  spec.max_trials_per_run = chunk;
  auto result = run(spec);
  for (int i = 0; i < 64 && !result.report.complete(); ++i) result = run(spec);
  EXPECT_TRUE(result.report.complete()) << "campaign never converged";
  return result;
}

TEST(DomainResume, ArchFaultCampaign) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  const auto workload = arch::make_dot_product(12, 42);
  const arch::FaultInjector injector(workload);

  CampaignSpec spec;
  spec.trials = 150;
  spec.base_seed = 11;
  spec.checkpoint_every = 8;
  const auto reference = injector.campaign_run(spec, arch::FaultTarget::kRegister);
  ASSERT_TRUE(reference.report.complete());

  for (unsigned threads : thread_counts()) {
    CampaignSpec sliced = spec;
    sliced.threads = threads;
    sliced.checkpoint_path = temp_ckpt("arch");
    std::filesystem::remove(sliced.checkpoint_path);
    const auto resumed = run_in_slices(sliced, 40, [&](const CampaignSpec& s) {
      return injector.campaign_run(s, arch::FaultTarget::kRegister);
    });
    EXPECT_GT(resumed.report.resumed, 0u);
    EXPECT_EQ(resumed.records, reference.records) << "threads=" << threads;
  }
}

TEST(DomainResume, CircuitStuckAtCampaign) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  const auto lib = circuit::make_skeleton_library("tech");
  const auto nl =
      circuit::generate_random_logic(lib, circuit::RandomLogicConfig{.num_gates = 40, .seed = 5});

  CampaignSpec spec;
  spec.trials = 24;
  spec.base_seed = 17;
  spec.checkpoint_every = 4;
  const auto reference = circuit::stuck_at_campaign_run(nl, spec);
  ASSERT_TRUE(reference.report.complete());

  for (unsigned threads : thread_counts()) {
    CampaignSpec sliced = spec;
    sliced.threads = threads;
    sliced.checkpoint_path = temp_ckpt("stuckat");
    std::filesystem::remove(sliced.checkpoint_path);
    const auto resumed = run_in_slices(sliced, 10, [&](const CampaignSpec& s) {
      return circuit::stuck_at_campaign_run(nl, s);
    });
    ASSERT_EQ(resumed.criticality.size(), reference.criticality.size());
    for (std::size_t g = 0; g < reference.criticality.size(); ++g) {
      EXPECT_EQ(resumed.criticality[g].stuck0_observability,
                reference.criticality[g].stuck0_observability)
          << "gate " << g << " threads " << threads;
      EXPECT_EQ(resumed.criticality[g].stuck1_observability,
                reference.criticality[g].stuck1_observability)
          << "gate " << g << " threads " << threads;
    }
  }
}

TEST(DomainResume, CharacterizationGrid) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  const circuit::Characterizer characterizer(
      circuit::CharacterizerConfig{.slew_axis_ps = {10.0, 40.0},
                                   .load_axis_ff = {1.0, 4.0},
                                   .timestep_ps = 0.2},
      device::SelfHeatingModel{});
  const device::OperatingPoint op{};

  auto reference_lib = circuit::make_skeleton_library("tech");
  CampaignSpec spec;
  spec.base_seed = 1;
  const auto reference_report = characterizer.characterize_library(reference_lib, op, spec);
  ASSERT_TRUE(reference_report.complete());

  for (unsigned threads : thread_counts()) {
    auto lib = circuit::make_skeleton_library("tech");
    CampaignSpec sliced = spec;
    sliced.threads = threads;
    sliced.checkpoint_path = temp_ckpt("characterize");
    sliced.checkpoint_every = 1;
    sliced.max_trials_per_run = 3;
    std::filesystem::remove(sliced.checkpoint_path);
    CampaignReport report;
    for (int i = 0; i < 64; ++i) {
      report = characterizer.characterize_library(lib, op, sliced);
      if (report.complete()) break;
    }
    ASSERT_TRUE(report.complete());
    EXPECT_GT(report.resumed, 0u);
    for (std::size_t c = 0; c < reference_lib.size(); ++c) {
      const auto& want = reference_lib.cell(c);
      const auto& got = lib.cell(c);
      ASSERT_EQ(got.arcs.size(), want.arcs.size());
      for (std::size_t a = 0; a < want.arcs.size(); ++a) {
        const auto eq = [&](const circuit::TimingTable& x, const circuit::TimingTable& y) {
          ASSERT_EQ(x.values().size(), y.values().size());
          for (std::size_t v = 0; v < x.values().size(); ++v)
            EXPECT_EQ(x.values()[v], y.values()[v]) << "cell " << c << " arc " << a;
        };
        eq(got.arcs[a].rise_delay, want.arcs[a].rise_delay);
        eq(got.arcs[a].fall_delay, want.arcs[a].fall_delay);
        eq(got.arcs[a].rise_slew, want.arcs[a].rise_slew);
        eq(got.arcs[a].fall_slew, want.arcs[a].fall_slew);
      }
    }
  }
}

TEST(DomainResume, RollbackMonteCarlo) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  rollback::ExperimentConfig cfg;
  cfg.error_probabilities = {1e-5, 1e-4};
  cfg.runs_per_point = 30;
  const std::vector<rollback::SchedulerKind> schedulers = {
      rollback::SchedulerKind::kDs, rollback::SchedulerKind::kDsLearned};
  const auto reference = rollback::run_experiment(cfg, schedulers);
  ASSERT_TRUE(reference.campaign_report.complete());

  for (unsigned threads : thread_counts()) {
    rollback::ExperimentConfig sliced = cfg;
    sliced.campaign.threads = threads;
    sliced.campaign.checkpoint_path = temp_ckpt("rollback");
    sliced.campaign.checkpoint_every = 5;
    sliced.campaign.max_trials_per_run = 25;
    std::filesystem::remove(sliced.campaign.checkpoint_path);
    rollback::ExperimentResult resumed;
    for (int i = 0; i < 64; ++i) {
      resumed = rollback::run_experiment(sliced, schedulers);
      if (resumed.campaign_report.complete()) break;
    }
    ASSERT_TRUE(resumed.campaign_report.complete());
    EXPECT_GT(resumed.campaign_report.resumed, 0u);
    ASSERT_EQ(resumed.points.size(), reference.points.size());
    for (std::size_t p = 0; p < reference.points.size(); ++p) {
      EXPECT_EQ(resumed.points[p].avg_rollbacks_per_segment,
                reference.points[p].avg_rollbacks_per_segment)
          << "point " << p << " threads " << threads;
      EXPECT_EQ(resumed.points[p].sem_rollbacks, reference.points[p].sem_rollbacks);
      EXPECT_EQ(resumed.points[p].hit_rate, reference.points[p].hit_rate);
    }
  }
}

}  // namespace
}  // namespace lore
