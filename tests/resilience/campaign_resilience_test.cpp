// Resilience contract of the campaign runtime (src/common/campaign.hpp):
// checkpoints survive corruption/truncation/staleness by degrading to a fresh
// run; a SIGKILL-ed campaign resumes bit-identically at any thread count;
// hung trials time out, retry with backoff, and degrade into the report; the
// pool reports suppressed job exceptions instead of dropping them.
#include "src/common/campaign.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/obs/obs.hpp"

namespace lore {
namespace {

using namespace std::chrono_literals;

/// Trivially copyable record whose bytes are a pure function of the trial
/// index and its seeded stream — any scheduling or resume difference shows up
/// as a byte difference.
struct ProbeRecord {
  std::uint64_t trial = 0;
  std::uint64_t draw = 0;
  friend bool operator==(const ProbeRecord&, const ProbeRecord&) = default;
};

ProbeRecord probe_trial(std::size_t t, Rng& rng) {
  return ProbeRecord{t, rng.next_u64()};
}

std::string temp_ckpt(const char* name) {
  return ::testing::TempDir() + "resilience_" + name + ".ckpt";
}

CampaignSpec base_spec(std::size_t trials, const char* name) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 2024;
  spec.domain = std::string("test.probe/") + name;
  spec.checkpoint_path = temp_ckpt(name);
  spec.checkpoint_every = 1;
  std::filesystem::remove(spec.checkpoint_path);
  return spec;
}

CampaignResult<ProbeRecord> run_probe(const CampaignSpec& spec) {
  return run_campaign<ProbeRecord>(
      spec, [](std::size_t t, Rng& rng, const CancelToken&) { return probe_trial(t, rng); });
}

TEST(Checkpoint, RoundTripPreservesEntries) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(10, "roundtrip");
  CampaignCheckpoint ck;
  ck.identity = spec.identity_hash();
  ck.build_tag = checkpoint_build_tag();
  ck.trials = spec.trials;
  ck.entries = {{2, "payload-two"}, {7, std::string("\x00\xff zero", 7)}};
  ASSERT_TRUE(write_checkpoint(spec.checkpoint_path, ck));

  const auto loaded = load_checkpoint(spec.checkpoint_path, spec);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->entries.size(), 2u);
  EXPECT_EQ(loaded->entries[0].trial, 2u);
  EXPECT_EQ(loaded->entries[0].payload, "payload-two");
  EXPECT_EQ(loaded->entries[1].trial, 7u);
  EXPECT_EQ(loaded->entries[1].payload, ck.entries[1].payload);
}

TEST(Checkpoint, MissingFileIsNotAnError) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(4, "missing");
  EXPECT_FALSE(load_checkpoint(spec.checkpoint_path, spec).has_value());
}

TEST(Checkpoint, CorruptedByteFallsBackToFreshRun) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(12, "corrupt");
  ASSERT_TRUE(run_probe(spec).report.complete());

  // Flip one payload byte in the middle of the file: the CRC must reject it.
  std::fstream f(spec.checkpoint_path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 32);
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  EXPECT_FALSE(load_checkpoint(spec.checkpoint_path, spec).has_value());
  const auto fresh = run_probe(spec);  // must not crash or resume poison
  EXPECT_FALSE(fresh.report.loaded_checkpoint);
  EXPECT_EQ(fresh.report.resumed, 0u);
  EXPECT_TRUE(fresh.report.complete());
}

TEST(Checkpoint, TruncatedFileFallsBackToFreshRun) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(12, "truncated");
  ASSERT_TRUE(run_probe(spec).report.complete());
  const auto size = std::filesystem::file_size(spec.checkpoint_path);
  std::filesystem::resize_file(spec.checkpoint_path, size / 2);

  EXPECT_FALSE(load_checkpoint(spec.checkpoint_path, spec).has_value());
  const auto fresh = run_probe(spec);
  EXPECT_FALSE(fresh.report.loaded_checkpoint);
  EXPECT_TRUE(fresh.report.complete());
}

TEST(Checkpoint, StaleBuildTagIsRejected) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(6, "stale");
  CampaignCheckpoint ck;
  ck.identity = spec.identity_hash();
  ck.build_tag = "stale-build";
  ck.trials = spec.trials;
  ck.entries = {{0, "old payload"}};
  ASSERT_TRUE(write_checkpoint(spec.checkpoint_path, ck));
  EXPECT_FALSE(load_checkpoint(spec.checkpoint_path, spec).has_value());
}

TEST(Checkpoint, SpecIdentityMismatchIsRejected) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(6, "mismatch");
  ASSERT_TRUE(run_probe(spec).report.complete());

  CampaignSpec other = spec;
  other.base_seed += 1;  // identity field: different campaign
  EXPECT_FALSE(load_checkpoint(spec.checkpoint_path, other).has_value());

  CampaignSpec policy_change = spec;
  policy_change.threads = 7;  // policy field: same campaign
  policy_change.checkpoint_every = 3;
  EXPECT_TRUE(load_checkpoint(spec.checkpoint_path, policy_change).has_value());
}

TEST(Checkpoint, DefaultPathComesFromEnvironment) {
  unsetenv("LORE_CHECKPOINT_DIR");
  EXPECT_EQ(default_checkpoint_path("fi"), "");
  setenv("LORE_CHECKPOINT_DIR", "/tmp/lore-ckpt", 1);
  EXPECT_EQ(default_checkpoint_path("fi"), "/tmp/lore-ckpt/fi.ckpt");
  unsetenv("LORE_CHECKPOINT_DIR");
}

TEST(Resume, ChunkedRunsAreBitIdenticalAtAnyThreadCount) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec reference_spec = base_spec(20, "chunk_ref");
  reference_spec.checkpoint_path.clear();
  const auto reference = run_probe(reference_spec);
  ASSERT_TRUE(reference.report.complete());

  const unsigned hw = std::thread::hardware_concurrency();
  for (unsigned threads : {1u, 4u, hw ? hw : 2u}) {
    CampaignSpec spec = base_spec(20, "chunk");
    spec.threads = threads;
    spec.max_trials_per_run = 7;
    CampaignResult<ProbeRecord> result;
    std::size_t invocations = 0;
    do {
      result = run_probe(spec);
      ASSERT_LT(++invocations, 10u) << "campaign failed to converge";
    } while (!result.report.complete());
    EXPECT_EQ(invocations, 3u);  // ceil(20 / 7)
    EXPECT_TRUE(result.report.loaded_checkpoint);
    EXPECT_GT(result.report.resumed, 0u);
    EXPECT_EQ(result.records, reference.records) << "threads=" << threads;
  }
}

TEST(Resume, SigkilledCampaignResumesBitIdentical) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(64, "sigkill");

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: grind through the campaign slowly so the parent can kill it
    // mid-flight with checkpoints on disk.
    CampaignSpec slow = spec;
    slow.threads = 2;
    run_campaign<ProbeRecord>(slow,
                              [](std::size_t t, Rng& rng, const CancelToken&) {
                                std::this_thread::sleep_for(3ms);
                                return probe_trial(t, rng);
                              });
    _exit(0);
  }

  // Parent: wait for evidence of progress, then SIGKILL — no graceful exit.
  for (int i = 0; i < 1000; ++i) {
    std::error_code ec;
    if (std::filesystem::exists(spec.checkpoint_path, ec)) break;
    std::this_thread::sleep_for(2ms);
  }
  std::this_thread::sleep_for(20ms);
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The file on disk is a valid checkpoint (atomic rename: never half-written).
  const auto loaded = load_checkpoint(spec.checkpoint_path, spec);
  if (loaded.has_value()) {
    EXPECT_LE(loaded->entries.size(), spec.trials);
  }

  CampaignSpec resume = spec;
  resume.threads = 4;
  const auto resumed = run_probe(resume);
  EXPECT_TRUE(resumed.report.complete());
  if (loaded.has_value() && !loaded->entries.empty()) {
    EXPECT_TRUE(resumed.report.loaded_checkpoint);
  }

  CampaignSpec uninterrupted = spec;
  uninterrupted.checkpoint_path = temp_ckpt("sigkill_ref");
  std::filesystem::remove(uninterrupted.checkpoint_path);
  const auto reference = run_probe(uninterrupted);
  EXPECT_EQ(resumed.records, reference.records);
}

TEST(Deadline, HungTrialTimesOutRetriesAndDegrades) {
  auto& registry = obs::MetricsRegistry::global();
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const auto timeouts_before = registry.counter("campaign.timeouts").value();
  const auto retries_before = registry.counter("campaign.retries").value();

  CampaignSpec spec;
  spec.trials = 8;
  spec.base_seed = 7;
  spec.domain = "test.hang";
  spec.threads = 2;
  spec.trial_deadline = 20ms;
  spec.max_retries = 2;
  spec.retry_backoff = 1ms;
  const std::size_t hung = 3;
  const auto result = run_campaign<ProbeRecord>(
      spec, [&](std::size_t t, Rng& rng, const CancelToken& cancel) {
        if (t == hung) {
          for (;;) {  // a hang: only the deadline can stop it
            std::this_thread::sleep_for(1ms);
            cancel.throw_if_cancelled();
          }
        }
        return probe_trial(t, rng);
      });

  EXPECT_EQ(result.status[hung], TrialStatus::kTimeout);
  EXPECT_EQ(result.report.timeouts, 1u);
  EXPECT_EQ(result.report.timeout_attempts, 3u);  // initial + 2 retries
  EXPECT_EQ(result.report.retries, 2u);
  EXPECT_EQ(result.report.completed, spec.trials - 1);
  EXPECT_FALSE(result.report.complete());
  for (std::size_t t = 0; t < spec.trials; ++t) {
    if (t != hung) {
      EXPECT_EQ(result.status[t], TrialStatus::kOk);
    }
  }

  // The obs counter tallies timed-out attempts (3 here: initial + 2 retries).
  EXPECT_EQ(registry.counter("campaign.timeouts").value(), timeouts_before + 3);
  EXPECT_GE(registry.counter("campaign.retries").value(), retries_before + 2);
  obs::set_enabled(was_enabled);
}

TEST(Deadline, RetrySucceedsWithIdenticalStream) {
  // A trial that times out once, then completes, must produce the same bytes
  // as a trial that never timed out: each attempt replays the same stream.
  CampaignSpec flaky_spec;
  flaky_spec.trials = 6;
  flaky_spec.base_seed = 99;
  flaky_spec.domain = "test.flaky";
  flaky_spec.threads = 1;
  flaky_spec.trial_deadline = 50ms;
  flaky_spec.max_retries = 2;
  flaky_spec.retry_backoff = 1ms;
  std::atomic<int> attempts{0};
  const auto flaky = run_campaign<ProbeRecord>(
      flaky_spec, [&](std::size_t t, Rng& rng, const CancelToken&) {
        if (t == 2 && attempts.fetch_add(1) == 0) throw TrialTimeout();
        return probe_trial(t, rng);
      });
  ASSERT_TRUE(flaky.report.complete());
  EXPECT_EQ(flaky.report.retries, 1u);

  CampaignSpec clean_spec = flaky_spec;
  const auto clean = run_campaign<ProbeRecord>(
      clean_spec,
      [](std::size_t t, Rng& rng, const CancelToken&) { return probe_trial(t, rng); });
  EXPECT_EQ(flaky.records, clean.records);
}

TEST(Deadline, FailingTrialIsRecordedWithFirstError) {
  CampaignSpec spec;
  spec.trials = 5;
  spec.base_seed = 3;
  spec.domain = "test.fail";
  spec.threads = 2;
  spec.max_retries = 1;
  spec.retry_backoff = 1ms;
  const auto result = run_campaign<ProbeRecord>(
      spec, [](std::size_t t, Rng& rng, const CancelToken&) {
        if (t == 1) throw std::runtime_error("boom in trial 1");
        return probe_trial(t, rng);
      });
  EXPECT_EQ(result.status[1], TrialStatus::kFailed);
  EXPECT_EQ(result.report.failed, 1u);
  EXPECT_EQ(result.report.suppressed_exceptions, 2u);  // initial + 1 retry
  EXPECT_NE(result.report.first_error.find("boom in trial 1"), std::string::npos);
  EXPECT_EQ(result.records[1], ProbeRecord{});  // failed slot value-initialized
}

TEST(Budget, ExhaustedBudgetSkipsAndResumeFinishes) {
  if (!kCheckpointCompiledIn) GTEST_SKIP() << "built with LORE_CHECKPOINT=OFF";
  CampaignSpec spec = base_spec(24, "budget");
  spec.threads = 2;
  spec.overall_budget = 1ms;
  const auto slow_probe = [](std::size_t t, Rng& rng, const CancelToken&) {
    std::this_thread::sleep_for(3ms);
    return probe_trial(t, rng);
  };
  const auto partial = run_campaign<ProbeRecord>(spec, slow_probe);
  EXPECT_GT(partial.report.skipped, 0u);
  EXPECT_FALSE(partial.report.complete());

  CampaignSpec resume = spec;
  resume.overall_budget = {};
  const auto finished = run_campaign<ProbeRecord>(resume, slow_probe);
  ASSERT_TRUE(finished.report.complete());

  CampaignSpec reference = spec;
  reference.overall_budget = {};
  reference.checkpoint_path.clear();
  const auto uninterrupted = run_campaign<ProbeRecord>(reference, slow_probe);
  EXPECT_EQ(finished.records, uninterrupted.records);
}

TEST(Pool, SuppressedExceptionsAreCountedAndReported) {
  auto& counter = obs::MetricsRegistry::global().counter("pool.suppressed_exceptions");
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const auto before = counter.value();

  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i)
    pool.submit([] { throw std::runtime_error("job exploded"); });
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job exploded"), std::string::npos);
    EXPECT_NE(what.find("+7 suppressed job exception(s)"), std::string::npos) << what;
  }
  EXPECT_EQ(counter.value(), before + 7);
  obs::set_enabled(was_enabled);
}

TEST(Pool, SingleExceptionKeepsOriginalTypeAndMessage) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("lonely failure"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
}

}  // namespace
}  // namespace lore
