// Compat pins for the modern campaign API. The legacy `Rng&`-drawing
// overloads are gone; what remains — and what out-of-tree callers migrate
// onto — is the positional-seed convenience over the `CampaignSpec` entry
// point. These tests pin that the convenience is bit-identical to the spec
// form (same trials/base_seed/threads), so the two spellings stay
// interchangeable.
#include <gtest/gtest.h>

#include "src/arch/fault.hpp"
#include "src/arch/pipeline.hpp"
#include "src/circuit/logicsim.hpp"

namespace lore {
namespace {

TEST(CampaignCompat, FaultPositionalMatchesSpecEntryPoint) {
  const auto workload = arch::make_dot_product(12, 42);
  const arch::FaultInjector injector(workload);
  Rng seed_rng(5);
  const std::uint64_t base_seed = seed_rng.next_u64();

  const auto positional =
      injector.campaign(80, arch::FaultTarget::kRegister, base_seed);
  const auto spec_form = injector.campaign(
      CampaignSpec{.trials = 80, .base_seed = base_seed}, arch::FaultTarget::kRegister);
  EXPECT_EQ(positional, spec_form);
}

TEST(CampaignCompat, FaultPositionalThreadCountInvariant) {
  const auto workload = arch::make_dot_product(12, 42);
  const arch::FaultInjector injector(workload);
  const auto serial = injector.campaign(64, arch::FaultTarget::kMemory, 77, 1);
  const auto threaded = injector.campaign(64, arch::FaultTarget::kMemory, 77, 4);
  EXPECT_EQ(serial, threaded);
}

TEST(CampaignCompat, PipelinePositionalMatchesSpecEntryPoint) {
  const auto workload = arch::make_dot_product(10, 7);
  Rng seed_rng(9);
  const std::uint64_t base_seed = seed_rng.next_u64();

  const auto positional = arch::pipeline_campaign(workload, 60, base_seed);
  const auto spec_form = arch::pipeline_campaign(
      workload, CampaignSpec{.trials = 60, .base_seed = base_seed});
  EXPECT_EQ(positional, spec_form);
}

TEST(CampaignCompat, StuckAtSpecRunMatchesConvenience) {
  const auto lib = circuit::make_skeleton_library("tech");
  const auto nl = circuit::generate_random_logic(
      lib, circuit::RandomLogicConfig{.num_gates = 30, .seed = 3});
  Rng seed_rng(4);
  const CampaignSpec spec{.trials = 12, .base_seed = seed_rng.next_u64(), .threads = 1};

  const auto convenience = circuit::stuck_at_campaign(nl, spec);
  const auto full = circuit::stuck_at_campaign_run(nl, spec);
  ASSERT_EQ(convenience.size(), full.criticality.size());
  for (std::size_t g = 0; g < convenience.size(); ++g) {
    EXPECT_EQ(convenience[g].stuck0_observability, full.criticality[g].stuck0_observability);
    EXPECT_EQ(convenience[g].stuck1_observability, full.criticality[g].stuck1_observability);
  }
  EXPECT_TRUE(full.report.complete());
}

}  // namespace
}  // namespace lore
