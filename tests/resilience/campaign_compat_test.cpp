// The deprecated `Rng&`-drawing campaign overloads are thin wrappers that
// draw one u64 for the spec's base seed. This is the one place in the repo
// allowed to call them: it pins the wrapper behavior (bit-identical to the
// spec entry points) so out-of-tree callers can migrate mechanically.
#include <gtest/gtest.h>

#include "src/arch/fault.hpp"
#include "src/arch/pipeline.hpp"
#include "src/circuit/logicsim.hpp"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace lore {
namespace {

TEST(DeprecatedOverloads, FaultCampaignMatchesSpecEntryPoint) {
  const auto workload = arch::make_dot_product(12, 42);
  const arch::FaultInjector injector(workload);
  Rng legacy_rng(5);
  const auto legacy = injector.campaign(80, arch::FaultTarget::kRegister, legacy_rng);

  Rng seed_rng(5);
  const auto migrated =
      injector.campaign(80, arch::FaultTarget::kRegister, seed_rng.next_u64());
  EXPECT_EQ(legacy, migrated);
}

TEST(DeprecatedOverloads, PipelineCampaignMatchesSpecEntryPoint) {
  const auto workload = arch::make_dot_product(10, 7);
  Rng legacy_rng(9);
  const auto legacy = arch::pipeline_campaign(workload, 60, legacy_rng);

  Rng seed_rng(9);
  const auto migrated = arch::pipeline_campaign(workload, 60, seed_rng.next_u64());
  EXPECT_EQ(legacy, migrated);
}

TEST(DeprecatedOverloads, StuckAtCampaignMatchesSpecEntryPoint) {
  const auto lib = circuit::make_skeleton_library("tech");
  const auto nl = circuit::generate_random_logic(
      lib, circuit::RandomLogicConfig{.num_gates = 30, .seed = 3});
  Rng legacy_rng(4);
  const auto legacy = circuit::stuck_at_campaign(nl, 12, legacy_rng);

  Rng seed_rng(4);
  const auto migrated = circuit::stuck_at_campaign(
      nl, CampaignSpec{.trials = 12, .base_seed = seed_rng.next_u64(), .threads = 1});
  ASSERT_EQ(legacy.size(), migrated.size());
  for (std::size_t g = 0; g < legacy.size(); ++g) {
    EXPECT_EQ(legacy[g].stuck0_observability, migrated[g].stuck0_observability);
    EXPECT_EQ(legacy[g].stuck1_observability, migrated[g].stuck1_observability);
  }
}

}  // namespace
}  // namespace lore

#pragma GCC diagnostic pop
