// lore.fabric.v1 framing: roundtrips over a real socketpair, truncation
// mid-frame (a peer dying between the prefix and the body), oversized length
// prefixes, and the CampaignSpec JSON carrier.
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <thread>

#include "src/fabric/protocol.hpp"
#include "src/obs/netutil.hpp"

namespace {

using namespace lore;
using namespace lore::fabric;

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, &a), 0); }
  ~SocketPair() {
    obs::close_fd(a);
    obs::close_fd(b);
  }
};

TEST(FabricProtocol, FrameRoundtripsHeadAndBody) {
  SocketPair sp;
  Frame out = make_frame("result");
  out.head["shard"] = std::int64_t{7};
  out.body = std::string("\x00\x01payload\xff", 9);

  ASSERT_TRUE(send_frame(sp.a, out));
  const auto in = recv_frame(sp.b);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->type(), "result");
  EXPECT_EQ(in->head.at("shard").as_int(), 7);
  EXPECT_EQ(in->body, out.body);
}

TEST(FabricProtocol, EmptyBodyAndLargeBodyRoundtrip) {
  SocketPair sp;
  Frame small = make_frame("ready");
  ASSERT_TRUE(send_frame(sp.a, small));

  Frame big = make_frame("result");
  big.body.assign(1 << 18, 'x');  // larger than any socket buffer: exercises
                                  // the short-write loop in send_all
  std::thread sender([&] { EXPECT_TRUE(send_frame(sp.a, big)); });
  const auto in_small = recv_frame(sp.b);
  const auto in_big = recv_frame(sp.b);
  sender.join();
  ASSERT_TRUE(in_small && in_big);
  EXPECT_EQ(in_small->type(), "ready");
  EXPECT_EQ(in_big->body.size(), big.body.size());
  EXPECT_EQ(in_big->body, big.body);
}

TEST(FabricProtocol, TruncatedMidFrameIsConnectionLoss) {
  // Peer dies after the prefix but before the promised bytes arrive.
  SocketPair sp;
  Frame f = make_frame("result");
  f.body = "0123456789";
  // Manually send only the first half of the wire image.
  std::string wire;
  {
    SocketPair probe;
    ASSERT_TRUE(send_frame(probe.a, f));
    wire.resize(8 + f.head.dump().size() + f.body.size());
    ASSERT_TRUE(obs::recv_all(probe.b, wire.data(), wire.size()));
  }
  ASSERT_TRUE(obs::send_all(sp.a, wire.data(), wire.size() / 2));
  obs::close_fd(sp.a);
  sp.a = -1;
  EXPECT_FALSE(recv_frame(sp.b).has_value());
}

TEST(FabricProtocol, OversizedPrefixRejected) {
  SocketPair sp;
  unsigned char prefix[8] = {0};
  prefix[3] = 0xff;  // head_len with a high byte set: way past kMaxHeadBytes
  ASSERT_TRUE(obs::send_all(sp.a, prefix, sizeof prefix));
  EXPECT_FALSE(recv_frame(sp.b).has_value());
}

TEST(FabricProtocol, NonObjectHeadRejected) {
  SocketPair sp;
  const std::string head = "[1,2,3]";
  std::string wire;
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>(head.size() >> (8 * i)));
  wire.append(4, '\0');
  wire += head;
  ASSERT_TRUE(obs::send_all(sp.a, wire.data(), wire.size()));
  EXPECT_FALSE(recv_frame(sp.b).has_value());
}

TEST(FabricProtocol, SpecJsonRoundtripPreservesIdentity) {
  CampaignSpec spec;
  spec.trials = 12345;
  spec.base_seed = 0xdeadbeefcafe;
  spec.domain = "arch.fault/abc123";
  spec.threads = 3;
  spec.max_retries = 5;
  spec.retry_backoff = std::chrono::milliseconds(17);

  const CampaignSpec back = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(back.trials, spec.trials);
  EXPECT_EQ(back.base_seed, spec.base_seed);
  EXPECT_EQ(back.domain, spec.domain);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.max_retries, spec.max_retries);
  EXPECT_EQ(back.retry_backoff, spec.retry_backoff);
  EXPECT_EQ(back.identity_hash(), spec.identity_hash());
}

}  // namespace
