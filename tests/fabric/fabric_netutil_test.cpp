// Transport-layer boundary cases for the fabric's socket helpers: recv_all
// against every flavor of early EOF (0, 1, n-1 bytes delivered), send_all
// through kernel-buffer back-pressure (the short-write retry path), and
// recv_frame against truncated and oversized wire prefixes — the exact
// failure shapes a SIGKILLed worker leaves on the coordinator's sockets.
//
// All tests run over AF_UNIX socketpairs: no ports, no listeners, and a
// closed peer is visible immediately.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/fabric/protocol.hpp"
#include "src/obs/netutil.hpp"
#include "src/obs/span.hpp"

namespace {

using namespace lore;
using namespace lore::fabric;

struct Pair {
  int a = -1, b = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    obs::close_fd(a);
    obs::close_fd(b);
  }
};

void put_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// Wire bytes of a valid frame with the given head JSON and body.
std::string wire_frame(const std::string& head, const std::string& body) {
  std::string wire;
  put_u32_le(wire, static_cast<std::uint32_t>(head.size()));
  put_u32_le(wire, static_cast<std::uint32_t>(body.size()));
  wire += head;
  wire += body;
  return wire;
}

TEST(FabricNetutil, RecvAllAssemblesFragmentedDelivery) {
  Pair p;
  const std::string msg = "the quick brown fox jumps over the lazy worker";
  std::thread sender([&] {
    // Drip the payload a byte at a time: every recv on the other side is a
    // partial read.
    for (const char c : msg) {
      ASSERT_TRUE(obs::send_all(p.a, &c, 1));
      std::this_thread::yield();
    }
  });
  std::string got(msg.size(), '\0');
  EXPECT_TRUE(obs::recv_all(p.b, got.data(), got.size()));
  EXPECT_EQ(got, msg);
  sender.join();
}

TEST(FabricNetutil, RecvAllFailsOnEarlyEofAtEveryBoundary) {
  const std::size_t n = 64;
  for (const std::size_t delivered : {std::size_t{0}, std::size_t{1}, n - 1}) {
    Pair p;
    const std::string partial(delivered, 'x');
    if (delivered) {
      ASSERT_TRUE(obs::send_all(p.a, partial.data(), delivered));
    }
    obs::close_fd(p.a);
    p.a = -1;
    std::vector<char> buf(n);
    EXPECT_FALSE(obs::recv_all(p.b, buf.data(), n)) << delivered << " bytes then EOF";
  }
  // Exactly n bytes then EOF is NOT an error.
  Pair p;
  const std::string full(n, 'x');
  ASSERT_TRUE(obs::send_all(p.a, full.data(), n));
  obs::close_fd(p.a);
  p.a = -1;
  std::vector<char> buf(n);
  EXPECT_TRUE(obs::recv_all(p.b, buf.data(), n));
}

TEST(FabricNetutil, SendAllSurvivesKernelBufferBackPressure) {
  Pair p;
  // Well past any default AF_UNIX buffer, so send(2) must block/short-write
  // and send_all must loop.
  const std::size_t n = 4u << 20;
  std::vector<char> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<char>(i * 131u);
  std::vector<char> in(n);
  std::thread reader([&] { EXPECT_TRUE(obs::recv_all(p.b, in.data(), n)); });
  EXPECT_TRUE(obs::send_all(p.a, out.data(), n));
  reader.join();
  EXPECT_EQ(std::memcmp(out.data(), in.data(), n), 0);
}

TEST(FabricNetutil, SendAllFailsOnClosedPeerWithoutSigpipe) {
  Pair p;
  obs::close_fd(p.b);
  p.b = -1;
  // Large enough to overrun any buffering of the dead socket; MSG_NOSIGNAL
  // means this must come back as `false`, not kill the process.
  std::vector<char> out(1u << 20, 'x');
  EXPECT_FALSE(obs::send_all(p.a, out.data(), out.size()));
}

TEST(FabricNetutil, RecvFrameRejectsTruncatedPrefixAndHeadAndBody) {
  const std::string wire = wire_frame("{\"type\":\"ready\"}", "abc");
  // Cut the wire at every interesting boundary: nothing, a partial prefix,
  // exactly the prefix, a partial head, full head but a partial body.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{12}, wire.size() - 1}) {
    Pair p;
    ASSERT_TRUE(obs::send_all(p.a, wire.data(), cut));
    obs::close_fd(p.a);
    p.a = -1;
    EXPECT_FALSE(recv_frame(p.b).has_value()) << "cut at " << cut;
  }
  // The uncut wire decodes.
  Pair p;
  ASSERT_TRUE(obs::send_all(p.a, wire.data(), wire.size()));
  const auto f = recv_frame(p.b);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type(), "ready");
  EXPECT_EQ(std::string(f->body.begin(), f->body.end()), "abc");
}

TEST(FabricNetutil, RecvFrameRejectsOversizedLengthPrefixes) {
  // head_len / body_len one past the cap must be rejected from the prefix
  // alone — no attempt to allocate or read a poisoned length.
  for (const bool oversize_body : {false, true}) {
    Pair p;
    std::string prefix;
    put_u32_le(prefix, oversize_body ? 2u : kMaxHeadBytes + 1);
    put_u32_le(prefix, oversize_body ? kMaxBodyBytes + 1 : 0u);
    ASSERT_TRUE(obs::send_all(p.a, prefix.data(), prefix.size()));
    obs::close_fd(p.a);
    p.a = -1;
    EXPECT_FALSE(recv_frame(p.b).has_value());
  }
}

TEST(FabricNetutil, RecvFrameAcceptsHeadAtExactlyTheCap) {
  // A head of exactly kMaxHeadBytes is legal: pad a valid JSON object with
  // trailing spaces up to the cap.
  std::string head = "{\"type\":\"ready\"}";
  head.resize(kMaxHeadBytes, ' ');
  const std::string wire = wire_frame(head, "");
  Pair p;
  std::thread sender([&] { EXPECT_TRUE(obs::send_all(p.a, wire.data(), wire.size())); });
  const auto f = recv_frame(p.b);
  sender.join();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type(), "ready");
}

TEST(FabricNetutil, RecvFrameRejectsMalformedHeadJson) {
  for (const std::string& head : {std::string("{\"type\":"), std::string("[1,2]"),
                                  std::string("")}) {
    Pair p;
    const std::string wire = wire_frame(head, "");
    ASSERT_TRUE(obs::send_all(p.a, wire.data(), wire.size()));
    EXPECT_FALSE(recv_frame(p.b).has_value()) << "head: " << head;
  }
}

TEST(FabricNetutil, TraceEventsFromJsonToleratesMalformedEntries) {
  const obs::TraceId trace = obs::make_trace_id();
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json("not an object"));
  obs::Json no_name = obs::Json::object();
  no_name["ts"] = 1.0;
  no_name["dur"] = 2.0;
  no_name["span"] = std::string("00000000000000aa");
  arr.push_back(std::move(no_name));
  obs::Json bad_ts = obs::Json::object();
  bad_ts["name"] = std::string("x");
  bad_ts["ts"] = std::string("soon");
  bad_ts["dur"] = 2.0;
  bad_ts["span"] = std::string("00000000000000aa");
  arr.push_back(std::move(bad_ts));
  obs::Json zero_span = obs::Json::object();
  zero_span["name"] = std::string("x");
  zero_span["ts"] = 1.0;
  zero_span["dur"] = 2.0;
  zero_span["span"] = std::string("0000000000000000");
  arr.push_back(std::move(zero_span));
  obs::Json good = obs::Json::object();
  good["name"] = std::string("fabric.shard/3");
  good["ts"] = 10.0;
  good["dur"] = 5.0;
  good["span"] = std::string("00000000000000ab");
  good["parent"] = std::string("00000000000000ac");
  arr.push_back(std::move(good));

  const auto events = trace_events_from_json(arr, trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "fabric.shard/3");
  EXPECT_EQ(events[0].span, 0xabu);
  EXPECT_EQ(events[0].parent, 0xacu);
  EXPECT_TRUE(events[0].trace == trace);
}

TEST(FabricNetutil, TraceEventsToJsonKeepsNewestUnderCap) {
  std::vector<obs::TraceEvent> events(kMaxSpanBatch + 5);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].name = "s" + std::to_string(i);
    events[i].span = i + 1;
  }
  const obs::Json arr = trace_events_to_json(events);
  ASSERT_EQ(arr.items().size(), kMaxSpanBatch);
  // The oldest 5 were dropped; the newest (the shard span, recorded last)
  // survives.
  EXPECT_EQ(arr.items().front().at("name").as_string(), "s5");
  EXPECT_EQ(arr.items().back().at("name").as_string(),
            "s" + std::to_string(events.size() - 1));
}

}  // namespace
