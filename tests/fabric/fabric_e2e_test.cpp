// End-to-end fabric runs: real coordinator + forked worker processes, with
// the merged result asserted bit-identical to the single-process reference at
// every worker count — including through a corrupt-payload retry, a
// stolen-then-completed straggler's duplicate delivery, and a SIGKILLed
// worker whose shards are re-dispatched.
//
// Fork discipline: workers are forked between Coordinator::bind() and
// serve(), while this process is still single-threaded — the reason that
// lifecycle is split. The fake-worker tests don't fork at all; they speak
// the protocol over a client socket from the test thread.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/arch/fault.hpp"
#include "src/arch/pipeline.hpp"
#include "src/fabric/coordinator.hpp"
#include "src/fabric/protocol.hpp"
#include "src/fabric/runners.hpp"
#include "src/fabric/spawn.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/netutil.hpp"

namespace {

using namespace lore;
using namespace lore::fabric;

obs::Json fault_params() {
  obs::Json p = obs::Json::object();
  p["workload"] = "dot_product";
  p["scale"] = std::int64_t{16};
  p["wseed"] = std::int64_t{7};
  p["target"] = "register";
  return p;
}

CampaignSpec base_spec(std::size_t trials) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 42;
  spec.threads = 1;
  return spec;
}

std::vector<arch::FaultRecord> fleet_run(const std::string& kind,
                                         const obs::Json& params,
                                         const CampaignSpec& resolved,
                                         unsigned workers,
                                         FleetSnapshot* snap_out = nullptr) {
  CoordinatorConfig cfg;
  cfg.expected_workers = workers;
  Coordinator coord;
  if (!coord.bind(cfg)) return {};

  std::vector<pid_t> kids;
  for (unsigned i = 0; i < workers; ++i)
    kids.push_back(fork_local_worker(coord.port(), {}, coord.listen_fd()));

  coord.serve({kind, params, resolved});
  coord.wait();
  if (snap_out) *snap_out = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  for (const pid_t pid : kids) wait_worker(pid);

  const auto result = records_from_checkpoint(kind, resolved, merged);
  return result ? result->records : std::vector<arch::FaultRecord>{};
}

TEST(FabricE2E, FaultCampaignBitIdenticalAt1_2_4Workers) {
  const obs::Json params = fault_params();
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(300));
  ASSERT_TRUE(resolved.has_value());

  const auto w = workload_from_params(params);
  const arch::FaultInjector inj(*w);
  const auto reference =
      inj.campaign_run(base_spec(300), arch::FaultTarget::kRegister).records;
  ASSERT_EQ(reference.size(), 300u);

  for (const unsigned workers : {1u, 2u, 4u}) {
    const auto records = fleet_run("arch.fault", params, *resolved, workers);
    EXPECT_EQ(records, reference) << workers << " workers";
  }
}

TEST(FabricE2E, PipelineCampaignBitIdenticalAt2Workers) {
  obs::Json params = obs::Json::object();
  params["workload"] = "checksum";
  params["scale"] = std::int64_t{12};
  params["wseed"] = std::int64_t{7};
  const auto resolved = resolve_job_spec("arch.pipeline", params, base_spec(200));
  ASSERT_TRUE(resolved.has_value());

  const auto w = workload_from_params(params);
  const auto reference = arch::pipeline_campaign_run(*w, base_spec(200)).records;

  const auto records = fleet_run("arch.pipeline", params, *resolved, 2);
  EXPECT_EQ(records, reference);
}

TEST(FabricE2E, KilledWorkerShardsAreRedispatched) {
  // Heavier campaign so worker A is still mid-run when SIGKILLed; worker B
  // must pick up every shard A abandoned and the merge must still be exact.
  obs::Json params = fault_params();
  params["workload"] = "matmul";
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(3000));
  ASSERT_TRUE(resolved.has_value());

  CoordinatorConfig cfg;
  cfg.expected_workers = 2;
  cfg.shard_count = 12;
  Coordinator coord;
  ASSERT_TRUE(coord.bind(cfg));

  const pid_t victim = fork_local_worker(coord.port(), {}, coord.listen_fd());
  const pid_t survivor = fork_local_worker(coord.port(), {}, coord.listen_fd());

  coord.serve({"arch.fault", params, *resolved});
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  kill_worker(victim);  // SIGKILL mid-campaign; its held shard is abandoned

  ASSERT_TRUE(coord.wait(std::chrono::minutes(2)));
  const FleetSnapshot snap = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  wait_worker(survivor);

  EXPECT_EQ(snap.workers_seen, 2u);
  const auto result = records_from_checkpoint("arch.fault", *resolved, merged);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->report.completed, 3000u);

  const auto w = workload_from_params(params);
  const arch::FaultInjector inj(*w);
  EXPECT_EQ(result->records,
            inj.campaign_run(base_spec(3000), arch::FaultTarget::kRegister).records);
}

// ---------------------------------------------------------------------------
// Fake-worker tests: the test thread IS the worker, so every protocol step is
// deterministic.

struct FakeWorker {
  int fd = -1;
  explicit FakeWorker(std::uint16_t port) {
    fd = obs::connect_tcp("127.0.0.1", port);
    EXPECT_GE(fd, 0);
    Frame hello = make_frame("hello");
    hello.head["schema"] = kSchema;
    hello.head["worker"] = "fake";
    hello.head["pid"] = std::int64_t{0};
    hello.head["metrics_port"] = std::int64_t{-1};
    EXPECT_TRUE(send_frame(fd, hello));
  }
  ~FakeWorker() { obs::close_fd(fd); }

  std::optional<Frame> recv() { return recv_frame(fd); }
  bool send(const Frame& f) { return send_frame(fd, f); }
};

CampaignCheckpoint compute_assign(const arch::FaultInjector& inj, const Frame& assign) {
  const CampaignSpec spec = spec_from_json(assign.head.at("spec"));
  const TrialRange range{
      static_cast<std::size_t>(assign.head.at("begin").as_int()),
      static_cast<std::size_t>(assign.head.at("end").as_int())};
  return inj.campaign_shard(spec, range, arch::FaultTarget::kRegister);
}

TEST(FabricE2E, CorruptResultIsRejectedAndShardRetried) {
  const obs::Json params = fault_params();
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(100));
  ASSERT_TRUE(resolved.has_value());
  const auto w = workload_from_params(params);
  const arch::FaultInjector inj(*w);

  CoordinatorConfig cfg;
  cfg.shard_count = 1;
  cfg.steal_after = std::chrono::minutes(10);
  Coordinator coord;
  ASSERT_TRUE(coord.bind(cfg));
  coord.serve({"arch.fault", params, *resolved});

  FakeWorker fake(coord.port());
  auto assign = fake.recv();
  ASSERT_TRUE(assign && assign->type() == "assign");

  // Deliver a CRC-torn payload: the coordinator must reject it, abandon the
  // shard, and hand the SAME shard right back on the next exchange.
  Frame bad = make_frame("result");
  bad.head["shard"] = assign->head.at("shard").as_int();
  bad.body = encode_checkpoint(compute_assign(inj, *assign));
  bad.body[bad.body.size() / 2] ^= 0x20;
  testing::internal::CaptureStderr();  // swallow the expected CRC warning
  ASSERT_TRUE(fake.send(bad));

  auto retry = fake.recv();
  testing::internal::GetCapturedStderr();
  ASSERT_TRUE(retry && retry->type() == "assign");
  EXPECT_EQ(retry->head.at("shard").as_int(), assign->head.at("shard").as_int());

  Frame good = make_frame("result");
  good.head["shard"] = retry->head.at("shard").as_int();
  good.body = encode_checkpoint(compute_assign(inj, *retry));
  ASSERT_TRUE(fake.send(good));
  auto done = fake.recv();
  ASSERT_TRUE(done && done->type() == "shutdown");

  ASSERT_TRUE(coord.wait(std::chrono::minutes(1)));
  const FleetSnapshot snap = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  EXPECT_EQ(snap.payload_rejects, 1u);

  const auto result = records_from_checkpoint("arch.fault", *resolved, merged);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records,
            inj.campaign_run(base_spec(100), arch::FaultTarget::kRegister).records);
}

TEST(FabricE2E, StolenThenCompletedStragglerDuplicatesDiscarded) {
  const obs::Json params = fault_params();
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(100));
  ASSERT_TRUE(resolved.has_value());
  const auto w = workload_from_params(params);
  const arch::FaultInjector inj(*w);

  CoordinatorConfig cfg;
  cfg.shard_count = 2;
  cfg.steal_after = std::chrono::milliseconds(0);  // everything is a straggler
  Coordinator coord;
  ASSERT_TRUE(coord.bind(cfg));
  coord.serve({"arch.fault", params, *resolved});

  FakeWorker slow(coord.port());
  auto slow_assign = slow.recv();
  ASSERT_TRUE(slow_assign && slow_assign->type() == "assign");
  const std::int64_t contested = slow_assign->head.at("shard").as_int();

  FakeWorker fast(coord.port());
  auto fast_assign = fast.recv();
  ASSERT_TRUE(fast_assign && fast_assign->type() == "assign");
  EXPECT_NE(fast_assign->head.at("shard").as_int(), contested);

  // Fast worker finishes its own shard, then STEALS the slow worker's.
  Frame r1 = make_frame("result");
  r1.head["shard"] = fast_assign->head.at("shard").as_int();
  r1.body = encode_checkpoint(compute_assign(inj, *fast_assign));
  ASSERT_TRUE(fast.send(r1));
  auto stolen = fast.recv();
  ASSERT_TRUE(stolen && stolen->type() == "assign");
  EXPECT_EQ(stolen->head.at("shard").as_int(), contested);

  Frame r2 = make_frame("result");
  r2.head["shard"] = contested;
  r2.body = encode_checkpoint(compute_assign(inj, *stolen));
  ASSERT_TRUE(fast.send(r2));
  auto fast_done = fast.recv();
  ASSERT_TRUE(fast_done && fast_done->type() == "shutdown");

  // The slow worker NOW delivers the contested shard a second time: a valid
  // payload whose every trial is already merged — discarded as duplicates.
  Frame late = make_frame("result");
  late.head["shard"] = contested;
  late.body = encode_checkpoint(compute_assign(inj, *slow_assign));
  ASSERT_TRUE(slow.send(late));
  auto slow_done = slow.recv();
  ASSERT_TRUE(slow_done && slow_done->type() == "shutdown");

  ASSERT_TRUE(coord.wait(std::chrono::minutes(1)));
  const FleetSnapshot snap = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  EXPECT_EQ(snap.steals, 1u);
  EXPECT_EQ(snap.duplicates_discarded, 50u);  // the whole contested shard
  EXPECT_EQ(snap.payload_rejects, 0u);

  const auto result = records_from_checkpoint("arch.fault", *resolved, merged);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->report.completed, 100u);
  EXPECT_EQ(result->records,
            inj.campaign_run(base_spec(100), arch::FaultTarget::kRegister).records);
}

TEST(FabricE2E, FleetGaugesPublished) {
  const obs::Json params = fault_params();
  const auto resolved = resolve_job_spec("arch.fault", params, base_spec(60));
  ASSERT_TRUE(resolved.has_value());
  const auto records = fleet_run("arch.fault", params, *resolved, 2);
  EXPECT_EQ(records.size(), 60u);

  const auto snap = obs::MetricsRegistry::global().snapshot();
  double done = -1, total = -1;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "fleet.trials_done") done = v;
    if (name == "fleet.trials_total") total = v;
  }
  EXPECT_EQ(done, 60.0);
  EXPECT_EQ(total, 60.0);
}

}  // namespace
