// Shard partitioning, the work-stealing shard table, checkpoint-payload
// merge semantics (overlaps, duplicates), and the decode_checkpoint
// diagnostics — including the identity-mismatch message carrying BOTH the
// expected and found hashes plus the payload's build tag.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/fabric/shard.hpp"

namespace {

using namespace lore;
using namespace lore::fabric;

TEST(ShardRanges, PartitionCoversExactlyOnce) {
  for (const std::size_t trials : {0u, 1u, 7u, 100u, 101u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u, 200u}) {
      const auto ranges = shard_trial_ranges(trials, shards);
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (const auto& r : ranges) {
        EXPECT_EQ(r.begin, prev_end);  // contiguous, in order
        EXPECT_GT(r.end, r.begin);     // no empty shards
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, trials);
      if (trials > 0) EXPECT_EQ(ranges.size(), std::min(trials, shards));
    }
  }
}

TEST(ShardRanges, NearEqualSplit) {
  const auto ranges = shard_trial_ranges(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  // 10 = 3 + 3 + 2 + 2: first trials%shards ranges are one longer.
  EXPECT_EQ(ranges[0].size(), 3u);
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 2u);
  EXPECT_EQ(ranges[3].size(), 2u);
}

TEST(ShardTable, PendingFirstThenStealsOldestStraggler) {
  using namespace std::chrono;
  ShardTable table(100, 3);
  const auto t0 = ShardTable::Clock::now();

  const auto a = table.acquire(t0, milliseconds(50));
  const auto b = table.acquire(t0 + milliseconds(10), milliseconds(50));
  const auto c = table.acquire(t0 + milliseconds(20), milliseconds(50));
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(table.inflight(), 3u);

  // Nothing stealable yet: every dispatch is younger than steal_after.
  EXPECT_FALSE(table.acquire(t0 + milliseconds(30), milliseconds(50)).has_value());

  // Past the deadline the OLDEST dispatch (shard a) is re-dispatched.
  const auto stolen = table.acquire(t0 + milliseconds(100), milliseconds(50));
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, *a);
  EXPECT_EQ(table.steals(), 1u);
  EXPECT_EQ(table.info(*a).holders, 2u);

  // First completion wins; the loser abandoning afterwards must not revive it.
  table.complete(*stolen);
  EXPECT_EQ(table.done(), 1u);
  table.abandon(*a);
  EXPECT_EQ(table.done(), 1u);
  EXPECT_EQ(table.info(*a).state, ShardState::kDone);
}

TEST(ShardTable, AbandonReturnsToPendingOnlyWhenLastHolderDrops) {
  using namespace std::chrono;
  ShardTable table(10, 1);
  const auto t0 = ShardTable::Clock::now();
  const auto s = table.acquire(t0, milliseconds(0));
  ASSERT_TRUE(s);
  // steal_after = 0: the same shard is immediately re-dispatchable.
  const auto s2 = table.acquire(t0 + milliseconds(1), milliseconds(0));
  ASSERT_TRUE(s2);
  EXPECT_EQ(*s2, *s);
  EXPECT_EQ(table.info(*s).holders, 2u);

  table.abandon(*s);
  EXPECT_EQ(table.info(*s).state, ShardState::kInflight);  // one holder left
  table.abandon(*s);
  EXPECT_EQ(table.info(*s).state, ShardState::kPending);   // back in play
}

class MergeFixture : public ::testing::Test {
 protected:
  MergeFixture()
      : workload_(arch::make_dot_product(16, 7)), injector_(workload_) {
    CampaignSpec base;
    base.trials = 100;
    base.base_seed = 42;
    base.threads = 1;
    spec_ = injector_.resolved_spec(base, arch::FaultTarget::kRegister);
    reference_ = injector_.campaign_run(spec_, arch::FaultTarget::kRegister).records;
  }

  CampaignCheckpoint shard(std::size_t begin, std::size_t end) {
    return injector_.campaign_shard(spec_, {begin, end}, arch::FaultTarget::kRegister);
  }

  arch::Workload workload_;
  arch::FaultInjector injector_;
  CampaignSpec spec_;
  std::vector<arch::FaultRecord> reference_;
};

TEST_F(MergeFixture, OverlappingShardsMergeBitIdentical) {
  // Ranges [0,60) and [40,100) overlap on [40,60): merge must keep each
  // trial exactly once and reproduce the single-process records.
  CampaignCheckpoint merged = shard(0, 60);
  const CampaignCheckpoint other = shard(40, 100);

  std::vector<std::uint8_t> seen(spec_.trials, 0);
  for (const auto& e : merged.entries) seen[e.trial] = 1;
  const std::size_t fresh = merge_checkpoint_entries(merged, other, seen);
  EXPECT_EQ(fresh, 40u);                    // 20 of other's 60 were duplicates
  EXPECT_EQ(merged.entries.size(), 100u);

  const auto result =
      arch::FaultInjector::records_from_checkpoint(spec_, merged);
  EXPECT_EQ(result.report.completed, 100u);
  EXPECT_EQ(result.records, reference_);
}

TEST_F(MergeFixture, DuplicateShardFromStolenStragglerIsDiscarded) {
  CampaignCheckpoint merged = shard(0, 100);
  std::vector<std::uint8_t> seen(spec_.trials, 0);
  for (const auto& e : merged.entries) seen[e.trial] = 1;

  // A stolen-then-completed straggler delivers the same range again.
  const std::size_t fresh = merge_checkpoint_entries(merged, shard(30, 70), seen);
  EXPECT_EQ(fresh, 0u);
  EXPECT_EQ(merged.entries.size(), 100u);
  EXPECT_EQ(arch::FaultInjector::records_from_checkpoint(spec_, merged).records,
            reference_);
}

TEST_F(MergeFixture, EncodeDecodeRoundtrip) {
  const CampaignCheckpoint ck = shard(10, 30);
  const auto back = decode_checkpoint(encode_checkpoint(ck), spec_, "roundtrip");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->identity, ck.identity);
  EXPECT_EQ(back->trials, ck.trials);
  ASSERT_EQ(back->entries.size(), ck.entries.size());
  for (std::size_t i = 0; i < ck.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].trial, ck.entries[i].trial);
    EXPECT_EQ(back->entries[i].payload, ck.entries[i].payload);
  }
}

TEST_F(MergeFixture, CorruptPayloadRejectedWithDiagnostic) {
  std::string wire = encode_checkpoint(shard(0, 20));
  wire[wire.size() / 2] ^= 0x40;  // torn mid-payload

  testing::internal::CaptureStderr();
  const auto back = decode_checkpoint(wire, spec_, "shard 0 from w1");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(back.has_value());
  EXPECT_NE(err.find("shard 0 from w1"), std::string::npos) << err;
  EXPECT_NE(err.find("CRC mismatch"), std::string::npos) << err;
}

TEST_F(MergeFixture, TruncatedPayloadRejected) {
  std::string wire = encode_checkpoint(shard(0, 20));
  wire.resize(wire.size() / 3);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(decode_checkpoint(wire, spec_, "truncated").has_value());
  testing::internal::GetCapturedStderr();
}

TEST_F(MergeFixture, IdentityMismatchMessageNamesBothHashes) {
  // A payload from a DIFFERENT campaign (other base_seed): the warning must
  // name the expected hash, the found hash, and the payload's build tag —
  // enough to debug a mis-wired fleet from the log line alone.
  CampaignSpec other = spec_;
  other.base_seed = spec_.base_seed + 1;
  const CampaignCheckpoint foreign =
      injector_.campaign_shard(other, {0, 5}, arch::FaultTarget::kRegister);

  testing::internal::CaptureStderr();
  const auto back = decode_checkpoint(encode_checkpoint(foreign), spec_, "shard 3");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(back.has_value());

  char expected_hex[32], found_hex[32];
  std::snprintf(expected_hex, sizeof expected_hex, "%016llx",
                static_cast<unsigned long long>(spec_.identity_hash()));
  std::snprintf(found_hex, sizeof found_hex, "%016llx",
                static_cast<unsigned long long>(other.identity_hash()));
  EXPECT_NE(err.find("identity mismatch"), std::string::npos) << err;
  EXPECT_NE(err.find(expected_hex), std::string::npos) << err;
  EXPECT_NE(err.find(found_hex), std::string::npos) << err;
  EXPECT_NE(err.find(checkpoint_build_tag()), std::string::npos) << err;
}

TEST_F(MergeFixture, TrialCountMismatchMessageNamesBothCounts) {
  CampaignSpec other = spec_;
  other.trials = 50;  // same identity fields except trials
  // trials is part of identity, so fix identity manually to isolate the
  // trial-count check: encode a checkpoint claiming the right identity but
  // the wrong total.
  CampaignCheckpoint ck = shard(0, 5);
  ck.trials = 50;
  testing::internal::CaptureStderr();
  EXPECT_FALSE(decode_checkpoint(encode_checkpoint(ck), spec_, "src").has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("trial count mismatch"), std::string::npos) << err;
  EXPECT_NE(err.find("100"), std::string::npos) << err;
  EXPECT_NE(err.find("50"), std::string::npos) << err;
}

}  // namespace
