// lore_fabric — drive a sharded multi-process fault-injection campaign
// (DESIGN.md §12). One binary plays both roles:
//
//   coordinator (default): bind, fork N local workers, dispatch shards,
//     merge, report the outcome mix. `--verify` additionally runs the same
//     campaign single-process and diffs the records (exit 1 on mismatch —
//     the fabric's bit-identity contract, checked end to end).
//   worker (`--worker --connect HOST:PORT`): join a coordinator somewhere
//     else; lets a fleet span machines or pre-started containers.
//
//   lore_fabric --campaign arch.fault --workload dot_product --scale 24
//               --trials 2000 --workers 4 --verify
//   lore_fabric --worker --connect 127.0.0.1:7070 --metrics-port 0
//
// `--serve PORT` exposes the coordinator's own /metrics (fleet.* gauges) for
// `scripts/lore_top.py --fleet`.
//
// Tracing: with LORE_TRACE=file (or --verify, which force-enables the
// recorder) the run opens a root span, every shard on every worker becomes a
// child span of it, and the merged Chrome trace lands in LORE_TRACE.
// `--verify` also checks the merged parentage. `--flight-dir DIR` gives each
// worker a crash-safe flight ring under DIR; `--chaos-kill MS` SIGKILLs the
// first worker after MS — together they exercise the post-mortem path
// (scripts/lore_postmortem.py on the dead worker's ring).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/pipeline.hpp"
#include "src/fabric/coordinator.hpp"
#include "src/fabric/runners.hpp"
#include "src/fabric/spawn.hpp"
#include "src/fabric/worker.hpp"
#include "src/obs/obs.hpp"

namespace {

struct Options {
  std::string campaign = "arch.fault";
  std::string workload = "dot_product";
  long scale = 24;
  long wseed = 7;
  std::string target = "register";
  long trials = 1000;
  long seed = 42;
  long workers = 2;
  long threads = 1;
  long shards = 0;
  long steal_ms = 3000;
  long serve_port = -1;
  bool verify = false;
  bool worker_mode = false;
  std::string connect;
  long metrics_port = 0;
  long chaos_kill_ms = -1;  // >= 0: SIGKILL the first worker after this delay
  std::string flight_dir;   // non-empty: workers write flight rings here
};

[[noreturn]] void usage(int rc) {
  std::fputs(
      "usage: lore_fabric [--campaign arch.fault|arch.pipeline] [--workload NAME]\n"
      "                   [--scale N] [--wseed S] [--target register|memory|instruction]\n"
      "                   [--trials N] [--seed S] [--workers K] [--threads T]\n"
      "                   [--shards M] [--steal-ms MS] [--serve PORT] [--verify]\n"
      "                   [--flight-dir DIR] [--chaos-kill MS]\n"
      "       lore_fabric --worker --connect HOST:PORT [--threads T] [--metrics-port P]\n",
      rc == 0 ? stdout : stderr);
  std::exit(rc);
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--campaign") o.campaign = next(i);
    else if (a == "--workload") o.workload = next(i);
    else if (a == "--scale") o.scale = std::atol(next(i));
    else if (a == "--wseed") o.wseed = std::atol(next(i));
    else if (a == "--target") o.target = next(i);
    else if (a == "--trials") o.trials = std::atol(next(i));
    else if (a == "--seed") o.seed = std::atol(next(i));
    else if (a == "--workers") o.workers = std::atol(next(i));
    else if (a == "--threads") o.threads = std::atol(next(i));
    else if (a == "--shards") o.shards = std::atol(next(i));
    else if (a == "--steal-ms") o.steal_ms = std::atol(next(i));
    else if (a == "--serve") o.serve_port = std::atol(next(i));
    else if (a == "--verify") o.verify = true;
    else if (a == "--worker") o.worker_mode = true;
    else if (a == "--connect") o.connect = next(i);
    else if (a == "--metrics-port") o.metrics_port = std::atol(next(i));
    else if (a == "--chaos-kill") o.chaos_kill_ms = std::atol(next(i));
    else if (a == "--flight-dir") o.flight_dir = next(i);
    else if (a == "--help" || a == "-h") usage(0);
    else usage(2);
  }
  return o;
}

int run_standalone_worker(const Options& o) {
  const auto colon = o.connect.rfind(':');
  if (colon == std::string::npos) usage(2);
  lore::fabric::WorkerConfig cfg;
  cfg.host = o.connect.substr(0, colon);
  cfg.port = static_cast<std::uint16_t>(std::atoi(o.connect.c_str() + colon + 1));
  cfg.threads = static_cast<unsigned>(o.threads);
  cfg.metrics_port = static_cast<int>(o.metrics_port);
  return lore::fabric::run_worker(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  lore::fabric::maybe_run_worker_from_env();
  const Options o = parse(argc, argv);
  if (o.worker_mode) {
    if (o.connect.empty()) usage(2);
    return run_standalone_worker(o);
  }

  using namespace lore;

  obs::Json params = obs::Json::object();
  params["workload"] = o.workload;
  params["scale"] = static_cast<std::int64_t>(o.scale);
  params["wseed"] = static_cast<std::int64_t>(o.wseed);
  if (o.campaign == "arch.fault") params["target"] = o.target;

  CampaignSpec base;
  base.trials = static_cast<std::size_t>(o.trials);
  base.base_seed = static_cast<std::uint64_t>(o.seed);
  base.threads = static_cast<unsigned>(o.threads);

  const auto spec = fabric::resolve_job_spec(o.campaign, params, base);
  if (!spec) {
    std::fprintf(stderr, "lore_fabric: cannot resolve campaign %s / workload %s\n",
                 o.campaign.c_str(), o.workload.c_str());
    return 2;
  }

  fabric::CoordinatorConfig cfg;
  cfg.expected_workers = static_cast<unsigned>(o.workers);
  cfg.shard_count = static_cast<std::size_t>(o.shards);
  cfg.steal_after = std::chrono::milliseconds(o.steal_ms);
  fabric::Coordinator coord;
  if (!coord.bind(cfg)) {
    std::fprintf(stderr, "lore_fabric: cannot bind coordinator socket\n");
    return 1;
  }
  std::printf("coordinator on %s:%u, %ld workers x %ld threads, %ld trials\n",
              cfg.bind_address.c_str(), coord.port(), o.workers, o.threads, o.trials);

  // Fleet trace root. --verify force-enables the recorder so the merged
  // parentage check below always has material; otherwise tracing is on iff
  // LORE_TRACE already enabled it.
  auto& recorder = obs::TraceRecorder::global();
  if (o.verify) recorder.set_enabled(true);
  const bool tracing = recorder.recording();
  std::optional<obs::TraceContextScope> root_scope;
  std::optional<obs::Span> root_span;
  if (tracing) {
    root_scope.emplace(obs::TraceContext{obs::make_trace_id(), 0});
    root_span.emplace("fabric.fleet", "fabric");
  }

  // Workers inherit LORE_FLIGHT_DIR through fork and open
  // DIR/flight-<pid>.ring on startup (worker.cpp).
  if (!o.flight_dir.empty()) ::setenv("LORE_FLIGHT_DIR", o.flight_dir.c_str(), 1);

  // Fork while still single-threaded — serve() is what spawns threads.
  std::vector<pid_t> kids;
  fabric::SpawnOptions sopts;
  sopts.threads = static_cast<unsigned>(o.threads);
  for (long i = 0; i < o.workers; ++i)
    kids.push_back(fabric::fork_local_worker(coord.port(), sopts, coord.listen_fd()));

  // Fleet telemetry (post-fork: the pipeline owns threads).
  obs::Pipeline pipeline;
  if (o.serve_port >= 0) {
    obs::PipelineConfig pc;
    pc.port = static_cast<int>(o.serve_port);
    if (pipeline.start(pc) && pipeline.server())
      std::printf("fleet metrics on http://127.0.0.1:%u/metrics\n",
                  pipeline.server()->port());
  }

  fabric::FabricJob job{o.campaign, params, *spec};
  coord.serve(job);

  // Chaos: SIGKILL the first worker mid-campaign. Its inflight shard is
  // re-dispatched (first-result-wins) and its flight ring is collected.
  std::thread chaos;
  if (o.chaos_kill_ms >= 0 && !kids.empty()) {
    chaos = std::thread([&kids, ms = o.chaos_kill_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      fabric::kill_worker(kids.front());
      std::printf("chaos: killed worker pid=%d\n", static_cast<int>(kids.front()));
    });
  }

  coord.wait();
  if (chaos.joinable()) chaos.join();
  const auto snap = coord.snapshot();
  const CampaignCheckpoint merged = coord.finish();
  // kids[0] was already reaped by kill_worker when chaos fired.
  for (std::size_t i = o.chaos_kill_ms >= 0 ? 1 : 0; i < kids.size(); ++i)
    fabric::wait_worker(kids[i]);

  const auto result = fabric::records_from_checkpoint(o.campaign, *spec, merged);
  if (!result) {
    std::fprintf(stderr, "lore_fabric: merged checkpoint failed to decode\n");
    return 1;
  }
  const arch::OutcomeMix mix = arch::summarize(result->records);
  std::printf(
      "\ncampaign %s/%s: %zu trials  benign=%zu sdc=%zu crash=%zu hang=%zu  "
      "avf=%.4f\n",
      o.campaign.c_str(), o.workload.c_str(), result->records.size(), mix.benign,
      mix.sdc, mix.crash, mix.hang, arch::avf(result->records));
  std::printf(
      "fleet: workers=%zu shards=%zu done=%zu steals=%zu dup_discarded=%zu "
      "rejects=%zu\n",
      snap.workers_seen, snap.shards_pending + snap.shards_inflight + snap.shards_done,
      snap.shards_done, snap.steals, snap.duplicates_discarded, snap.payload_rejects);
  if (tracing)
    std::printf("trace: root=%s spans_stitched=%zu flight_rings=%zu\n",
                obs::span_id_hex(root_span->id()).c_str(), snap.spans_stitched,
                snap.flight_rings_collected);

  int rc = 0;
  if (o.verify) {
    const auto w = fabric::workload_from_params(params);
    CampaignResult<arch::FaultRecord> reference;
    if (o.campaign == "arch.pipeline") {
      reference = arch::pipeline_campaign_run(*w, base);
    } else {
      const arch::FaultInjector inj(*w);
      const auto target = o.target == "memory"      ? arch::FaultTarget::kMemory
                          : o.target == "instruction" ? arch::FaultTarget::kInstruction
                                                      : arch::FaultTarget::kRegister;
      reference = inj.campaign_run(base, target);
    }
    const bool identical = reference.records == result->records;
    std::printf("verify vs single-process: %s\n", identical ? "IDENTICAL" : "MISMATCH");
    if (!identical) rc = 1;

    // Merged-trace parentage: every completed shard must appear in the
    // stitched trace as a `fabric.shard/<id>` span whose parent is the root
    // span and whose trace id is the root's.
    if (tracing) {
      const std::size_t shard_total =
          snap.shards_pending + snap.shards_inflight + snap.shards_done;
      std::vector<char> shard_seen(shard_total, 0);
      std::size_t bad_parent = 0;
      for (const obs::TraceEvent& e : obs::TraceRecorder::global().events()) {
        if (e.name.rfind("fabric.shard/", 0) != 0) continue;
        if (!(e.trace == root_span->trace()) || e.parent != root_span->id()) {
          ++bad_parent;
          continue;
        }
        const std::size_t id =
            static_cast<std::size_t>(std::atol(e.name.c_str() + 13));
        if (id < shard_seen.size()) shard_seen[id] = 1;
      }
      std::size_t missing = 0;
      for (const char s : shard_seen) missing += s ? 0 : 1;
      const bool ok = missing == 0 && bad_parent == 0;
      std::printf("verify merged trace: %s (%zu shards, %zu missing, %zu mis-parented)\n",
                  ok ? "COMPLETE" : "INCOMPLETE", shard_total, missing, bad_parent);
      if (!ok) rc = 1;
    }
  }
  return rc;
}
