// Fleet reliability monitoring end to end (Sec. III-B2 + IV-A4): generate
// node telemetry with a hidden degradation process, train a GBDT failure
// predictor, rank the fleet by risk, and let the adaptive replica manager
// price redundancy for the riskiest nodes.
//
// The simulated fleet telemetry (src/os/telemetry) is also folded into an
// obs::MetricsRegistry, so the monitoring corpus exports through the same
// `lore.metrics.v1` JSON schema as LORE's first-party instrumentation
// (src/obs) — one consumer can read both.
//
//   $ ./fleet_monitoring                  # prints the summary table
//   $ ./fleet_monitoring fleet.json      # additionally writes the metrics JSON
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/ml/ensemble.hpp"
#include "src/ml/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/os/replica.hpp"
#include "src/os/telemetry.hpp"

namespace {

/// Fold the simulated telemetry corpus into a (local, not global) metrics
/// registry: fleet-wide counters for the event totals and histograms for the
/// per-record operating conditions.
lore::obs::Snapshot fleet_metrics(const std::vector<lore::os::TelemetryRecord>& history) {
  using lore::obs::Histogram;
  lore::obs::MetricsRegistry reg;
  auto& records = reg.counter("fleet.records");
  auto& failures = reg.counter("fleet.failures");
  auto& corrected = reg.counter("fleet.corrected_errors");
  auto& temp = reg.histogram("fleet.temperature_k", Histogram::linear_bounds(300.0, 400.0, 51));
  auto& util = reg.histogram("fleet.utilization", Histogram::linear_bounds(0.0, 1.0, 21));
  auto& power = reg.histogram("fleet.power_w", Histogram::linear_bounds(0.0, 250.0, 26));
  for (const auto& r : history) {
    records.add(1);
    if (r.failure) failures.add(1);
    corrected.add(r.corrected_errors);
    temp.observe(r.temperature_k);
    util.observe(r.utilization);
    power.observe(r.power_w);
  }
  return reg.snapshot();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lore;
  using namespace lore::os;

  // Six months of telemetry for a 64-node fleet.
  const FleetConfig cfg{.nodes = 64, .epochs = 220, .defective_fraction = 0.25, .seed = 9};
  const auto history = generate_fleet_telemetry(cfg);
  std::size_t failures = 0;
  for (const auto& r : history) failures += r.failure;
  std::printf("fleet history: %zu records, %zu uncorrected failures\n", history.size(),
              failures);

  // The corpus as metrics: same snapshot/JSON path the benches use, so a
  // dashboard that reads BENCH_*.json artifacts can ingest fleet telemetry
  // unchanged.
  const auto snap = fleet_metrics(history);
  std::printf("\nfleet telemetry as lore.metrics.v1:\n%s\n",
              obs::summary_table(snap).c_str());
  if (argc > 1) {
    const std::string path = argv[1];
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string text = obs::metrics_to_json(snap).dump(2);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("fleet metrics written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }

  // Train the failure predictor on history; score the current epoch.
  const auto train = failure_prediction_dataset(history, 12, 10);
  ml::GradientBoostingClassifier predictor(
      ml::GradientBoostingClassifierConfig{.num_rounds = 80});
  predictor.fit(train.x, train.labels);
  std::printf("trained GBDT on %zu windows (%zu features)\n\n", train.size(),
              train.features());

  // Risk ranking at the end of the trace.
  std::vector<std::pair<double, std::size_t>> risk;
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    const auto f = telemetry_features(history, node, cfg.epochs - 1, 12);
    risk.emplace_back(predictor.predict_proba(f)[1], node);
  }
  std::sort(risk.rbegin(), risk.rend());
  std::printf("top-5 at-risk nodes (failure probability within 10 epochs):\n");
  for (int i = 0; i < 5; ++i)
    std::printf("  node %2zu  p(fail) = %.3f\n", risk[static_cast<std::size_t>(i)].second,
                risk[static_cast<std::size_t>(i)].first);

  // Replica management: observe each node's recent fault evidence and price
  // redundancy accordingly.
  std::printf("\nreplica recommendations (risk-weighted):\n");
  for (int i = 0; i < 5; ++i) {
    const auto node = risk[static_cast<std::size_t>(i)].second;
    ReplicaManager mgr(ReplicaManagerConfig{.failure_penalty = 800.0});
    // Feed the node's corrected-error history as fault evidence: each epoch
    // is treated as 500 jobs, with corrected errors (capped) as the faulty
    // ones — a rough but monotone per-job fault-rate signal.
    for (const auto& r : history)
      if (r.node == node && r.epoch + 30 >= cfg.epochs)
        mgr.observe(std::min<std::uint32_t>(r.corrected_errors, 50), 500);
    std::printf("  node %2zu: estimated per-job fault rate %.4f -> %zu replica(s)\n", node,
                mgr.fault_probability(), mgr.recommended_replicas());
  }
  std::printf(
      "\nThe pipeline is Sec. III-B2 + IV-A4 of the paper in one loop: logs -> "
      "learned failure model -> risk ranking -> redundancy priced per node.\n");
  return 0;
}
