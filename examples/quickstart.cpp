// Quickstart: build a tiny circuit, characterize the cell library with the
// transient engine, run static timing analysis, and look at a self-heating-
// aware guardband — the LORE public API in ~60 effective lines.
//
//   $ ./quickstart
#include <cstdio>

#include "src/circuit/she_flow.hpp"

int main() {
  using namespace lore;
  using namespace lore::circuit;

  // 1. A technology library (12 functions x 3 drive strengths) characterized
  //    at the chip's operating temperature by transient simulation.
  CellLibrary lib = make_skeleton_library("quickstart-tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.2},
      device::SelfHeatingModel{});
  device::OperatingPoint corner{};
  corner.temperature = 330.0;  // chip temperature (K)
  characterizer.characterize_library(lib, corner);
  std::printf("library '%s': %zu cells characterized\n", lib.name().c_str(), lib.size());

  // 2. A small pipelined netlist (DFF ranks with combinational clouds).
  Netlist netlist = generate_core_like(
      lib, CoreLikeConfig{.pipeline_stages = 2, .regs_per_stage = 8, .gates_per_stage = 60});
  std::printf("netlist: %zu instances, %zu nets, %zu distinct cell types\n",
              netlist.num_instances(), netlist.num_nets(), netlist.distinct_cell_types());

  // 3. Static timing analysis.
  StaEngine sta;
  const StaResult timing = sta.run(netlist, LibraryDelayModel());
  std::printf("worst arrival: %.1f ps  (critical path of %zu cells)\n",
              timing.worst_arrival_ps, timing.critical_path.size());
  for (auto inst : timing.critical_path)
    std::printf("  %-18s %7.1f ps\n", netlist.instance(inst).name.c_str(),
                timing.instance_delay_ps[inst]);

  // 4. Per-instance self-heating: the Fig. 2 effect in four lines.
  const auto she = instance_she_rise(netlist, timing,
                                     characterizer.config().she_reference_toggle_ghz);
  double hottest = 0.0;
  std::size_t hottest_inst = 0;
  for (std::size_t i = 0; i < she.size(); ++i)
    if (she[i] > hottest) {
      hottest = she[i];
      hottest_inst = i;
    }
  std::printf("hottest instance: %s, +%.1f K above chip temperature\n",
              netlist.instance(hottest_inst).name.c_str(), hottest);

  // 5. SHE-aware timing: re-characterize that one instance at its own
  //    temperature and compare.
  SheFlowConfig flow{};
  const auto exact = build_exact_instance_library(netlist, she, characterizer, flow);
  const double she_aware_ps = sta.run(netlist, exact).worst_arrival_ps;
  std::printf("SHE-aware worst arrival: %.1f ps (guardband %.3fx vs typical)\n",
              she_aware_ps, she_aware_ps / timing.worst_arrival_ps);
  return 0;
}
