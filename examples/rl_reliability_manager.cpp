// Fig. 1 / Section IV: train a Q-learning DVFS governor on the multicore
// simulator and watch it trade energy, deadline misses, soft errors, and
// wear-out lifetime against the static baselines.
//
//   $ ./rl_reliability_manager
#include <cstdio>

#include "src/os/governor.hpp"

int main() {
  using namespace lore;
  using namespace lore::os;

  Platform platform({make_big_core(), make_big_core(), make_little_core(),
                     make_little_core()});
  const auto tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 12, .total_utilization = 1.5, .seed = 7});
  const auto mapping = partition_worst_fit(tasks, {1.0, 1.0, 0.45, 0.45});
  SimConfig cfg{.duration_ms = 8000.0, .ser = {.lambda0_per_s = 1e-3}, .seed = 11};

  std::printf("platform: %zu cores, %zu V-f levels; %zu tasks (U=%.2f)\n\n",
              platform.num_cores(), platform.ladder().size(), tasks.size(),
              total_utilization(tasks));

  auto describe = [](const char* name, const SimResult& r) {
    std::printf("%-18s energy %7.2f J  misses %6.4f  faults %4zu  peakT %6.1f K  "
                "MTTF %7.3f y\n",
                name, r.energy_j, r.deadline_miss_rate(), r.soft_errors,
                r.peak_temperature_k, r.mttf_years);
  };

  SimConfig eval_cfg = cfg;
  eval_cfg.seed = 999;  // unseen fault realization for evaluation

  StaticGovernor top(platform.ladder().size() - 1);
  {
    SystemSimulator sim(platform, tasks, mapping, eval_cfg);
    describe("static-top", sim.run(&top));
  }
  StaticGovernor mid(2);
  {
    SystemSimulator sim(platform, tasks, mapping, eval_cfg);
    describe("static-mid", sim.run(&mid));
  }
  OndemandGovernor ondemand;
  {
    SystemSimulator sim(platform, tasks, mapping, eval_cfg);
    describe("ondemand", sim.run(&ondemand));
  }

  std::printf("\ntraining the RL governor (18 episodes)...\n");
  auto rl = train_rl_governor(platform, tasks, mapping, cfg, 18);
  rl->freeze();
  {
    SystemSimulator sim(platform, tasks, mapping, eval_cfg);
    describe("rl-dvfs", sim.run(rl.get()));
  }
  std::printf(
      "\nThe learned policy adapts V-f to per-core utilization and temperature:\n"
      "cheaper than static-top, far fewer misses than static-mid, and a longer\n"
      "wear-out lifetime than either when slack allows cool, low-voltage runs.\n");
  return 0;
}
