// Online predict-and-prune fault-injection campaign (DESIGN.md §13).
//
// A campaign's cost is dominated by trials whose outcome was never in doubt:
// most register-file bit flips land in dead state and are benign. This
// example runs the full loop the paper's learning-oriented methodology
// implies — campaign trials feed an online vulnerability model, and once the
// model validates, later campaigns skip predicted-benign trials, auditing a
// seeded fraction of the skips so the false-benign rate is measured (never
// assumed):
//
//   1. warm-up: a campaign with an untrained Predictor — nothing prunes,
//      every trial's (features, outcome) pair feeds the observation buffer;
//   2. train: seeded holdout split, swap-on-validation-win;
//   3. pruned campaign: chunk-wise batched scoring (SIMD inference hot
//      path), kPruned statuses, 5% audit, PruneController breaker;
//   4. the accounting: effective trials/s vs the full campaign, audit-
//      measured false-benign rate, obs counters.
//
// --verify: re-run the pruned campaign with audit_fraction=1.0 (every
// predicted-benign trial executes anyway) at several thread counts and
// require bit-identical records to the unpruned engine — the determinism
// contract the `ml`-labeled ctest suite pins. Exits 1 on any divergence.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/ml/predictor.hpp"

using namespace lore;
using namespace lore::arch;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

CampaignSpec spec_for(std::size_t trials, unsigned threads) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = 2024;
  spec.threads = threads;
  return spec;
}

int verify(const FaultInjector& injector, ml::Predictor& predictor) {
  std::printf("verify: audit=1.0 pruned campaign vs unpruned engine\n");
  const auto full = injector.campaign_run(spec_for(2000, 1), FaultTarget::kRegister);
  PruneCampaignOptions opt;
  opt.audit_fraction = 1.0;
  opt.benign_threshold = 0.7;  // actually classify trials benign, then audit all
  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto pruned = injector.campaign_run_pruned(spec_for(2000, threads),
                                                     FaultTarget::kRegister,
                                                     predictor, opt);
    const bool ok = pruned.records == full.records && pruned.status == full.status;
    std::printf("  threads=%u audits=%zu identical=%s\n", threads,
                pruned.report.prune_audits, ok ? "yes" : "NO");
    if (!ok) {
      std::fprintf(stderr, "verify FAILED: audit=1.0 outcomes diverged at threads=%u\n",
                   threads);
      return 1;
    }
  }
  std::printf("verify OK: outcomes bit-identical at every thread count\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool verify_mode = argc > 1 && std::strcmp(argv[1], "--verify") == 0;

  // A matmul trial replays thousands of golden cycles, so skipping one buys
  // far more than the batched inference it costs; on feather-weight workloads
  // scoring overhead can eat the win.
  const auto w = make_matmul(8, 5);
  const FaultInjector injector(w);
  std::printf("workload: matmul, golden run %llu cycles\n",
              static_cast<unsigned long long>(injector.golden().cycles));

  // 1. + 2. Warm-up campaign feeds the model, then train.
  ml::PredictorConfig cfg;
  cfg.model = ml::PredictorModel::kGbdt;
  cfg.gbdt.num_rounds = 30;
  ml::Predictor predictor(cfg);
  PruneCampaignOptions warmup_opt;
  warmup_opt.feedback_stride = 1;  // every warm-up trial is a training sample
  injector.campaign_run_pruned(spec_for(3000, 1), FaultTarget::kRegister, predictor,
                               warmup_opt);
  if (!predictor.train_now()) {
    std::fprintf(stderr, "predictor failed validation (accuracy floor %.2f)\n",
                 cfg.min_validation_accuracy);
    return 1;
  }
  const auto snap = predictor.snapshot();
  std::printf("predictor: %s v%llu, trained on %zu samples, holdout accuracy %.3f\n",
              ml::predictor_model_name(snap->family()),
              static_cast<unsigned long long>(snap->version()), snap->trained_on(),
              snap->validation_accuracy());

  if (verify_mode) return verify(injector, predictor);

  // 3. Full vs pruned campaign, same spec.
  constexpr std::size_t kTrials = 20000;
  auto t0 = std::chrono::steady_clock::now();
  const auto full = injector.campaign_run(spec_for(kTrials, 1), FaultTarget::kRegister);
  const double full_s = seconds_since(t0);

  PruneController controller;
  PruneCampaignOptions opt;
  opt.controller = &controller;  // audit_fraction < 0: LORE_PRUNE_AUDIT or 5%
  // GBDT sigmoid margins on this data top out near 0.84, so the default 0.9
  // threshold never prunes; 0.7 is the calibrated operating point (the bench
  // sweeps the accuracy-vs-prune-rate trade).
  opt.benign_threshold = 0.7;
  t0 = std::chrono::steady_clock::now();
  const auto pruned = injector.campaign_run_pruned(spec_for(kTrials, 1),
                                                   FaultTarget::kRegister, predictor, opt);
  const double pruned_s = seconds_since(t0);

  // 4. The accounting.
  const auto& rep = pruned.report;
  const double fb_rate = rep.prune_audits ? static_cast<double>(rep.prune_false_benign) /
                                                static_cast<double>(rep.prune_audits)
                                          : 0.0;
  std::printf("\nfull campaign:   %zu trials executed in %.3fs (%.0f trials/s)\n",
              full.report.completed, full_s, static_cast<double>(kTrials) / full_s);
  std::printf("pruned campaign: %zu executed + %zu pruned in %.3fs "
              "(%.0f effective trials/s, %.2fx)\n",
              rep.completed, rep.pruned, pruned_s,
              static_cast<double>(kTrials) / pruned_s, full_s / pruned_s);
  std::printf("audits: %zu of the predicted-benign population, false-benign rate %.3f\n",
              rep.prune_audits, fb_rate);
  std::printf("controller: %s (%zu pruned, %zu audits recorded)\n",
              controller.tripped() ? "TRIPPED — pruning disabled" : "healthy",
              controller.pruned(), controller.audits());
  std::printf("predictor after run: %zu observations, %zu trainings\n",
              predictor.observed(), predictor.trainings());
  return 0;
}
