// The full Fig. 3 signoff flow on a core-like block: conventional worst-case
// corner vs SHE-aware per-instance STA with the ML-generated library, plus
// the temperature-in-SDF artifact.
//
//   $ ./she_aware_signoff
#include <cstdio>

#include "src/circuit/she_flow.hpp"

int main() {
  using namespace lore;
  using namespace lore::circuit;

  CellLibrary lib = make_skeleton_library("signoff-tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.2},
      device::SelfHeatingModel{});
  SheFlowConfig cfg;
  device::OperatingPoint typical{};
  typical.temperature = cfg.chip_temperature;
  characterizer.characterize_library(lib, typical);

  auto netlist = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 3,
                                                        .regs_per_stage = 10,
                                                        .gates_per_stage = 90});
  std::printf("design: %zu instances (%zu cell types)\n", netlist.num_instances(),
              netlist.distinct_cell_types());

  StaEngine sta;
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 30, .temperature_samples = 3,
      .mlp = {.hidden = {40, 40}, .learning_rate = 3e-3, .epochs = 90, .batch_size = 32}});
  const auto report = run_guardband_flow(netlist, lib, characterizer, ml, cfg, sta);

  std::printf("\n%-34s %12s %12s\n", "flow", "arrival(ps)", "guardband");
  std::printf("%-34s %12.1f %12s\n", "typical corner", report.typical_arrival_ps, "1.000");
  std::printf("%-34s %12.1f %12.3f\n", "worst-case corner",
              report.worst_case_arrival_ps, report.worst_case_guardband());
  std::printf("%-34s %12.1f %12.3f\n", "SHE-aware (exact per-instance)",
              report.she_exact_arrival_ps,
              report.she_exact_arrival_ps / report.typical_arrival_ps);
  std::printf("%-34s %12.1f %12.3f\n", "SHE-aware (ML library)",
              report.she_ml_arrival_ps, report.she_guardband());

  const double saved =
      (report.worst_case_arrival_ps - report.she_ml_arrival_ps) / report.worst_case_arrival_ps;
  std::printf("\npessimism removed vs worst-case signoff: %.1f%%\n", saved * 100.0);
  std::printf("exact library cost: %zu transient sims; ML training: %zu sims, "
              "generation: 0 sims\n",
              report.exact_evaluations, report.ml_training_evaluations);

  // The paper's SDF trick: ship per-instance SHE temperatures through the
  // standard delay format.
  const auto sta_typical = sta.run(netlist, LibraryDelayModel());
  const auto she = instance_she_rise(netlist, sta_typical,
                                     characterizer.config().she_reference_toggle_ghz);
  const auto sdf = write_sdf(netlist, she, "SHE_TEMP_K");
  std::printf("\nSHE-annotated SDF (first 3 lines):\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 3 && pos < sdf.size()) {
    const auto eol = sdf.find('\n', pos);
    std::printf("  %s\n", sdf.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  return 0;
}
