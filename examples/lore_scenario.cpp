// lore_scenario — the generic runner behind every committed .scenario.json
// (DESIGN.md §14). One binary subsumes the bespoke bench wiring: load a
// declarative scenario, compose the cross-layer stages, print each stage's
// series, and cross-examine the layers with the invariant checker.
//
//   lore_scenario scenarios/fig6_deadline_hit.scenario.json
//   lore_scenario --verify scenarios/crosslayer_loop.scenario.json
//   lore_scenario --sweep 100 --seed 7
//   lore_scenario --json FILE        # machine-readable result on stdout
//
// `--verify` runs the scenario at 1, 4, and hardware-concurrency threads
// and exits 1 unless every run's result fingerprint (fault records, stage
// rows, hit rates) is bit-identical — the scenario determinism contract.
// `--sweep N` enumerates N generated scenarios (counter-seeded: same seed,
// same scenarios, same findings) and reports invariant findings.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/table.hpp"
#include "src/scenario/scenario.hpp"

namespace {

using namespace lore;
using namespace lore::scenario;

struct Options {
  std::vector<std::string> files;
  bool verify = false;
  bool json = false;
  long sweep = -1;
  long seed = 2026;
  double plant = 0.0;
  long threads = -1;
};

[[noreturn]] void usage(int rc) {
  std::fputs(
      "usage: lore_scenario [--verify] [--json] [--threads T] FILE.scenario.json...\n"
      "       lore_scenario --sweep N [--seed S] [--plant RATE]\n",
      rc == 0 ? stdout : stderr);
  std::exit(rc);
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--verify") o.verify = true;
    else if (a == "--json") o.json = true;
    else if (a == "--sweep") o.sweep = std::atol(next(i));
    else if (a == "--seed") o.seed = std::atol(next(i));
    else if (a == "--plant") o.plant = std::atof(next(i));
    else if (a == "--threads") o.threads = std::atol(next(i));
    else if (a == "--help" || a == "-h") usage(0);
    else if (!a.empty() && a[0] == '-') usage(2);
    else o.files.push_back(a);
  }
  if (o.files.empty() && o.sweep < 0) usage(2);
  return o;
}

void print_findings(const std::vector<InvariantFinding>& findings) {
  if (findings.empty()) {
    std::printf("invariants: all checks passed\n");
    return;
  }
  Table t({"invariant", "severity", "detail"});
  for (const auto& f : findings) t.add_row({f.id, severity_name(f.severity), f.message});
  std::fputs(t.to_string().c_str(), stdout);
}

void print_result(const ScenarioResult& r) {
  std::printf("\n==== scenario: %s ====\n", r.spec.name.c_str());
  if (!r.spec.description.empty()) std::printf("%s\n", r.spec.description.c_str());
  if (r.device) {
    Table t({"stress_temp_k", "delta_vth_mv", "guardband", "safe_fmax_ghz"});
    t.add_numeric_row({r.device->stress_temperature_k, r.device->delta_vth_v * 1e3,
                       r.device->guardband, r.device->safe_fmax_ghz},
                      4);
    std::fputs(t.to_string().c_str(), stdout);
  }
  if (!r.faults.empty()) {
    Table t({"layer", "target", "trials", "avf", "corruption_factor"});
    for (const auto& f : r.faults)
      t.add_row({f.layer, f.target, std::to_string(f.report.trials), fmt_sig(f.avf, 4),
                 fmt_sig(f.corruption_factor, 4)});
    std::fputs(t.to_string().c_str(), stdout);
  }
  if (r.os) {
    Table t({"governor", "max_freq_ghz", "peak_temp_k", "energy_j", "misses", "sdc"});
    t.add_row({r.os->governor, fmt_sig(r.os->max_freq_used_ghz, 4),
               fmt_sig(r.os->peak_temperature_k, 4), fmt_sig(r.os->total_energy_j, 4),
               std::to_string(r.os->deadline_misses), std::to_string(r.os->sdc_failures)});
    std::fputs(t.to_string().c_str(), stdout);
  }
  if (r.mixed_criticality) {
    Table t({"overrun_factor", "hi_miss_rate", "lo_qos", "mode_switches"});
    for (const auto& row : r.mixed_criticality->rows)
      t.add_numeric_row(
          {row.overrun_factor,
           row.hi_jobs ? static_cast<double>(row.hi_misses) /
                             static_cast<double>(row.hi_jobs)
                       : 0.0,
           row.lo_qos, static_cast<double>(row.mode_switches)},
          4);
    std::fputs(t.to_string().c_str(), stdout);
  }
  if (r.replica_drift) {
    Table t({"phase", "true_rate", "estimated_rate", "replicas"});
    for (const auto& row : r.replica_drift->rows)
      t.add_row({row.phase, fmt_sig(row.true_rate, 3), fmt_sig(row.estimated_rate, 3),
                 std::to_string(row.replicas)});
    std::fputs(t.to_string().c_str(), stdout);
  }
  if (r.rollback) {
    std::vector<std::string> headers{"error_prob"};
    for (auto kind : r.rollback->schedulers)
      headers.push_back(rollback::scheduler_name(kind));
    Table t(headers);
    for (const auto& point : r.rollback->experiment.points) {
      std::vector<double> row{point.p};
      for (auto kind : r.rollback->schedulers) row.push_back(point.hit_rate.at(kind));
      t.add_numeric_row(row, 4);
    }
    std::fputs(t.to_string().c_str(), stdout);
  }
  if (r.crosslayer) {
    Table t({"policy", "mean_reward"});
    t.add_row({"learned (greedy)", fmt_sig(r.crosslayer->learned_eval, 5)});
    for (std::size_t vf = 0; vf < r.crosslayer->fixed_policy_rewards.size(); ++vf)
      t.add_row({"fixed V-f level " + std::to_string(vf),
                 fmt_sig(r.crosslayer->fixed_policy_rewards[vf], 5)});
    std::fputs(t.to_string().c_str(), stdout);
    std::printf("training: early mean %s -> late mean %s over %zu episodes\n",
                fmt_sig(r.crosslayer->training.early_mean(), 5).c_str(),
                fmt_sig(r.crosslayer->training.late_mean(), 5).c_str(),
                r.crosslayer->training.episode_rewards.size());
  }
  std::printf("trials: %zu  wall: %ss\n", r.total_trials(),
              fmt_sig(r.wall_seconds, 3).c_str());
}

int verify_file(const std::string& path, ScenarioSpec spec) {
  std::vector<unsigned> thread_counts{1, 4, std::thread::hardware_concurrency()};
  std::printf("verify %s: thread counts 1/4/%u\n", path.c_str(), thread_counts.back());
  std::uint64_t reference = 0;
  bool first = true, ok = true;
  for (unsigned t : thread_counts) {
    spec.campaign.threads = t;
    const ScenarioResult result = run_scenario(spec);
    const std::uint64_t fp = result_fingerprint(result);
    std::printf("  threads=%-2u  fingerprint=%016llx  trials=%zu\n", t,
                static_cast<unsigned long long>(fp), result.total_trials());
    if (first) {
      reference = fp;
      first = false;
      print_findings(check_invariants(result));
    } else if (fp != reference) {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "verify %s: FINGERPRINT MISMATCH across thread counts\n",
                 path.c_str());
    return 1;
  }
  std::printf("verify %s: bit-identical across thread counts\n", path.c_str());
  return 0;
}

int run_sweep_mode(const Options& o) {
  GeneratorConfig cfg;
  cfg.base_seed = static_cast<std::uint64_t>(o.seed);
  cfg.planted_violation_rate = o.plant;
  const SweepReport report = run_sweep(cfg, static_cast<std::size_t>(o.sweep));
  if (o.json) {
    std::printf("%s\n", report.to_json().dump(2).c_str());
    return 0;
  }
  Table t({"scenarios", "trials", "violations", "warnings", "trials_per_s",
           "fingerprint"});
  char fp[19];
  std::snprintf(fp, sizeof fp, "0x%016llx",
                static_cast<unsigned long long>(report.findings_fingerprint()));
  t.add_row({std::to_string(report.scenarios), std::to_string(report.trials),
             std::to_string(report.violations), std::to_string(report.warnings),
             fmt_sig(report.trials_per_second(), 4), fp});
  std::fputs(t.to_string().c_str(), stdout);
  for (const SweepOutcome& out : report.outcomes) {
    if (out.findings.empty()) continue;
    std::printf("\n%s:\n", out.name.c_str());
    print_findings(out.findings);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.sweep >= 0) return run_sweep_mode(o);
  int rc = 0;
  for (const std::string& path : o.files) {
    try {
      ScenarioSpec spec = load_scenario_file(path);
      if (o.threads >= 0) spec.campaign.threads = static_cast<unsigned>(o.threads);
      if (o.verify) {
        rc |= verify_file(path, std::move(spec));
        continue;
      }
      const ScenarioResult result = run_scenario(spec);
      if (o.json) {
        std::printf("%s\n", result_to_json(result).dump(2).c_str());
      } else {
        print_result(result);
        print_findings(check_invariants(result));
      }
    } catch (const SpecError& e) {
      std::fprintf(stderr, "lore_scenario: %s\n", e.what());
      rc = 1;
    }
  }
  return rc;
}
