// Section III flow: run a fault-injection campaign on a kernel, train an
// IPAS-style SVM on the outcomes, and protect only the instructions the
// model flags — then verify coverage and slowdown against full duplication.
//
//   $ ./selective_replication
#include <cstdio>

#include "src/arch/features.hpp"
#include "src/arch/replicate.hpp"
#include "src/ml/svm.hpp"

int main() {
  using namespace lore;
  using namespace lore::arch;

  const auto workload = make_checksum(16, 5);
  std::printf("kernel '%s': %zu instructions\n", workload.name.c_str(),
              workload.program.size());
  for (std::size_t i = 0; i < workload.program.size(); ++i)
    std::printf("  %2zu: %s\n", i, to_string(workload.program[i]).c_str());

  // 1. Fault-injection campaign into instruction encodings.
  FaultInjector injector(workload);
  lore::Rng rng(11);
  const auto campaign = injector.campaign(800, FaultTarget::kInstruction, rng.next_u64());
  const auto mix = summarize(campaign);
  std::printf("\ncampaign: %zu injections -> %zu benign, %zu SDC, %zu crash, %zu hang\n",
              mix.total(), mix.benign, mix.sdc, mix.crash, mix.hang);

  // 2. Label instructions and train the SVM on their features.
  const auto labels = instruction_vulnerability_labels(workload.program, campaign, 0.25);
  ml::Matrix x;
  std::vector<int> y;
  for (std::size_t i = 0; i < workload.program.size(); ++i) {
    x.push_row(instruction_features(workload.program, i));
    y.push_back(labels[i]);
  }
  ml::LinearSvm svm;
  svm.fit(x, y);

  // 3. Protect what the model flags; compare against full duplication.
  const auto policy = protect_by_model(workload.program, svm);
  std::printf("\nSVM protects:");
  for (std::size_t i = 0; i < policy.size(); ++i)
    if (policy[i]) std::printf(" %zu", i);
  std::printf("\n\n%-12s %-10s %-10s\n", "policy", "slowdown", "coverage");
  for (const auto& [name, mask] :
       {std::pair{std::string("svm"), policy},
        std::pair{std::string("full"), protect_all(workload.program)},
        std::pair{std::string("none"), protect_none(workload.program)}}) {
    lore::Rng eval_rng(13);
    const auto eval = evaluate_policy(workload, mask, 150, eval_rng);
    std::printf("%-12s %-10.3f %-10.3f\n", name.c_str(), eval.slowdown, eval.coverage);
  }
  return 0;
}
