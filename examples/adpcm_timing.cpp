// Section V end to end: encode audio with the real ADPCM codec, segment the
// workload, and study how the checkpointing/rollback-recovery system and the
// cycle-noise mitigation schedulers behave around the error-rate wall.
//
//   $ ./adpcm_timing [error_probability]
#include <cstdio>
#include <cstdlib>

#include "src/common/stats.hpp"
#include "src/rollback/montecarlo.hpp"

int main(int argc, char** argv) {
  using namespace lore;
  using namespace lore::rollback;

  const double p = argc > 1 ? std::atof(argv[1]) : 3e-6;
  std::printf("per-cycle error probability: %g\n\n", p);

  // The workload: a real ADPCM encoder, segmented into 40k-270k-cycle units.
  const auto pcm = synth_audio(4096, 1);
  const auto codes = adpcm_encode(pcm);
  const auto decoded = adpcm_decode(codes);
  std::printf("ADPCM round trip: %zu samples -> %zu 4-bit codes (first decoded %d)\n",
              pcm.size(), codes.size(), decoded.front());

  const auto segments = segment_adpcm_workload(SegmentationConfig{});
  std::uint64_t total = 0;
  for (const auto& s : segments) total += s.nominal_cycles;
  std::printf("%zu segments, %.1fk cycles total\n\n", segments.size(),
              static_cast<double>(total) / 1000.0);

  // Closed-form Eq. (2) expectations per segment.
  std::printf("%-12s %-14s %-14s\n", "segment", "cycles", "E[rollbacks]");
  for (std::size_t i = 0; i < 5; ++i)
    std::printf("%-12zu %-14llu %-14.4f\n", i,
                static_cast<unsigned long long>(segments[i].nominal_cycles),
                expected_rollbacks(p, segments[i].nominal_cycles + 100));
  std::printf("...\n\n");

  // One Monte Carlo run per scheduler at this error rate.
  const MitigationConfig mitigation{};
  std::printf("%-10s %-10s %-16s\n", "scheduler", "hit_rate", "rollbacks/segment");
  for (auto kind : {SchedulerKind::kDs, SchedulerKind::kDs15, SchedulerKind::kDs2,
                    SchedulerKind::kWcet}) {
    lore::Rng rng(7);  // same error realization for a paired comparison
    const auto budgets = static_budgets(kind, segments, mitigation.checkpoint);
    lore::RunningStats hits;
    double rollbacks = 0.0;
    for (int run = 0; run < 100; ++run) {
      const auto outcome = simulate_run(segments, budgets, p, mitigation, rng);
      hits.add(outcome.deadline_hit_rate);
      rollbacks += outcome.mean_rollbacks_per_segment;
    }
    std::printf("%-10s %-10.4f %-16.4f\n", scheduler_name(kind).c_str(), hits.mean(),
                rollbacks / 100.0);
  }
  std::printf(
      "\nTry p=1e-7 (everyone hits), p=1e-5 (conservative schedulers only), and\n"
      "p=1e-4 (past the wall: nobody hits, regardless of algorithm).\n");
  return 0;
}
