#!/usr/bin/env python3
"""Aggregate LORE bench artifacts (BENCH_<name>.json, schema lore.bench.v1)
into one plain-text trajectory report.

Each bench binary emits its artifact via bench/bench_util.hpp: every table it
printed plus a snapshot of the global metrics registry (schema
lore.metrics.v1 — the same schema examples/fleet_monitoring exports for the
simulated fleet-telemetry corpus). This script is the consumer side: it
collects the artifacts of one run into a single report so successive runs can
be diffed as the repo's perf trajectory.

Usage:
  scripts/bench_report.py [DIR_OR_FILE ...]

With no arguments, scans $LORE_BENCH_DIR (or the current directory) for
BENCH_*.json. Only the Python standard library is used.
"""

import json
import os
import sys


def find_artifacts(args):
    paths = []
    if not args:
        args = [os.environ.get("LORE_BENCH_DIR") or "."]
    for a in args:
        if os.path.isdir(a):
            names = sorted(n for n in os.listdir(a)
                           if n.startswith("BENCH_") and n.endswith(".json"))
            paths.extend(os.path.join(a, n) for n in names)
        else:
            paths.append(a)
    return paths


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "lore.bench.v1":
        raise ValueError(f"{path}: unexpected schema {schema!r}")
    return doc


def render_table(headers, rows):
    """Aligned text table (mirrors lore::obs::summary_table's layout)."""
    cols = [list(map(str, col)) for col in zip(*([headers] + rows))] if rows else [
        [h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []

    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()

    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    for row in rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def metrics_rows(metrics):
    """Flatten a lore.metrics.v1 document into (instrument, name, value) rows."""
    rows = []
    for name, v in sorted(metrics.get("counters", {}).items()):
        rows.append(["counter", name, str(v)])
    for name, v in sorted(metrics.get("gauges", {}).items()):
        rows.append(["gauge", name, f"{v:.6g}"])
    for name, h in sorted(metrics.get("histograms", {}).items()):
        summary = (f"count={h.get('count', 0)} mean="
                   f"{(h.get('sum', 0.0) / h['count']) if h.get('count') else 0.0:.6g} "
                   f"p50={h.get('p50', 0.0):.6g} p95={h.get('p95', 0.0):.6g} "
                   f"p99={h.get('p99', 0.0):.6g}")
        rows.append(["histogram", name, summary])
    return rows


def report(paths):
    out = []
    seen = 0
    for path in paths:
        try:
            doc = load_artifact(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)
            continue
        seen += 1
        out.append(f"=== {doc.get('bench', os.path.basename(path))} ({path}) ===")
        for table in doc.get("tables", []):
            out.append("")
            out.append(f"-- {table.get('section', '(untitled)')}")
            out.append(render_table(table.get("headers", []), table.get("rows", [])))
        metrics = doc.get("metrics", {})
        rows = metrics_rows(metrics)
        if rows:
            out.append("")
            out.append("-- metrics registry snapshot")
            out.append(render_table(["kind", "name", "value"], rows))
        out.append("")
    out.append(f"bench_report: aggregated {seen} artifact(s)")
    return "\n".join(out), seen


def main():
    paths = find_artifacts(sys.argv[1:])
    if not paths:
        print("bench_report: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    text, seen = report(paths)
    print(text)
    return 0 if seen else 1


if __name__ == "__main__":
    sys.exit(main())
