#!/usr/bin/env python3
"""Aggregate LORE bench artifacts (BENCH_<name>.json, schema lore.bench.v1)
into one plain-text trajectory report.

Each bench binary emits its artifact via bench/bench_util.hpp: every table it
printed plus a snapshot of the global metrics registry (schema
lore.metrics.v1 — the same schema examples/fleet_monitoring exports for the
simulated fleet-telemetry corpus). This script is the consumer side: it
collects the artifacts of one run into a single report so successive runs can
be diffed as the repo's perf trajectory.

Usage:
  scripts/bench_report.py [DIR_OR_FILE ...]
  scripts/bench_report.py --diff OLD NEW
  scripts/bench_report.py --check OLD NEW [--tolerance PCT]

With no arguments, scans $LORE_BENCH_DIR (or the current directory) for
BENCH_*.json. `--diff` takes two runs (directories or single artifacts),
matches tables by (bench, section), and prints per-cell ratios for every
numeric column — speedup deltas for timing tables, drift for accuracy
tables. `--check` is the CI gate built on the same matching: it compares
every throughput (`*per_s`) cell of NEW against OLD and exits non-zero when
any regresses by more than --tolerance percent (default 10) — wire it as
`BENCH_CHECK=1 scripts/reproduce.sh` against the committed baseline in
bench/samples/. Only the Python standard library is used.
"""

import json
import os
import sys


def find_artifacts(args):
    paths = []
    if not args:
        args = [os.environ.get("LORE_BENCH_DIR") or "."]
    for a in args:
        if os.path.isdir(a):
            names = sorted(n for n in os.listdir(a)
                           if n.startswith("BENCH_") and n.endswith(".json"))
            paths.extend(os.path.join(a, n) for n in names)
        else:
            paths.append(a)
    return paths


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "lore.bench.v1":
        raise ValueError(f"{path}: unexpected schema {schema!r}")
    return doc


def render_table(headers, rows):
    """Aligned text table (mirrors lore::obs::summary_table's layout)."""
    cols = [list(map(str, col)) for col in zip(*([headers] + rows))] if rows else [
        [h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []

    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()

    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    for row in rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def metrics_rows(metrics):
    """Flatten a lore.metrics.v1 document into (instrument, name, value) rows."""
    rows = []
    for name, v in sorted(metrics.get("counters", {}).items()):
        rows.append(["counter", name, str(v)])
    for name, v in sorted(metrics.get("gauges", {}).items()):
        rows.append(["gauge", name, f"{v:.6g}"])
    for name, h in sorted(metrics.get("histograms", {}).items()):
        summary = (f"count={h.get('count', 0)} mean="
                   f"{(h.get('sum', 0.0) / h['count']) if h.get('count') else 0.0:.6g} "
                   f"p50={h.get('p50', 0.0):.6g} p95={h.get('p95', 0.0):.6g} "
                   f"p99={h.get('p99', 0.0):.6g}")
        rows.append(["histogram", name, summary])
    return rows


# Campaign-runtime health counters (src/common/campaign.cpp + parallel.cpp):
# nonzero timeouts/retries/failures/suppressed exceptions mean a figure was
# produced by a degraded campaign and should be read with that in mind.
RESILIENCE_COUNTERS = [
    "campaign.trials_completed",
    "campaign.trials_resumed",
    "campaign.timeouts",
    "campaign.retries",
    "campaign.trial_failures",
    "campaign.checkpoints",
    "pool.suppressed_exceptions",
]


def interval_rows(doc):
    """Per-interval rate rows from the live aggregator's history, if the
    artifact embeds one (schema lore.intervals.v1 under the `intervals` key:
    the bench ran with the telemetry pipeline active)."""
    block = doc.get("intervals")
    if not isinstance(block, dict) or block.get("schema") != "lore.intervals.v1":
        return []
    rows = []
    for iv in block.get("intervals", []):
        try:
            rows.append([
                str(iv["seq"]),
                f"{iv['dt_s']:.3f}",
                str(iv["trials_completed"]),
                f"{iv['trials_per_s']:.6g}",
                f"{iv['events_per_s']:.6g}",
                f"{iv['timeout_rate']:.4g}",
                str(iv["events_dropped"]),
                str(iv["alerts"]),
            ])
        except (KeyError, TypeError) as e:
            print(f"bench_report: skipping malformed interval in "
                  f"{doc.get('bench', '?')}: {e}", file=sys.stderr)
    return rows


INTERVAL_HEADERS = ["seq", "dt_s", "trials", "trials_per_s", "events_per_s",
                    "timeout_rate", "dropped", "alerts"]


def resilience_summary(docs):
    """One row per bench of the campaign-health counters, if any are present."""
    rows = []
    for doc in docs:
        counters = doc.get("metrics", {}).get("counters", {})
        if not any(name in counters for name in RESILIENCE_COUNTERS):
            continue
        rows.append([doc.get("bench", "?")] +
                    [str(counters.get(name, 0)) for name in RESILIENCE_COUNTERS])
    if not rows:
        return []
    headers = ["bench"] + [n.split(".", 1)[1] for n in RESILIENCE_COUNTERS]
    degraded = [r[0] for r in rows
                if any(int(v) for v in r[3:6]) or int(r[7])]
    out = ["=== campaign resilience summary ===",
           render_table(headers, rows)]
    if degraded:
        out.append("WARNING: degraded campaigns (timeouts/retries/failures/"
                   f"suppressed exceptions) in: {', '.join(degraded)}")
    else:
        out.append("all campaigns healthy: no timeouts, retries, failures, or "
                   "suppressed exceptions")
    out.append("")
    return out


def fleet_summary(docs):
    """Resurface the campaign fabric's fleet-throughput table (bench/fabric.cpp)
    so multi-process scaling — and any bit-identity violation — is visible at
    the top level of the report."""
    out = []
    for doc in docs:
        for table in doc.get("tables", []):
            headers = table.get("headers", [])
            if "workers" not in headers or "identical" not in headers:
                continue
            rows = table.get("rows", [])
            out.append("=== fleet throughput summary "
                       f"({doc.get('bench', '?')}) ===")
            out.append(render_table(headers, rows))
            ident_col = headers.index("identical")
            broken = [r for r in rows if len(r) > ident_col and r[ident_col] == "NO"]
            if broken:
                out.append("WARNING: fleet results NOT bit-identical to the "
                           "single-process reference — the fabric's merge "
                           "contract is broken")
            else:
                out.append("all fleet runs bit-identical to the single-process "
                           "reference")
            out.append("")
    return out


def prune_summary(docs):
    """Resurface the predict-and-prune table (bench/fi_acceleration.cpp) so the
    accuracy-for-speed trade — prune rate vs audit-measured false-benign
    rate — is visible at the top level of the report."""
    out = []
    for doc in docs:
        for table in doc.get("tables", []):
            headers = table.get("headers", [])
            if "pruned" not in headers or "false_benign_rate" not in headers:
                continue
            rows = table.get("rows", [])
            out.append(f"=== predict-and-prune summary ({doc.get('bench', '?')}) ===")
            out.append(render_table(headers, rows))
            fb_col = headers.index("false_benign_rate")
            high = [r for r in rows
                    if len(r) > fb_col and (_to_float(r[fb_col]) or 0.0) > 0.2]
            if high:
                out.append("WARNING: audit-measured false-benign rate above 0.2 — "
                           "pruning is trading away campaign accuracy")
            out.append("")
    return out


def scenario_summary(docs):
    """Resurface the generative sweep table (bench/scenario_sweep.cpp) —
    scenarios run, invariant violations, sweep throughput — so cross-layer
    health is visible at the top level of the report."""
    out = []
    for doc in docs:
        for table in doc.get("tables", []):
            headers = table.get("headers", [])
            if "scenarios" not in headers or "violations" not in headers:
                continue
            rows = table.get("rows", [])
            out.append(f"=== scenario sweep summary ({doc.get('bench', '?')}) ===")
            out.append(render_table(headers, rows))
            v_col = headers.index("violations")
            flagged = [r for r in rows
                       if len(r) > v_col and (_to_float(r[v_col]) or 0.0) > 0]
            if flagged:
                out.append("NOTE: the sweep surfaced invariant violations — see the "
                           "bench's findings output for the offending scenarios")
            else:
                out.append("no invariant violations across the sweep")
            out.append("")
    return out


def meta_line(doc):
    """One-line host context from the artifact's `meta` block, if present."""
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        return None
    cores = meta.get("host_cores")
    cores_s = f"{cores:.0f}" if isinstance(cores, (int, float)) else "?"
    return (f"host_cores={cores_s} build={meta.get('build_tag', '?')} "
            f"simd={meta.get('simd', '?')}")


def report(paths):
    out = []
    docs = []
    for path in paths:
        try:
            doc = load_artifact(path)
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)
            continue
        docs.append(doc)
        out.append(f"=== {doc.get('bench', os.path.basename(path))} ({path}) ===")
        ml = meta_line(doc)
        if ml:
            out.append(ml)
        for table in doc.get("tables", []):
            out.append("")
            out.append(f"-- {table.get('section', '(untitled)')}")
            out.append(render_table(table.get("headers", []), table.get("rows", [])))
        metrics = doc.get("metrics", {})
        rows = metrics_rows(metrics)
        if rows:
            out.append("")
            out.append("-- metrics registry snapshot")
            out.append(render_table(["kind", "name", "value"], rows))
        ivs = interval_rows(doc)
        if ivs:
            out.append("")
            out.append("-- live pipeline intervals (lore.intervals.v1)")
            out.append(render_table(INTERVAL_HEADERS, ivs))
        out.append("")
    out.extend(fleet_summary(docs))
    out.extend(prune_summary(docs))
    out.extend(scenario_summary(docs))
    out.extend(resilience_summary(docs))
    out.append(f"bench_report: aggregated {len(docs)} artifact(s)")
    return "\n".join(out), len(docs)


def _to_float(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def load_run(arg):
    """One run (a directory or single file) as a pair:
    (bench, section) -> table, plus bench -> artifact meta block."""
    tables = {}
    metas = {}
    for path in find_artifacts([arg]):
        try:
            doc = load_artifact(path)
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)
            continue
        if isinstance(doc.get("meta"), dict):
            metas[doc.get("bench", "")] = doc["meta"]
        for table in doc.get("tables", []):
            tables[(doc.get("bench", ""), table.get("section", ""))] = table
    return tables, metas


def host_context_warnings(old_meta, new_meta):
    """Warn when the two runs disagree on machine shape: timing and
    throughput ratios across different core counts are apples to oranges."""
    out = []
    for bench in sorted(set(old_meta) & set(new_meta)):
        oc = _to_float(old_meta[bench].get("host_cores"))
        nc = _to_float(new_meta[bench].get("host_cores"))
        if oc and nc and oc != nc:
            out.append(f"WARNING: {bench}: host core count changed "
                       f"{oc:.0f} -> {nc:.0f}; throughput and parallel-scaling "
                       "ratios below are not comparable across machine shapes")
    return out


def diff_tables(old, new):
    """Per-cell new/old ratios for every numeric column of matching tables.

    Rows are matched positionally and must agree on their first (label)
    column; a ratio > 1 means the value grew — for an `*_ns`/`*_ms` column
    that is a slowdown, so timing columns are annotated with the inverted
    ratio (the speedup of NEW over OLD) instead.
    """
    out = []
    throughput = []  # (bench, section, row label, column, ratio) for *per_s cols
    for key in sorted(set(old) & set(new)):
        told, tnew = old[key], new[key]
        if told.get("headers") != tnew.get("headers"):
            out.append(f"-- {key[0]}: {key[1]}: headers changed, skipping")
            continue
        headers = told.get("headers", [])
        timing = [h.endswith(("_ns", "_us", "_ms", "_s")) and not h.endswith("per_s")
                  for h in headers]
        rows = []
        for rold, rnew in zip(told.get("rows", []), tnew.get("rows", [])):
            if rold[:1] != rnew[:1]:
                continue
            cells = [str(rnew[0])]
            for c, (a, b) in enumerate(zip(rold[1:], rnew[1:]), start=1):
                fa, fb = _to_float(a), _to_float(b)
                if fa is None or fb is None or fa == 0.0 or fb == 0.0:
                    cells.append("-" if a == b else f"{a}->{b}")
                elif timing[c]:
                    cells.append(f"{fa / fb:.3g}x faster" if fa >= fb
                                 else f"{fb / fa:.3g}x slower")
                else:
                    cells.append(f"{fb / fa:.3g}x")
                    if headers[c].endswith("per_s"):
                        throughput.append(
                            (key[0], key[1], str(rnew[0]), headers[c], fb / fa))
            rows.append(cells)
        out.append(f"-- {key[0]}: {key[1]}")
        out.append(render_table(headers, rows))
        out.append("")
    if throughput:
        # Throughput (`*per_s`) is the headline perf number — resurface every
        # rate ratio in one table so a regression can't hide mid-diff.
        out.append("-- throughput summary (NEW/OLD, >1 is faster)")
        rows = [[f"{bench}: {section}"[:60], label, column, f"{ratio:.3g}x"]
                for bench, section, label, column, ratio in throughput]
        out.append(render_table(["table", "row", "column", "ratio"], rows))
        worst = min(throughput, key=lambda e: e[4])
        best = max(throughput, key=lambda e: e[4])
        out.append(f"throughput: best {best[4]:.3g}x ({best[2]}), "
                   f"worst {worst[4]:.3g}x ({worst[2]})")
        out.append("")
    missing = sorted(set(old) - set(new))
    added = sorted(set(new) - set(old))
    for key in missing:
        out.append(f"-- only in OLD: {key[0]}: {key[1]}")
    for key in added:
        out.append(f"-- only in NEW: {key[0]}: {key[1]}")
    out.append(f"bench_report: diffed {len(set(old) & set(new))} table(s)")
    return "\n".join(out)


def is_throughput_header(h):
    """Rate columns: `*per_s` (metrics idiom) and `*/s` (table idiom)."""
    return h.endswith("per_s") or h.endswith("/s")


def throughput_ratios(old, new):
    """Every matching throughput cell as (bench, section, row label, column,
    old value, new value, new/old ratio). The same (bench, section) +
    positional row matching as diff_tables."""
    out = []
    for key in sorted(set(old) & set(new)):
        told, tnew = old[key], new[key]
        if told.get("headers") != tnew.get("headers"):
            continue
        headers = told.get("headers", [])
        for rold, rnew in zip(told.get("rows", []), tnew.get("rows", [])):
            if rold[:1] != rnew[:1]:
                continue
            for c, h in enumerate(headers):
                if not is_throughput_header(h):
                    continue
                fa = _to_float(rold[c]) if c < len(rold) else None
                fb = _to_float(rnew[c]) if c < len(rnew) else None
                if fa and fb:
                    out.append((key[0], key[1], str(rnew[0]), h, fa, fb, fb / fa))
    return out


def check_throughput(old, new, tolerance_pct):
    """The regression gate: 0 when every throughput cell of NEW is within
    `tolerance_pct` percent of OLD, 1 otherwise (regressions listed)."""
    ratios = throughput_ratios(old, new)
    if not ratios:
        print("bench_report: no matching *per_s columns between the two runs",
              file=sys.stderr)
        return 1
    floor = 1.0 - tolerance_pct / 100.0
    regressions = [r for r in ratios if r[6] < floor]
    rows = [[f"{bench}: {section}"[:60], label, column,
             f"{fa:.6g}", f"{fb:.6g}", f"{ratio:.3g}x",
             "REGRESSED" if ratio < floor else "ok"]
            for bench, section, label, column, fa, fb, ratio in ratios]
    print(render_table(
        ["table", "row", "column", "old", "new", "ratio", "verdict"], rows))
    print()
    if regressions:
        print(f"bench_report: FAIL — {len(regressions)} of {len(ratios)} "
              f"throughput cell(s) regressed beyond {tolerance_pct:g}% "
              f"(ratio < {floor:.3g})")
        return 1
    print(f"bench_report: OK — {len(ratios)} throughput cell(s) within "
          f"{tolerance_pct:g}% of baseline")
    return 0


def main():
    argv = sys.argv[1:]
    if argv[:1] == ["--check"]:
        argv = argv[1:]
        tolerance = 10.0
        if "--tolerance" in argv:
            i = argv.index("--tolerance")
            try:
                tolerance = float(argv[i + 1])
            except (IndexError, ValueError):
                print("bench_report: --tolerance needs a number", file=sys.stderr)
                return 2
            del argv[i:i + 2]
        if len(argv) != 2:
            print("usage: bench_report.py --check OLD NEW [--tolerance PCT]",
                  file=sys.stderr)
            return 2
        (old, old_meta), (new, new_meta) = load_run(argv[0]), load_run(argv[1])
        if not old or not new:
            print("bench_report: no artifacts in one of the runs", file=sys.stderr)
            return 1
        for w in host_context_warnings(old_meta, new_meta):
            print(w)
        return check_throughput(old, new, tolerance)
    if argv[:1] == ["--diff"]:
        if len(argv) != 3:
            print("usage: bench_report.py --diff OLD NEW", file=sys.stderr)
            return 2
        (old, old_meta), (new, new_meta) = load_run(argv[1]), load_run(argv[2])
        if not old or not new:
            print("bench_report: no artifacts in one of the runs", file=sys.stderr)
            return 1
        warnings = host_context_warnings(old_meta, new_meta)
        for w in warnings:
            print(w)
        if warnings:
            print()
        print(diff_tables(old, new))
        return 0
    paths = find_artifacts(argv)
    if not paths:
        print("bench_report: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    text, seen = report(paths)
    print(text)
    return 0 if seen else 1


if __name__ == "__main__":
    sys.exit(main())
