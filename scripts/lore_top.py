#!/usr/bin/env python3
"""Live terminal view of a running LORE process's /metrics.json endpoint.

Start any campaign or bench with `LORE_SERVE=<port>` (see README "Live
monitoring"), then point this at it:

  scripts/lore_top.py --url http://127.0.0.1:9464 --interval 1.0

Each refresh polls /metrics.json (schema lore.metrics.v1) and /healthz,
prints every gauge, and turns counter deltas between polls into per-second
rates — the consumer-side mirror of the in-process Aggregator. Only the
Python standard library is used.

`--fleet` renders the campaign-fabric coordinator's `fleet.*` gauges as a
progress dashboard instead of the raw dump — point it at a
`lore_fabric --serve PORT` run:

  scripts/lore_top.py --fleet --url http://127.0.0.1:9464
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_json(url, timeout):
    with urllib.request.urlopen(url, timeout=timeout) as r:
        return json.loads(r.read().decode("utf-8"))


def fetch_health(base, timeout):
    """(state, alerts_total) from /healthz; 503 still carries the body."""
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=timeout) as r:
            doc = json.loads(r.read().decode("utf-8"))
    except urllib.error.HTTPError as e:
        doc = json.loads(e.read().decode("utf-8"))
    return doc.get("status", "?"), doc.get("alerts_total", 0)


def render(snapshot, prev, dt, health):
    lines = []
    state, alerts = health
    lines.append(f"health: {state}  alerts_total: {alerts}")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'total':>14} {'rate/s':>12}")
        for name in sorted(counters):
            total = counters[name]
            rate = ""
            if prev is not None and dt > 0:
                delta = total - prev.get("counters", {}).get(name, 0)
                rate = f"{delta / dt:.6g}"
            lines.append(f"{name:<40} {total:>14} {rate:>12}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<40} {'value':>14}")
        for name in sorted(gauges):
            lines.append(f"{name:<40} {gauges[name]:>14.6g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(f"{'histogram':<40} {'count':>10} {'p50':>10} {'p99':>10}")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(f"{name:<40} {h.get('count', 0):>10} "
                         f"{h.get('p50', 0.0):>10.4g} {h.get('p99', 0.0):>10.4g}")
    return "\n".join(lines)


def render_fleet(snapshot, health):
    """Dashboard view of the fabric coordinator's fleet.* gauges (DESIGN.md
    §12): worker liveness, shard dispatch state, merged-trial progress, and
    the scraped fleet throughput."""
    g = snapshot.get("gauges", {})

    def v(name):
        return g.get("fleet." + name, 0.0)

    if not any(k.startswith("fleet.") for k in g):
        return ("no fleet.* gauges yet — is this a lore_fabric coordinator "
                "started with --serve?")
    state, alerts = health
    lines = [f"health: {state}  alerts_total: {alerts}", ""]
    lines.append(f"workers   alive {v('workers_alive'):.0f} / "
                 f"seen {v('workers_seen'):.0f}")
    lines.append(f"shards    pending {v('shards_pending'):.0f}  "
                 f"inflight {v('shards_inflight'):.0f}  "
                 f"done {v('shards_done'):.0f}  steals {v('steals'):.0f}")
    done, total = v("trials_done"), v("trials_total")
    frac = done / total if total > 0 else 0.0
    bar = "#" * int(frac * 40) + "." * (40 - int(frac * 40))
    lines.append(f"trials    [{bar}] {done:.0f}/{total:.0f} ({frac:6.1%})")
    lines.append(f"merge     rejects {v('payload_rejects'):.0f}  "
                 f"duplicates discarded {v('duplicates_discarded'):.0f}")
    lines.append(f"rate      {v('trials_per_s'):.6g} trials/s (scraped from "
                 f"worker /metrics)")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--url", default="http://127.0.0.1:9464",
                    help="base URL of the LORE exposition server")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="seconds between polls")
    ap.add_argument("--iterations", type=int, default=0,
                    help="stop after N polls (0 = until interrupted)")
    ap.add_argument("--timeout", type=float, default=2.0,
                    help="per-request timeout in seconds")
    ap.add_argument("--fleet", action="store_true",
                    help="render the campaign fabric's fleet.* gauges as a "
                         "progress dashboard (coordinator endpoint)")
    ap.add_argument("--max-failures", type=int, default=5,
                    help="give up after N consecutive failed polls "
                         "(0 = keep retrying forever)")
    args = ap.parse_args()
    base = args.url.rstrip("/")

    # A process dying mid-scrape (fabric worker SIGKILLed, campaign finished)
    # must not kill the dashboard: failed polls mark the view STALE and the
    # loop keeps retrying, giving up only after --max-failures in a row.
    prev, prev_t, n, failures = None, None, 0, 0
    try:
        while True:
            stale_err = None
            try:
                snapshot = fetch_json(base + "/metrics.json", args.timeout)
                health = fetch_health(base, args.timeout)
                failures = 0
            except (urllib.error.URLError, OSError, ValueError) as e:
                failures += 1
                stale_err = e
                if args.max_failures and failures >= args.max_failures:
                    print(f"lore_top: {base}: unreachable after {failures} "
                          f"consecutive polls: {e}", file=sys.stderr)
                    return 1
            now = time.monotonic()
            dt = (now - prev_t) if prev_t is not None else 0.0
            # ANSI clear screen + home; harmless when piped to a file.
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            if stale_err is not None:
                print(f"lore_top — {base}  (poll {n + 1}, STALE: "
                      f"{failures} failed poll(s))")
                print(f"last error: {stale_err}")
                if prev is not None:
                    print("showing last good snapshot:")
                    if args.fleet:
                        print(render_fleet(prev, ("stale", "?")))
                    else:
                        print(render(prev, None, 0.0, ("stale", "?")))
            else:
                print(f"lore_top — {base}  (poll {n + 1}, dt {dt:.2f}s)")
                if args.fleet:
                    print(render_fleet(snapshot, health))
                else:
                    print(render(snapshot, prev, dt, health))
                prev, prev_t = snapshot, now
            sys.stdout.flush()
            n += 1
            if args.iterations and n >= args.iterations:
                return 0 if stale_err is None else 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
