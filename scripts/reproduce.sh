#!/usr/bin/env bash
# Build, test, and regenerate every reproduced figure/experiment of the paper.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done
echo "done: see test_output.txt and bench_output.txt"
