#!/usr/bin/env bash
# Build, test, and regenerate every reproduced figure/experiment of the paper.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# TSAN=1 additionally runs the `parallel`-, `resilience`-, `obs`-, `simd`-,
# `fabric`-, `ml`-, `scenario`-, and `tracing`-labeled determinism/race
# suites — campaign engine, the live telemetry pipeline (event-ring producers
# vs the aggregator drain and serve threads), the chunked batch engine with
# its thread-local arenas, the Predictor's background trainer racing
# observers/scorers, the scenario engine's threaded composed campaigns, and
# the distributed-tracing/flight-recorder paths (concurrent span id handoff,
# the mmap'd flight ring's multi-writer cursor) — under ThreadSanitizer (the
# `tsan` CMake preset).
if [ "${TSAN:-0}" = "1" ]; then
  cmake --preset tsan
  cmake --build build-tsan --target lore_parallel_tests lore_resilience_tests lore_obs_tests lore_simd_tests lore_fabric_tests lore_ml_batch_tests lore_scenario_tests lore_tracing_tests
  ctest --test-dir build-tsan -L '(parallel|resilience|obs|simd|fabric|ml|scenario|tracing)' --output-on-failure 2>&1 | tee tsan_output.txt
fi

# Smoke the -DLORE_OBS=OFF build (the `obs-off` preset): the telemetry
# pipeline compiles out to no-ops, campaigns still run, and the obs suite's
# compile-switch-aware tests pass against the stubbed Pipeline/Aggregator.
if [ "${OBS_OFF:-0}" = "1" ]; then
  cmake --preset obs-off
  cmake --build build-obs-off --target lore_obs_tests
  ctest --test-dir build-obs-off -L obs --output-on-failure 2>&1 | tee obs_off_output.txt
fi

# Smoke the -DLORE_SIMD=OFF build (the `simd-off` preset): the AVX2 kernel
# variants compile out, dispatch clamps to scalar, and the differential
# `simd` suite still proves the batch engine against the reference.
if [ "${SIMD_OFF:-0}" = "1" ]; then
  cmake --preset simd-off
  cmake --build build-simd-off --target lore_simd_tests
  ctest --test-dir build-simd-off -L simd --output-on-failure 2>&1 | tee simd_off_output.txt
fi

# PRUNE=1 smokes the online predict-and-prune campaign loop end to end: the
# example warms a Predictor on a real fault-injection campaign, prunes a
# second campaign, and --verify re-runs it with audit=1.0, exiting 1 unless
# the executed outcomes are bit-identical to the unpruned reference.
if [ "${PRUNE:-0}" = "1" ]; then
  cmake --build build --target ex_predict_prune
  ./build/examples/predict_prune --verify 2>&1 | tee prune_output.txt
fi

# SCENARIO=1 smokes the declarative scenario DSL end to end: each committed
# .scenario.json is re-run at 1/4/hw threads by `lore_scenario --verify`
# (exit 1 unless the result fingerprints are bit-identical), then a seeded
# 100-scenario generative sweep runs the differential invariant checker
# across every composed campaign.
if [ "${SCENARIO:-0}" = "1" ]; then
  cmake --build build --target ex_lore_scenario
  : > scenario_output.txt
  for s in scenarios/*.scenario.json; do
    ./build/examples/lore_scenario --verify "$s" 2>&1 | tee -a scenario_output.txt
  done
  ./build/examples/lore_scenario --sweep 100 --seed 2026 2>&1 | tee -a scenario_output.txt
fi

# FABRIC=1 smokes the sharded multi-process campaign fabric end to end: a
# 2-worker coordinator run of the same campaign as the single-process
# reference, diffed by the driver's --verify (exit 1 on any bit difference).
if [ "${FABRIC:-0}" = "1" ]; then
  cmake --build build --target ex_lore_fabric
  ./build/examples/lore_fabric --campaign arch.fault --workload dot_product \
    --scale 16 --trials 400 --workers 2 --verify 2>&1 | tee fabric_output.txt
  ./build/examples/lore_fabric --campaign arch.pipeline --workload checksum \
    --scale 12 --trials 200 --workers 2 --verify 2>&1 | tee -a fabric_output.txt
fi

# POSTMORTEM=1 smokes the crash-forensics path end to end: a 2-worker fabric
# run with per-worker flight rings, one worker SIGKILLed mid-campaign. The
# campaign must still verify bit-identical (straggler re-dispatch), and
# lore_postmortem.py decoding the dead worker's torn ring must name the
# fabric shard that was inflight at death.
if [ "${POSTMORTEM:-0}" = "1" ]; then
  cmake --build build --target ex_lore_fabric
  FLIGHT_DIR="$(mktemp -d)"
  # matmul is heavy enough that the 200ms kill is guaranteed to land while
  # the victim is still mid-shard (the whole campaign runs for seconds).
  ./build/examples/lore_fabric --campaign arch.fault --workload matmul \
    --scale 16 --trials 4000 --workers 2 --shards 8 --verify \
    --flight-dir "$FLIGHT_DIR" --chaos-kill 200 2>&1 | tee postmortem_output.txt
  KILLED_PID="$(sed -n 's/^chaos: killed worker pid=\([0-9]*\)$/\1/p' postmortem_output.txt)"
  python3 scripts/lore_postmortem.py "$FLIGHT_DIR/flight-$KILLED_PID.ring" \
    2>&1 | tee -a postmortem_output.txt
  grep -q "inflight fabric shard at death:" postmortem_output.txt \
    || { echo "POSTMORTEM: decoded ring did not name the inflight shard" >&2; exit 1; }
  rm -rf "$FLIGHT_DIR"
fi

: > bench_output.txt
# Each bench also drops a machine-readable BENCH_<name>.json artifact
# (schema lore.bench.v1) into $LORE_BENCH_DIR.
export LORE_BENCH_DIR="${LORE_BENCH_DIR:-bench_artifacts}"
mkdir -p "$LORE_BENCH_DIR"
# Figure-series campaigns checkpoint into $LORE_CHECKPOINT_DIR, so an
# interrupted run of this script resumes instead of restarting: rerun it and
# every completed trial is loaded from its .ckpt file. The directory is
# removed once the whole bench suite finishes cleanly.
export LORE_CHECKPOINT_DIR="${LORE_CHECKPOINT_DIR:-$LORE_BENCH_DIR/checkpoints}"
mkdir -p "$LORE_CHECKPOINT_DIR"
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done
rm -rf "$LORE_CHECKPOINT_DIR"

# Aggregate the artifacts into one trajectory report (stdlib-only python3).
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_report.py "$LORE_BENCH_DIR" 2>&1 | tee bench_report.txt
else
  echo "python3 not found; skipping bench_report.py" | tee bench_report.txt
fi

# BENCH_CHECK=1 gates the run on the committed baseline: any *per_s
# throughput in this run's artifacts more than BENCH_TOLERANCE percent
# (default 25) below bench/samples/ fails the script. The generous default
# absorbs machine noise; tighten it on a quiet, pinned box.
if [ "${BENCH_CHECK:-0}" = "1" ]; then
  python3 scripts/bench_report.py --check bench/samples "$LORE_BENCH_DIR" \
    --tolerance "${BENCH_TOLERANCE:-25}" 2>&1 | tee bench_check.txt
fi
echo "done: see test_output.txt, bench_output.txt, and bench_report.txt"
