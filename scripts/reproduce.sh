#!/usr/bin/env bash
# Build, test, and regenerate every reproduced figure/experiment of the paper.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# TSAN=1 additionally runs the `parallel`-labeled determinism/race suite of
# the campaign engine under ThreadSanitizer (the `tsan` CMake preset).
if [ "${TSAN:-0}" = "1" ]; then
  cmake --preset tsan
  cmake --build build-tsan --target lore_parallel_tests
  ctest --test-dir build-tsan -L parallel --output-on-failure 2>&1 | tee tsan_output.txt
fi

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done
echo "done: see test_output.txt and bench_output.txt"
