#!/usr/bin/env python3
"""Post-mortem decoder for `lore.flight.v1` flight-recorder rings.

A LORE process started with LORE_FLIGHT=<file> (or a fabric worker under
LORE_FLIGHT_DIR) keeps an mmap-backed on-disk ring of its last N telemetry
events (src/obs/flight.hpp). Because the mapping lives in the page cache,
the ring survives SIGKILL and fatal signals — this script turns any ring,
cleanly sealed or torn mid-write, into a human-readable timeline:

  scripts/lore_postmortem.py /tmp/flight-12345.ring
  scripts/lore_postmortem.py --last 32 --json ring.out

Reported, in order: how the process died (seal state), the inflight fabric
shard at death (last shard_begin without a matching shard_end), the spans
still open at death, the last --last events, and per-trial causal chains for
trials that retried or failed. Only the Python standard library is used.
"""

import argparse
import json
import signal
import struct
import sys

MAGIC = b"LOREFLT1"
HEADER_BYTES = 4096
RECORD_BYTES = 64
# FlightHeaderRaw: magic[8], version u32, record_size u32, capacity u64,
# cursor u64, pid u32, seal_signal i32, sealed u32, reserved u32, seal_t_us f64
HEADER_FMT = "<8sIIQQIiIId"
# FlightSlot: seq u64, t_us f64, a u64, value f64, span u64, kind u8, pad u8,
# tid u16, label[16], crc u32 (crc covers the first 60 bytes)
RECORD_FMT = "<QdQdQBBH16sI"

# lore.events.v1 kinds (src/obs/ring.hpp); index = wire value.
KIND_NAMES = [
    "trial_completed", "trial_timeout", "trial_retry", "trial_failed",
    "checkpoint_written", "span_begin", "span_end", "alert",
    "trials_pruned", "shard_begin", "shard_end",
]

SEAL_NAMES = {0: "TORN", 1: "SEALED_CLEAN", 2: "SEALED_SIGNAL"}

SIGNAL_NAMES = {4: "SIGILL", 6: "SIGABRT", 7: "SIGBUS", 8: "SIGFPE",
                11: "SIGSEGV"}


def crc32_ieee(data):
    """CRC-32 (IEEE, reflected) — matches flight.cpp's table-driven CRC.
    zlib's crc32 is the same polynomial/reflection, so delegate to it."""
    import zlib
    return zlib.crc32(data) & 0xFFFFFFFF


def decode_ring(path):
    """Decode one ring file into (header dict, records list, torn count).
    Raises ValueError on a foreign or corrupt header."""
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < HEADER_BYTES:
        raise ValueError(f"{path}: too small for a lore.flight.v1 header")
    (magic, version, record_size, capacity, cursor, pid, seal_signal,
     sealed, _reserved, seal_t_us) = struct.unpack_from(HEADER_FMT, blob, 0)
    if magic != MAGIC:
        raise ValueError(f"{path}: bad magic {magic!r} (not a flight ring)")
    if version != 1 or record_size != RECORD_BYTES:
        raise ValueError(f"{path}: unsupported version {version} / "
                         f"record size {record_size}")
    if capacity == 0 or capacity & (capacity - 1):
        raise ValueError(f"{path}: capacity {capacity} is not a power of two")
    if len(blob) < HEADER_BYTES + capacity * RECORD_BYTES:
        raise ValueError(f"{path}: truncated ring body")

    header = {
        "path": path, "version": version, "capacity": capacity,
        "cursor": cursor, "pid": pid, "sealed": sealed,
        "seal_signal": seal_signal, "seal_t_us": seal_t_us,
    }

    # Live window: the newest min(cursor, capacity) sequence numbers. A slot
    # whose stored seq disagrees, or whose CRC fails, was mid-write at death.
    live = min(cursor, capacity)
    first_seq = 0 if cursor < capacity else cursor - capacity
    records, torn = [], 0
    for seq in range(first_seq, first_seq + live):
        off = HEADER_BYTES + (seq & (capacity - 1)) * RECORD_BYTES
        (sseq, t_us, a, value, span, kind, _pad, tid, label,
         crc) = struct.unpack_from(RECORD_FMT, blob, off)
        if sseq != seq or crc != crc32_ieee(blob[off:off + 60]):
            torn += 1
            continue
        records.append({
            "seq": sseq, "t_us": t_us, "a": a, "value": value,
            "span": span, "kind": kind, "tid": tid,
            "label": label.split(b"\0", 1)[0].decode("utf-8", "replace"),
        })
    return header, records, torn


def kind_name(kind):
    return KIND_NAMES[kind] if kind < len(KIND_NAMES) else f"kind{kind}"


def seal_summary(header):
    sealed = header["sealed"]
    name = SEAL_NAMES.get(sealed, f"sealed={sealed}")
    if sealed == 2:
        sig = header["seal_signal"]
        return (f"{name}: fatal {SIGNAL_NAMES.get(sig, f'signal {sig}')} at "
                f"t={header['seal_t_us'] / 1e6:.6f}s")
    if sealed == 1:
        return f"{name}: process closed the recorder normally"
    return (f"{name}: no seal — the process died uncatchably (SIGKILL, OOM "
            "kill, or power loss) or is still running")


def inflight_shard(records):
    """The shard begun but never ended — what the worker was executing when
    it died. None when every shard_begin has a matching shard_end."""
    shard = None
    for r in records:
        if kind_name(r["kind"]) == "shard_begin":
            shard = r["a"]
        elif kind_name(r["kind"]) == "shard_end" and shard == r["a"]:
            shard = None
    return shard


def open_spans(records):
    """Spans begun but not ended, oldest first, as (span id, label, t_us).
    Matched by the record's own span id, so interleaved threads resolve."""
    opened = {}
    for r in records:
        name = kind_name(r["kind"])
        if name == "span_begin":
            opened[r["span"]] = r
        elif name == "span_end":
            opened.pop(r["span"], None)
    return sorted(opened.values(), key=lambda r: r["seq"])


def trial_chains(records):
    """Per-trial causal chains for trials that struggled: trial index ->
    ordered [retry/timeout/failed/completed] records."""
    chains = {}
    for r in records:
        name = kind_name(r["kind"])
        if name in ("trial_retry", "trial_timeout", "trial_failed",
                    "trial_completed"):
            chains.setdefault(r["a"], []).append(r)
    return {t: evs for t, evs in chains.items()
            if any(kind_name(e["kind"]) != "trial_completed" for e in evs)}


def format_record(r):
    name = kind_name(r["kind"])
    extra = f" label={r['label']}" if r["label"] else ""
    span = f" span={r['span']:016x}" if r["span"] else ""
    return (f"  #{r['seq']:<8} t={r['t_us'] / 1e6:10.6f}s tid={r['tid']:<3} "
            f"{name:<19} a={r['a']:<8} value={r['value']:.6g}{span}{extra}")


def report(header, records, torn, last):
    out = [f"=== lore_postmortem: {header['path']} ===",
           f"pid {header['pid']}, capacity {header['capacity']} records, "
           f"{header['cursor']} written, {len(records)} recovered, "
           f"{torn} torn",
           seal_summary(header), ""]

    shard = inflight_shard(records)
    if shard is not None:
        out.append(f"inflight fabric shard at death: {shard}")
    spans = open_spans(records)
    if spans:
        out.append(f"open spans at death ({len(spans)}):")
        for r in spans:
            out.append(f"  {r['span']:016x}  {r['label']:<20} opened "
                       f"t={r['t_us'] / 1e6:.6f}s (parent {r['a']:016x})")
    if shard is not None or spans:
        out.append("")

    tail = records[-last:] if last else records
    out.append(f"last {len(tail)} events (of {len(records)} recovered):")
    out.extend(format_record(r) for r in tail)

    chains = trial_chains(records)
    if chains:
        out.append("")
        out.append(f"struggling trials ({len(chains)}):")
        for trial in sorted(chains)[:20]:
            steps = " -> ".join(
                kind_name(e["kind"]).replace("trial_", "")
                for e in chains[trial])
            out.append(f"  trial {trial}: {steps}")
        if len(chains) > 20:
            out.append(f"  ... and {len(chains) - 20} more")
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("rings", nargs="+", help="lore.flight.v1 ring file(s)")
    ap.add_argument("--last", type=int, default=64,
                    help="events of timeline tail to print (0 = all)")
    ap.add_argument("--json", action="store_true",
                    help="emit the decoded ring as JSON instead of a report")
    args = ap.parse_args()

    rc = 0
    for path in args.rings:
        try:
            header, records, torn = decode_ring(path)
        except (OSError, ValueError) as e:
            print(f"lore_postmortem: {e}", file=sys.stderr)
            rc = 1
            continue
        if args.json:
            print(json.dumps({"header": header, "torn_records": torn,
                              "records": records}, indent=2))
        else:
            print(report(header, records, torn, args.last))
            print()
    return rc


if __name__ == "__main__":
    # Die quietly when the report is piped into `head` and the pipe closes.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
