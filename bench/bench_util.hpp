// Shared helpers for LORE's benchmark binaries. Every bench prints the data
// series behind its paper figure as an aligned table (consumed by
// EXPERIMENTS.md), runs its google-benchmark timing section, and then emits
// one machine-readable artifact, `BENCH_<name>.json`, containing every
// printed table plus a snapshot of the global metrics registry — the repo's
// perf trajectory (`scripts/bench_report.py` aggregates the artifacts).
//
// Flags / environment understood by LORE_BENCH_MAIN:
//   --quiet         disable metrics collection and skip the JSON artifact
//   LORE_OBS=0      same as --quiet for the metrics half (env-level switch)
//   LORE_BENCH_DIR  directory for BENCH_<name>.json (default: cwd)
//   LORE_TRACE=f    additionally dump a Chrome trace of all recorded spans
//   LORE_SERVE=p    serve /metrics, /metrics.json, /intervals.json, /healthz
//                   on port p (0 = ephemeral) while the bench runs
//
// Unless --quiet / LORE_OBS=0, the live pipeline's Aggregator runs for the
// whole bench, and the artifact gains an `intervals` member — the
// `lore.intervals.v1` per-interval rate history (DESIGN.md §10).
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/campaign.hpp"
#include "src/common/kernels.hpp"
#include "src/common/table.hpp"
#include "src/obs/obs.hpp"

namespace lore::bench {

/// Wall-clock seconds spent in `fn` (for the serial-vs-parallel throughput
/// sections of the campaign benches).
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Minimum wall-clock seconds over `reps` runs of `fn`. Single-shot timing of
/// millisecond-scale sections jitters ±30% on shared hosts; the minimum is
/// the standard noise-rejecting estimator for deterministic work.
template <typename Fn>
double best_of_seconds(int reps, Fn&& fn) {
  double best = timed_seconds(fn);
  for (int i = 1; i < reps; ++i) best = std::min(best, timed_seconds(fn));
  return best;
}

/// One printed table, remembered for the JSON artifact.
struct RecordedTable {
  std::string section;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

namespace detail {

inline std::vector<RecordedTable>& recorded_tables() {
  static std::vector<RecordedTable> tables;
  return tables;
}

inline std::string& current_section() {
  static std::string section;
  return section;
}

inline bool& artifact_enabled() {
  static bool enabled = true;
  return enabled;
}

/// `build/bench/fi_acceleration` -> `fi_acceleration`.
inline std::string bench_name_from_argv0(const char* argv0) {
  std::string name = argv0 ? argv0 : "bench";
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

}  // namespace detail

inline void print_header(const std::string& experiment, const std::string& description) {
  detail::current_section() = experiment;
  std::printf("\n==== %s ====\n%s\n\n", experiment.c_str(), description.c_str());
}

inline void print_table(const Table& table) {
  detail::recorded_tables().push_back(
      {detail::current_section(), table.headers(), table.data()});
  std::fputs(table.to_string().c_str(), stdout);
}

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

/// Write `BENCH_<name>.json`: every recorded table plus the global metrics
/// snapshot. Returns the path written, or "" when writing failed.
inline std::string write_bench_artifact(const std::string& bench_name) {
  obs::Json doc = obs::Json::object();
  doc["schema"] = "lore.bench.v1";
  doc["bench"] = bench_name;
  // Host context: numbers from a different machine shape are not comparable
  // (bench_report.py --diff warns on a core-count mismatch).
  obs::Json meta = obs::Json::object();
  meta["host_cores"] = static_cast<double>(std::thread::hardware_concurrency());
  meta["build_tag"] = checkpoint_build_tag();
  meta["simd"] = kernels::dispatch_name(kernels::active_dispatch());
  doc["meta"] = std::move(meta);
  obs::Json tables = obs::Json::array();
  for (const auto& rec : detail::recorded_tables()) {
    obs::Json tj = obs::Json::object();
    tj["section"] = rec.section;
    obs::Json headers = obs::Json::array();
    for (const auto& h : rec.headers) headers.push_back(h);
    tj["headers"] = std::move(headers);
    obs::Json rows = obs::Json::array();
    for (const auto& row : rec.rows) {
      obs::Json rj = obs::Json::array();
      for (const auto& cell : row) rj.push_back(cell);
      rows.push_back(std::move(rj));
    }
    tj["rows"] = std::move(rows);
    tables.push_back(std::move(tj));
  }
  doc["tables"] = std::move(tables);
  if (auto* agg = obs::Pipeline::global().aggregator()) {
    agg->tick();  // flush the tail interval so nothing is lost to timing
    doc["intervals"] = agg->intervals_json();
  }
  doc["metrics"] = obs::metrics_to_json(obs::MetricsRegistry::global().snapshot());

  const char* dir = std::getenv("LORE_BENCH_DIR");
  std::string path = (dir && *dir) ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return path;
}

/// Everything LORE_BENCH_MAIN used to parse per-file, in one place. Filled
/// from argv/env by `parse_bench_options`; a bench with special needs can
/// build one by hand and call `bench_main` directly.
struct BenchMainOptions {
  /// --quiet: disable metrics collection and skip the JSON artifact.
  bool quiet = false;
  /// Emit BENCH_<name>.json after the run (off under --quiet).
  bool artifact = true;
  /// Artifact / display name; default derives from argv[0].
  std::string bench_name;
};

/// Strip the flags `bench_main` owns out of argv (google-benchmark rejects
/// unknown arguments) and return the resulting options.
inline BenchMainOptions parse_bench_options(int& argc, char** argv) {
  BenchMainOptions opts;
  opts.bench_name = detail::bench_name_from_argv0(argc > 0 ? argv[0] : nullptr);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      opts.quiet = true;
      opts.artifact = false;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  return opts;
}

/// The shared bench main: start the live obs pipeline (unless quiet), print
/// the report series, run the registered micro-benchmarks, emit the
/// machine-readable artifact, and flush any LORE_TRACE. Every bench binary
/// funnels through here via LORE_BENCH_MAIN.
template <typename ReportFn>
int bench_main(int argc, char** argv, ReportFn&& report) {
  const BenchMainOptions opts = parse_bench_options(argc, argv);
  if (opts.quiet) {
    obs::set_enabled(false);
    detail::artifact_enabled() = false;
  }
  if (obs::kCompiledIn && obs::enabled() && !obs::start_pipeline_from_env())
    obs::Pipeline::global().start();
  report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (opts.artifact && detail::artifact_enabled()) {
    const std::string path = write_bench_artifact(opts.bench_name);
    if (!path.empty()) std::printf("\nbench artifact: %s\n", path.c_str());
  }
  if (obs::flush_trace_if_requested())
    std::printf("trace written to %s\n", std::getenv("LORE_TRACE"));
  obs::Pipeline::global().stop();
  return 0;
}

}  // namespace lore::bench

/// Each bench defines `run_experiment_report()` (prints its series) and
/// registers micro-benchmarks; the shared `lore::bench::bench_main` runs
/// both — see BenchMainOptions for the flags/env it understands.
#define LORE_BENCH_MAIN(report_fn)                                        \
  int main(int argc, char** argv) {                                       \
    return ::lore::bench::bench_main(argc, argv, report_fn);              \
  }
