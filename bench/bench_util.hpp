// Shared helpers for LORE's benchmark binaries: every bench prints the data
// series behind its paper figure as an aligned table (consumed by
// EXPERIMENTS.md) and then runs its google-benchmark timing section.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "src/common/table.hpp"

namespace lore::bench {

/// Wall-clock seconds spent in `fn` (for the serial-vs-parallel throughput
/// sections of the campaign benches).
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

inline void print_header(const std::string& experiment, const std::string& description) {
  std::printf("\n==== %s ====\n%s\n\n", experiment.c_str(), description.c_str());
}

inline void print_table(const Table& table) { std::fputs(table.to_string().c_str(), stdout); }

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

}  // namespace lore::bench

/// Each bench defines `run_experiment_report()` (prints its series) and
/// registers micro-benchmarks; this main runs both.
#define LORE_BENCH_MAIN(report_fn)                                 \
  int main(int argc, char** argv) {                                \
    report_fn();                                                   \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    return 0;                                                      \
  }
