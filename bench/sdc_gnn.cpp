// E7 / Sec. III-B2 [24]: SDC-proneness prediction with a graph network over
// the program's instruction graph (data-dependency + control edges),
// compared against an MLP on the same per-instruction features without
// propagation. Inductive: the model predicts on programs never seen in
// training, without new fault-injection experiments.
#include "bench/bench_util.hpp"
#include "src/arch/features.hpp"
#include "src/ml/metrics.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

struct LabeledProgram {
  ml::FeatureGraph graph;
  std::vector<int> labels;  // 0 benign-dominant, 1 SDC, 2 crash/hang, -1 unknown
};

LabeledProgram label_program(const Workload& w, std::size_t trials, lore::Rng& rng) {
  FaultInjector injector(w);
  const auto campaign = injector.campaign(trials, FaultTarget::kInstruction, rng.next_u64());
  return {build_program_graph(w.program), instruction_outcome_labels(w.program, campaign)};
}

void report() {
  bench::print_header("SDC-prone instruction prediction — graph network vs MLP",
                      "Outcome classes per instruction: benign / SDC / crash+hang; "
                      "train on four kernels, test inductively on two unseen ones.");
  lore::Rng rng(61);
  // Population: the standard kernels plus random synthetic programs (the
  // kernels alone are too small to train a graph model on).
  auto workloads = standard_workloads(2, 300);
  for (int i = 0; i < 6; ++i) workloads.push_back(make_random_program(120, 400 + i));
  std::vector<LabeledProgram> programs;
  for (const auto& w : workloads) programs.push_back(label_program(w, 900, rng));

  std::vector<const ml::FeatureGraph*> train_graphs;
  std::vector<std::vector<int>> train_labels;
  for (std::size_t i = 0; i + 2 < programs.size(); ++i) {
    train_graphs.push_back(&programs[i].graph);
    train_labels.push_back(programs[i].labels);
  }

  ml::GraphNodeClassifier gnn;
  gnn.fit(train_graphs, train_labels);

  // MLP baseline on raw features (no neighbourhood aggregation).
  ml::Matrix x;
  std::vector<int> y;
  for (std::size_t i = 0; i + 2 < programs.size(); ++i) {
    for (std::size_t v = 0; v < programs[i].graph.num_nodes(); ++v) {
      if (programs[i].labels[v] < 0) continue;
      x.push_row(programs[i].graph.node_features(v));
      y.push_back(programs[i].labels[v]);
    }
  }
  ml::MlpClassifier mlp(ml::MlpConfig{.hidden = {32}, .epochs = 250});
  mlp.fit(x, y);

  Table t({"test_kernel", "gnn_accuracy", "mlp_accuracy", "labeled_nodes"});
  double gnn_total = 0.0, mlp_total = 0.0;
  int counted = 0;
  for (std::size_t i = programs.size() - 2; i < programs.size(); ++i) {
    const auto& p = programs[i];
    const auto gnn_pred = gnn.predict(p.graph);
    std::vector<int> truth, gp, mp;
    for (std::size_t v = 0; v < p.graph.num_nodes(); ++v) {
      if (p.labels[v] < 0) continue;
      truth.push_back(p.labels[v]);
      gp.push_back(gnn_pred[v]);
      mp.push_back(mlp.predict(p.graph.node_features(v)));
    }
    const double gnn_acc = ml::accuracy(truth, gp);
    const double mlp_acc = ml::accuracy(truth, mp);
    gnn_total += gnn_acc;
    mlp_total += mlp_acc;
    ++counted;
    t.add_row({workloads[i].name, fmt_sig(gnn_acc, 4), fmt_sig(mlp_acc, 4),
               std::to_string(truth.size())});
  }
  t.add_row({"mean", fmt_sig(gnn_total / counted, 4), fmt_sig(mlp_total / counted, 4), "-"});
  bench::print_table(t);
  bench::print_note(
      "Expected: both models well above the ~33% 3-class chance level on unseen "
      "programs, with the graph model competitive with the feature-only MLP; on "
      "this compact ISA the hand-crafted features already encode much of what "
      "propagation recovers automatically in [24].");
}

void BM_GraphEmbedding(benchmark::State& state) {
  const auto w = make_matmul(4, 5);
  const auto g = build_program_graph(w.program);
  ml::GraphAttentionEmbedder emb;
  for (auto _ : state) benchmark::DoNotOptimize(emb.embed(g));
}
BENCHMARK(BM_GraphEmbedding)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
