// E16 / Sec. II ([11],[12],[18]): workload-dependent circuit aging. Every
// instance ages by its own stress (activity, duty, SHE-elevated temperature);
// per-instance aged STA gives a far tighter end-of-life guardband than the
// static worst-case aging corner — and the ML library regenerates aged
// timing tables without any transient simulation.
#include "bench/bench_util.hpp"
#include "src/circuit/aging_flow.hpp"

namespace {

using namespace lore;
using namespace lore::circuit;

void report() {
  bench::print_header("Workload-dependent aging guardbands",
                      "Per-instance delta-Vth from activity/duty/SHE-elevated "
                      "temperature; aged per-instance STA vs the static worst corner.");
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.3},
      device::SelfHeatingModel{});
  AgingFlowConfig cfg{};
  device::OperatingPoint typical{};
  typical.temperature = cfg.chip_temperature;
  characterizer.characterize_library(lib, typical);
  auto nl = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 2,
                                                   .regs_per_stage = 8,
                                                   .gates_per_stage = 70});
  StaEngine sta;
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 80, .temperature_samples = 5,
      .mlp = {.hidden = {48, 48}, .learning_rate = 2e-3, .epochs = 180, .batch_size = 32}});
  ml.train(lib, characterizer, typical);
  device::AgingModel model;

  Table t({"lifetime_years", "exact_guardband", "ml_guardband", "worst_corner_guardband",
           "mean_dvth_mV", "max_dvth_mV"});
  for (double years : {1.0, 3.0, 7.0, 10.0}) {
    AgingFlowConfig point = cfg;
    point.years = years;
    const auto r = run_aging_flow(nl, lib, characterizer, ml, model, point, sta);
    t.add_numeric_row({years, r.exact_aging_guardband(), r.ml_aging_guardband(),
                       r.worst_corner_guardband(), r.mean_dvth * 1000.0,
                       r.max_dvth * 1000.0},
                      5);
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: aging guardbands grow slowly with lifetime (power-law aging) and "
      "stay well below the static worst corner (which puts max dvth at max "
      "temperature on every cell); the ML guardband ratio tracks the exact one "
      "closely because systematic characterizer bias cancels in the ratio.");
}

void BM_AgingDvth(benchmark::State& state) {
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer(CharacterizerConfig{.timestep_ps = 0.4},
                              device::SelfHeatingModel{});
  device::OperatingPoint typical{};
  characterizer.characterize_library(lib, typical);
  const auto nl = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 2,
                                                         .regs_per_stage = 6,
                                                         .gates_per_stage = 40});
  StaEngine sta;
  const auto timing = sta.run(nl, LibraryDelayModel());
  const auto she = instance_she_rise(nl, timing, 1.0);
  device::AgingModel model;
  const AgingFlowConfig cfg{};
  for (auto _ : state)
    benchmark::DoNotOptimize(instance_aging_dvth(nl, she, model, cfg));
}
BENCHMARK(BM_AgingDvth)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
