// E15 / Fig. 1: the closed learning loop. A Q-learning agent controls a
// core's V-f under drifting workload; the reward composes resiliency models
// from three layers (energy, SER, wear-out MTTF) through the registry. The
// series shows the learning curve and compares the learned policy against
// every fixed V-f policy.
//
// The experiment itself is declarative: the spec below is byte-for-byte the
// committed scenarios/crosslayer_loop.scenario.json, and the numbers printed
// here are the scenario engine's — `lore_scenario` reproduces this bench
// from the file alone.
#include "bench/bench_util.hpp"
#include "src/core/crosslayer.hpp"
#include "src/scenario/scenario.hpp"

namespace {

using namespace lore;
using namespace lore::scenario;

constexpr const char* kSpec = R"json({
  "schema": "lore.scenario.v1",
  "name": "crosslayer_loop",
  "seed": 13,
  "crosslayer": {
    "env_seed": 13,
    "alpha": 0.15,
    "gamma": 0.8,
    "epsilon": 0.3,
    "epsilon_decay": 0.97,
    "learner_seed": 31,
    "episodes": 120,
    "steps_per_episode": 200,
    "eval_episodes": 10,
    "fixed_policy_baselines": true
  }
})json";

void report() {
  bench::print_header("Cross-layer learning loop (Fig. 1)",
                      "State: (temperature, demanded load, V-f); actions: V-f levels; "
                      "reward: -energy - w*log(SER) + w*log(MTTF) - thermal excess - "
                      "undone work. Declarative twin: scenarios/crosslayer_loop.scenario.json.");
  const ScenarioResult result = run_scenario(parse_scenario(kSpec, "crosslayer_loop"));
  const CrossLayerStageResult& cl = *result.crosslayer;

  Table curve({"episode_block", "mean_reward"});
  const auto& rewards = cl.training.episode_rewards;
  for (std::size_t block = 0; block < rewards.size(); block += 20) {
    double mean = 0.0;
    const std::size_t end = std::min(block + 20, rewards.size());
    for (std::size_t e = block; e < end; ++e) mean += rewards[e];
    mean /= static_cast<double>(end - block);
    curve.add_row({std::to_string(block) + ".." + std::to_string(end - 1),
                   fmt_sig(mean, 5)});
  }
  bench::print_table(curve);

  Table fixed({"policy", "mean_reward"});
  fixed.add_row({"learned (greedy)", fmt_sig(cl.learned_eval, 5)});
  for (std::size_t vf = 0; vf < cl.fixed_policy_rewards.size(); ++vf)
    fixed.add_row({"fixed V-f level " + std::to_string(vf),
                   fmt_sig(cl.fixed_policy_rewards[vf], 5)});
  bench::print_table(fixed);
  bench::print_note(
      "Expected: late-training reward above early-training reward, and the learned "
      "policy at least matching the best fixed level (it adapts to load/temperature "
      "instead of committing to one knob setting).");
}

void BM_EnvironmentStep(benchmark::State& state) {
  core::CrossLayerEnvironment env;
  env.reset();
  for (auto _ : state) benchmark::DoNotOptimize(env.step(2));
}
BENCHMARK(BM_EnvironmentStep)->Unit(benchmark::kMicrosecond);

void BM_TrainingEpisode(benchmark::State& state) {
  core::CrossLayerEnvironment env;
  for (auto _ : state) {
    core::LearningController controller;
    benchmark::DoNotOptimize(controller.train(env, 1, 200));
  }
}
BENCHMARK(BM_TrainingEpisode)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
