// E15 / Fig. 1: the closed learning loop. A Q-learning agent controls a
// core's V-f under drifting workload; the reward composes resiliency models
// from three layers (energy, SER, wear-out MTTF) through the registry. The
// series shows the learning curve and compares the learned policy against
// every fixed V-f policy.
#include "bench/bench_util.hpp"
#include "src/core/crosslayer.hpp"

namespace {

using namespace lore;
using namespace lore::core;

void report() {
  bench::print_header("Cross-layer learning loop (Fig. 1)",
                      "State: (temperature, demanded load, V-f); actions: V-f levels; "
                      "reward: -energy - w*log(SER) + w*log(MTTF) - thermal excess - "
                      "undone work.");
  CrossLayerEnvironment env(CrossLayerConfig{.seed = 13});
  LearningController controller(ml::QLearnerConfig{.alpha = 0.15,
                                                   .gamma = 0.8,
                                                   .epsilon = 0.3,
                                                   .epsilon_decay = 0.97});
  const auto report = controller.train(env, 120, 200);

  Table curve({"episode_block", "mean_reward"});
  for (std::size_t block = 0; block < report.episode_rewards.size(); block += 20) {
    double mean = 0.0;
    const std::size_t end = std::min(block + 20, report.episode_rewards.size());
    for (std::size_t e = block; e < end; ++e) mean += report.episode_rewards[e];
    mean /= static_cast<double>(end - block);
    curve.add_row({std::to_string(block) + ".." + std::to_string(end - 1),
                   fmt_sig(mean, 5)});
  }
  bench::print_table(curve);

  // Fixed-policy comparison.
  Table fixed({"policy", "mean_reward"});
  fixed.add_row({"learned (greedy)", fmt_sig(controller.evaluate(env, 10, 200), 5)});
  for (std::size_t vf = 0; vf < env.num_actions(); ++vf) {
    double total = 0.0;
    std::size_t count = 0;
    for (int episode = 0; episode < 10; ++episode) {
      env.reset();
      for (int s = 0; s < 200; ++s) {
        total += env.step(vf).reward;
        ++count;
      }
    }
    fixed.add_row({"fixed V-f level " + std::to_string(vf),
                   fmt_sig(total / static_cast<double>(count), 5)});
  }
  bench::print_table(fixed);
  bench::print_note(
      "Expected: late-training reward above early-training reward, and the learned "
      "policy at least matching the best fixed level (it adapts to load/temperature "
      "instead of committing to one knob setting).");
}

void BM_EnvironmentStep(benchmark::State& state) {
  CrossLayerEnvironment env;
  env.reset();
  for (auto _ : state) benchmark::DoNotOptimize(env.step(2));
}
BENCHMARK(BM_EnvironmentStep)->Unit(benchmark::kMicrosecond);

void BM_TrainingEpisode(benchmark::State& state) {
  CrossLayerEnvironment env;
  for (auto _ : state) {
    LearningController controller;
    benchmark::DoNotOptimize(controller.train(env, 1, 200));
  }
}
BENCHMARK(BM_TrainingEpisode)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
