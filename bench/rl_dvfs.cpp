// E10 / Sec. IV: learning-based dynamic reliability management. The
// Q-learning DVFS governor against static and ondemand baselines on the
// multicore simulator; metrics cover every axis the paper's reward functions
// trade: energy, deadline misses, soft errors, peak temperature, MWTF, and
// wear-out MTTF.
#include "bench/bench_util.hpp"
#include "src/os/governor.hpp"

namespace {

using namespace lore;
using namespace lore::os;

struct Setup {
  Platform platform{{make_big_core(), make_big_core(), make_little_core(),
                     make_little_core()}};
  TaskSet tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 12, .total_utilization = 1.5, .seed = 7});
  std::vector<std::size_t> mapping = partition_worst_fit(tasks, {1.0, 1.0, 0.45, 0.45});
  SimConfig cfg{.duration_ms = 8000.0, .ser = {.lambda0_per_s = 1e-3}, .seed = 11};
};

void add_result(Table& t, const std::string& name, const SimResult& r) {
  t.add_row({name, fmt_sig(r.energy_j, 4), fmt_sig(r.deadline_miss_rate(), 4),
             std::to_string(r.soft_errors), fmt_sig(r.peak_temperature_k, 5),
             fmt_sig(r.mttf_years, 4), fmt_sig(r.mwtf, 4)});
}

void report() {
  bench::print_header("RL-based DVFS reliability management",
                      "4-core heterogeneous platform, 12 periodic tasks (U=1.5), "
                      "SER grows 10^3 from top to bottom V-f; governors compared on "
                      "an unseen evaluation seed.");
  Setup s;
  Table t({"governor", "energy_J", "miss_rate", "soft_errors", "peak_T_K", "mttf_years",
           "mwtf"});

  SimConfig eval_cfg = s.cfg;
  eval_cfg.seed = 12345;

  StaticGovernor top(s.platform.ladder().size() - 1);
  StaticGovernor mid(2);
  OndemandGovernor ondemand;
  {
    SystemSimulator sim(s.platform, s.tasks, s.mapping, eval_cfg);
    add_result(t, "static-top", sim.run(&top));
  }
  {
    SystemSimulator sim(s.platform, s.tasks, s.mapping, eval_cfg);
    add_result(t, "static-mid", sim.run(&mid));
  }
  {
    SystemSimulator sim(s.platform, s.tasks, s.mapping, eval_cfg);
    add_result(t, "ondemand", sim.run(&ondemand));
  }

  {
    auto rl = train_rl_governor(s.platform, s.tasks, s.mapping, s.cfg, 18);
    rl->freeze();
    SystemSimulator sim(s.platform, s.tasks, s.mapping, eval_cfg);
    add_result(t, "rl-dvfs (trained)", sim.run(rl.get()));
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: rl-dvfs sits on the Pareto front — energy below static-top, misses/"
      "faults below static-mid, MTTF above static-top (cooler, lower-voltage "
      "operation when slack allows).");

  // DPM comparison on the load regime it targets: a lightly used platform
  // where idle cores can sleep between arrivals (the paper's third knob).
  bench::print_header("DPM on a light load (U=0.5)",
                      "Timeout DPM parks idle cores; wake-on-demand costs one tick.");
  const auto light_tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 6, .total_utilization = 0.5, .seed = 23});
  const auto light_mapping = partition_worst_fit(light_tasks, {1.0, 1.0, 0.45, 0.45});
  Table d({"governor", "energy_J", "miss_rate", "core_wakeups"});
  SimConfig light_cfg{.duration_ms = 8000.0, .seed = 77};
  {
    StaticGovernor top(s.platform.ladder().size() - 1);
    SystemSimulator sim(s.platform, light_tasks, light_mapping, light_cfg);
    const auto r = sim.run(&top);
    d.add_row({"static-top", fmt_sig(r.energy_j, 4), fmt_sig(r.deadline_miss_rate(), 4),
               std::to_string(r.core_wakeups)});
  }
  {
    StaticGovernor top(s.platform.ladder().size() - 1);
    TimeoutDpmGovernor dpm(&top, 2);
    SystemSimulator sim(s.platform, light_tasks, light_mapping, light_cfg);
    const auto r = sim.run(&dpm);
    d.add_row({"dpm+static-top", fmt_sig(r.energy_j, 4), fmt_sig(r.deadline_miss_rate(), 4),
               std::to_string(r.core_wakeups)});
  }
  bench::print_table(d);
  bench::print_note(
      "Expected: DPM cuts leakage energy on the idle-heavy load at a negligible "
      "miss-rate cost (one-tick wake latency vs 20+ ms periods).");
}

void BM_SimulatedSecond(benchmark::State& state) {
  Setup s;
  s.cfg.duration_ms = 1000.0;
  StaticGovernor top(s.platform.ladder().size() - 1);
  for (auto _ : state) {
    SystemSimulator sim(s.platform, s.tasks, s.mapping, s.cfg);
    benchmark::DoNotOptimize(sim.run(&top));
  }
}
BENCHMARK(BM_SimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
