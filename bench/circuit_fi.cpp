// E17 / Sec. III-B1 [20] at the circuit level: predict the functional-failure
// criticality of gates from structural features (fan-in/out, depth, proximity
// to outputs) instead of running the full stuck-at fault-simulation campaign.
// Trained on one circuit, predicted on unseen circuits — and compared at
// shrinking fractions of the simulation budget.
#include "bench/bench_util.hpp"
#include "src/circuit/characterize.hpp"
#include "src/circuit/logicsim.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::circuit;

void report_parallel_characterization();

void report() {
  bench::print_header("Circuit fault-simulation acceleration",
                      "Stuck-at observability campaigns on random-logic blocks; "
                      "GBDT/kNN/SVM predict criticality (>0.3) from structural "
                      "features; inductive across circuits.");
  const auto lib = make_skeleton_library("lore-tech");
  lore::Rng rng(71);

  // Training population: three circuits; test: two unseen ones.
  ml::Dataset train, test;
  for (int i = 0; i < 5; ++i) {
    const auto nl =
        generate_random_logic(lib, RandomLogicConfig{.num_gates = 110,
                                                     .seed = 500 + static_cast<unsigned>(i)});
    // Resumable under LORE_CHECKPOINT_DIR (one checkpoint per circuit).
    const auto campaign = stuck_at_campaign(
        nl, {.trials = 24,
             .base_seed = rng.next_u64(),
             .checkpoint_path =
                 lore::default_checkpoint_path("circuit_fi_" + std::to_string(i))});
    const auto d = gate_criticality_dataset(nl, campaign, 0.3);
    auto& sink = i < 3 ? train : test;
    for (std::size_t r = 0; r < d.size(); ++r) sink.add(d.x.row(r), d.labels[r]);
  }

  Table t({"model", "cross_circuit_accuracy", "f1"});
  {
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 50});
    gbdt.fit(train.x, train.labels);
    const auto pred = gbdt.predict_batch(test.x);
    t.add_row({"gbdt", fmt_sig(ml::accuracy(test.labels, pred), 4),
               fmt_sig(ml::binary_confusion(test.labels, pred).f1(), 4)});
  }
  {
    ml::KnnClassifier knn(7);
    knn.fit(train.x, train.labels);
    const auto pred = knn.predict_batch(test.x);
    t.add_row({"knn", fmt_sig(ml::accuracy(test.labels, pred), 4),
               fmt_sig(ml::binary_confusion(test.labels, pred).f1(), 4)});
  }
  {
    ml::LinearSvm svm;
    svm.fit(train.x, train.labels);
    const auto pred = svm.predict_batch(test.x);
    t.add_row({"svm", fmt_sig(ml::accuracy(test.labels, pred), 4),
               fmt_sig(ml::binary_confusion(test.labels, pred).f1(), 4)});
  }
  bench::print_table(t);

  // Budget sweep: accuracy vs fraction of the training campaign used.
  Table sweep({"train_fraction", "gbdt_accuracy"});
  for (double fraction : {0.1, 0.2, 0.5, 1.0}) {
    lore::Rng pick(73);
    const auto n = std::max<std::size_t>(
        10, static_cast<std::size_t>(fraction * static_cast<double>(train.size())));
    const auto idx = pick.sample_indices(train.size(), std::min(n, train.size()));
    const auto sub = train.subset(idx);
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 50});
    gbdt.fit(sub.x, sub.labels);
    sweep.add_numeric_row({fraction, ml::accuracy(test.labels, gbdt.predict_batch(test.x))},
                          4);
  }
  bench::print_table(sweep);
  bench::print_note(
      "Expected ([20] shape): cross-circuit accuracy well above the base rate, with "
      "~20% of the campaign data already within a few points of the full-data "
      "accuracy.");
  report_parallel_characterization();
}

void report_parallel_characterization() {
  bench::print_header(
      "Cell-characterization sweep — serial vs parallel throughput",
      "Full skeleton-library characterization (every cell, every arc, SHE "
      "table) at a SPICE-like 0.05 ps timestep; cells are independent grid "
      "sweeps, so the tables are bit-identical at any thread count.");
  const device::OperatingPoint op{};
  const circuit::CharacterizerConfig grid{};  // default axes + 0.05 ps step
  circuit::Characterizer characterizer(grid, device::SelfHeatingModel{});

  auto serial_lib = make_skeleton_library("serial");
  const double serial_s = bench::timed_seconds(
      [&] { characterizer.characterize_library(serial_lib, op, 1); });
  const double evals = static_cast<double>(characterizer.evaluations());

  Table t({"threads", "seconds", "sims_per_s", "speedup_vs_serial", "bit_identical"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    double elapsed = serial_s;
    auto lib = make_skeleton_library("parallel");
    if (threads != 1) {
      characterizer.reset_evaluations();
      elapsed = bench::timed_seconds(
          [&] { characterizer.characterize_library(lib, op, threads); });
    }
    bool identical = true;
    if (threads != 1) {
      for (std::size_t c = 0; c < serial_lib.size() && identical; ++c) {
        const auto sv = serial_lib.cell(c).she_temperature.values();
        const auto pv = lib.cell(c).she_temperature.values();
        for (std::size_t i = 0; i < sv.size(); ++i) identical &= sv[i] == pv[i];
        for (std::size_t a = 0; a < serial_lib.cell(c).arcs.size(); ++a) {
          const auto sd = serial_lib.cell(c).arcs[a].rise_delay.values();
          const auto pd = lib.cell(c).arcs[a].rise_delay.values();
          for (std::size_t i = 0; i < sd.size(); ++i) identical &= sd[i] == pd[i];
        }
      }
    }
    t.add_row({std::to_string(threads), fmt_sig(elapsed, 4),
               fmt_sig(evals / elapsed, 4), fmt_sig(serial_s / elapsed, 3),
               identical ? "yes" : "NO"});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: the characterization wall-clock drops with core count while "
      "every table stays bit-identical — the precondition for the ML "
      "characterizer comparison above it.");
}

void BM_StuckAtCampaign(benchmark::State& state) {
  const auto lib = make_skeleton_library("lore-tech");
  const auto nl = generate_random_logic(lib, RandomLogicConfig{.num_gates = 60});
  lore::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(stuck_at_campaign(nl, {.trials = 8, .base_seed = rng.next_u64()}));
}
BENCHMARK(BM_StuckAtCampaign)->Unit(benchmark::kMillisecond);

void BM_LogicEvaluate(benchmark::State& state) {
  const auto lib = make_skeleton_library("lore-tech");
  const auto nl = generate_random_logic(lib, RandomLogicConfig{.num_gates = 200});
  LogicSimulator sim(&nl);
  std::vector<bool> pi(nl.primary_inputs().size(), true);
  for (auto _ : state) benchmark::DoNotOptimize(sim.evaluate(pi));
}
BENCHMARK(BM_LogicEvaluate)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
