// E17 / Sec. III-B1 [20] at the circuit level: predict the functional-failure
// criticality of gates from structural features (fan-in/out, depth, proximity
// to outputs) instead of running the full stuck-at fault-simulation campaign.
// Trained on one circuit, predicted on unseen circuits — and compared at
// shrinking fractions of the simulation budget.
#include "bench/bench_util.hpp"
#include "src/circuit/logicsim.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::circuit;

void report() {
  bench::print_header("Circuit fault-simulation acceleration",
                      "Stuck-at observability campaigns on random-logic blocks; "
                      "GBDT/kNN/SVM predict criticality (>0.3) from structural "
                      "features; inductive across circuits.");
  const auto lib = make_skeleton_library("lore-tech");
  lore::Rng rng(71);

  // Training population: three circuits; test: two unseen ones.
  ml::Dataset train, test;
  for (int i = 0; i < 5; ++i) {
    const auto nl =
        generate_random_logic(lib, RandomLogicConfig{.num_gates = 110,
                                                     .seed = 500 + static_cast<unsigned>(i)});
    const auto campaign = stuck_at_campaign(nl, 24, rng);
    const auto d = gate_criticality_dataset(nl, campaign, 0.3);
    auto& sink = i < 3 ? train : test;
    for (std::size_t r = 0; r < d.size(); ++r) sink.add(d.x.row(r), d.labels[r]);
  }

  Table t({"model", "cross_circuit_accuracy", "f1"});
  {
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 50});
    gbdt.fit(train.x, train.labels);
    const auto pred = gbdt.predict_batch(test.x);
    t.add_row({"gbdt", fmt_sig(ml::accuracy(test.labels, pred), 4),
               fmt_sig(ml::binary_confusion(test.labels, pred).f1(), 4)});
  }
  {
    ml::KnnClassifier knn(7);
    knn.fit(train.x, train.labels);
    const auto pred = knn.predict_batch(test.x);
    t.add_row({"knn", fmt_sig(ml::accuracy(test.labels, pred), 4),
               fmt_sig(ml::binary_confusion(test.labels, pred).f1(), 4)});
  }
  {
    ml::LinearSvm svm;
    svm.fit(train.x, train.labels);
    const auto pred = svm.predict_batch(test.x);
    t.add_row({"svm", fmt_sig(ml::accuracy(test.labels, pred), 4),
               fmt_sig(ml::binary_confusion(test.labels, pred).f1(), 4)});
  }
  bench::print_table(t);

  // Budget sweep: accuracy vs fraction of the training campaign used.
  Table sweep({"train_fraction", "gbdt_accuracy"});
  for (double fraction : {0.1, 0.2, 0.5, 1.0}) {
    lore::Rng pick(73);
    const auto n = std::max<std::size_t>(
        10, static_cast<std::size_t>(fraction * static_cast<double>(train.size())));
    const auto idx = pick.sample_indices(train.size(), std::min(n, train.size()));
    const auto sub = train.subset(idx);
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 50});
    gbdt.fit(sub.x, sub.labels);
    sweep.add_numeric_row({fraction, ml::accuracy(test.labels, gbdt.predict_batch(test.x))},
                          4);
  }
  bench::print_table(sweep);
  bench::print_note(
      "Expected ([20] shape): cross-circuit accuracy well above the base rate, with "
      "~20% of the campaign data already within a few points of the full-data "
      "accuracy.");
}

void BM_StuckAtCampaign(benchmark::State& state) {
  const auto lib = make_skeleton_library("lore-tech");
  const auto nl = generate_random_logic(lib, RandomLogicConfig{.num_gates = 60});
  lore::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(stuck_at_campaign(nl, 8, rng));
}
BENCHMARK(BM_StuckAtCampaign)->Unit(benchmark::kMillisecond);

void BM_LogicEvaluate(benchmark::State& state) {
  const auto lib = make_skeleton_library("lore-tech");
  const auto nl = generate_random_logic(lib, RandomLogicConfig{.num_gates = 200});
  LogicSimulator sim(&nl);
  std::vector<bool> pi(nl.primary_inputs().size(), true);
  for (auto _ : state) benchmark::DoNotOptimize(sim.evaluate(pi));
}
BENCHMARK(BM_LogicEvaluate)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
