// E3 / Sec. II claim: hyperdimensional computing keeps its accuracy under
// massive component error rates (the paper: ~40 % errors cost only ~0.5 %
// accuracy), because hypervector components are i.i.d. An MLP evaluated with
// equivalent hidden-unit corruption collapses much faster.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/ml/hdc.hpp"
#include "src/ml/hdc_ref.hpp"
#include "src/ml/mlp.hpp"

namespace {

using namespace lore;
using namespace lore::ml;

struct Problem {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  std::size_t features = 6;
  std::size_t classes = 4;

  explicit Problem(std::uint64_t seed) {
    lore::Rng rng(seed);
    std::vector<std::vector<double>> centers(classes, std::vector<double>(features));
    for (auto& c : centers)
      for (auto& v : c) v = rng.uniform(0.15, 0.85);
    for (int i = 0; i < 600; ++i) {
      const auto cls = static_cast<int>(i % classes);
      std::vector<double> row(features);
      for (std::size_t f = 0; f < features; ++f)
        row[f] = std::clamp(centers[static_cast<std::size_t>(cls)][f] + rng.normal(0.0, 0.06),
                            0.0, 1.0);
      x.push_back(std::move(row));
      y.push_back(cls);
    }
  }
};

void report() {
  bench::print_header("HDC robustness — accuracy vs component error rate",
                      "4-class classification; HDC prototypes over 4096-dim bipolar "
                      "hypervectors vs an MLP with equivalent hidden corruption.");
  Problem problem(11);
  RecordEncoder encoder(
      std::vector<std::pair<double, double>>(problem.features, {0.0, 1.0}),
      RecordEncoderConfig{.dim = 4096, .levels = 24});
  HdcClassifier hdc(&encoder);
  hdc.fit(problem.x, problem.y);

  Matrix mx;
  for (const auto& row : problem.x) mx.push_row(row);
  MlpClassifier mlp(MlpConfig{.hidden = {32}, .epochs = 150});
  mlp.fit(mx, problem.y);

  lore::Rng noise(21);
  Table t({"component_error_rate", "hdc_accuracy", "hdc_drop_pct", "mlp_accuracy"});
  double hdc_clean = 0.0;
  for (double err : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    std::size_t hdc_hits = 0, mlp_hits = 0;
    for (std::size_t i = 0; i < problem.x.size(); ++i) {
      hdc_hits += hdc.predict(problem.x[i], err, &noise) == problem.y[i];
      // MLP corruption: the same fraction of first-hidden-layer activations
      // forced to a wrong extreme value.
      auto layers = mlp.network().forward_layers(problem.x[i]);
      for (auto& v : layers[1])
        if (noise.bernoulli(err)) v = noise.bernoulli(0.5) ? 10.0 : -10.0;
      const auto out = mlp.network().forward_from_layer(1, layers[1]);
      const auto pred = static_cast<int>(
          std::max_element(out.begin(), out.end()) - out.begin());
      mlp_hits += pred == problem.y[i];
    }
    const double hdc_acc = static_cast<double>(hdc_hits) / static_cast<double>(problem.x.size());
    const double mlp_acc = static_cast<double>(mlp_hits) / static_cast<double>(problem.x.size());
    if (err == 0.0) hdc_clean = hdc_acc;
    t.add_numeric_row({err, hdc_acc, (hdc_clean - hdc_acc) * 100.0, mlp_acc}, 4);
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: HDC accuracy nearly flat to ~40% errors (drop of a fraction of a "
      "percent to a few percent), while the corrupted MLP degrades far more.");
}

/// ns/op of `fn` over `iters` calls (a DoNotOptimize sink defeats DCE).
template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& fn) {
  const double secs = bench::timed_seconds([&] {
    for (std::size_t i = 0; i < iters; ++i) benchmark::DoNotOptimize(fn());
  });
  return secs * 1e9 / static_cast<double>(iters);
}

// The microbench table behind the packed engine: the same kernel on the
// original one-int8-per-component representation (src/ml/hdc_ref) vs the
// word-parallel path, at the production dim of the robustness experiment.
void kernel_speedup_report() {
  bench::print_header(
      "HDC packed vs scalar kernels (dim 4096)",
      "Scalar = original int8-per-component loops (retained reference); "
      "packed = uint64 word-parallel (bind: XOR, hamming: XOR+popcount, "
      "permute: rotate w/ carry, bundle: carry-save bit-plane counters).");
  const std::size_t dim = 4096;
  lore::Rng rng(61);
  const auto ua = hdcref::random(dim, rng);
  const auto ub = hdcref::random(dim, rng);
  const auto pa = Hypervector::pack(ua), pb = Hypervector::pack(ub);

  Table t({"kernel", "scalar_ns", "packed_ns", "speedup"});
  auto add_row = [&](const char* kernel, double scalar_ns, double packed_ns) {
    t.add_row({kernel, fmt_sig(scalar_ns, 4), fmt_sig(packed_ns, 4),
               fmt_sig(scalar_ns / packed_ns, 3)});
  };

  add_row("bind", ns_per_op(20000, [&] { return hdcref::bind(ua, ub); }),
          ns_per_op(400000, [&] { return pa.bind(pb); }));
  add_row("hamming", ns_per_op(20000, [&] { return hdcref::hamming(ua, ub); }),
          ns_per_op(400000, [&] { return pa.hamming(pb); }));
  add_row("similarity", ns_per_op(20000, [&] { return hdcref::similarity(ua, ub); }),
          ns_per_op(400000, [&] { return pa.similarity(pb); }));
  add_row("permute", ns_per_op(20000, [&] { return hdcref::permute(ua, 129); }),
          ns_per_op(400000, [&] { return pa.permute(129); }));
  {
    std::vector<std::int32_t> ref_sums(dim, 0);
    Accumulator acc(dim);
    add_row("accumulate",
            ns_per_op(20000, [&] {
              hdcref::accumulate(ref_sums, ua, 1);
              return ref_sums[0];
            }),
            ns_per_op(100000, [&] {
              acc.add(pa);
              return acc.count();
            }));
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: >= 8x on bind/hamming at dim 4096 (acceptance floor); XOR + "
      "popcount over 64 words typically lands well above that.");
}

// predict_batch thread scaling (the PR-1 contract: identical outputs for any
// team size, wall-clock drops with threads).
void batch_predict_scaling_report() {
  bench::print_header(
      "HDC batch predict — thread scaling (dim 4096, 20% component errors)",
      "predict_batch over the full 600-query robustness dataset; per-query "
      "noise streams are trial-seeded, so every team size returns the same "
      "predictions.");
  Problem problem(14);
  RecordEncoder encoder(
      std::vector<std::pair<double, double>>(problem.features, {0.0, 1.0}),
      RecordEncoderConfig{.dim = 4096, .levels = 24});
  std::vector<int> baseline;
  double t1 = 0.0;
  Table t({"threads", "batch_ms", "speedup_vs_1t", "identical_to_1t"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    HdcClassifier hdc(&encoder, HdcClassifierConfig{.threads = threads});
    hdc.fit(problem.x, problem.y);
    std::vector<int> preds;
    const double secs = bench::timed_seconds(
        [&] { preds = hdc.predict_batch(problem.x, 0.2, /*noise_seed=*/15); });
    if (threads == 1) {
      baseline = preds;
      t1 = secs;
    }
    t.add_row({std::to_string(threads), fmt_sig(secs * 1e3, 4),
               fmt_sig(t1 / secs, 3), preds == baseline ? "yes" : "NO"});
  }
  bench::print_table(t);
  bench::print_note(
      "Wall-clock scaling tracks the cores actually available; the invariance "
      "column is the contract — every team size must predict identically.");
}

void full_report() {
  report();
  kernel_speedup_report();
  batch_predict_scaling_report();
}

void BM_HdcEncode(benchmark::State& state) {
  Problem problem(12);
  RecordEncoder encoder(
      std::vector<std::pair<double, double>>(problem.features, {0.0, 1.0}),
      RecordEncoderConfig{.dim = 4096, .levels = 24});
  for (auto _ : state) benchmark::DoNotOptimize(encoder.encode(problem.x[0]));
}
BENCHMARK(BM_HdcEncode)->Unit(benchmark::kMicrosecond);

void BM_HdcPredict(benchmark::State& state) {
  Problem problem(13);
  RecordEncoder encoder(
      std::vector<std::pair<double, double>>(problem.features, {0.0, 1.0}),
      RecordEncoderConfig{.dim = 4096, .levels = 24});
  HdcClassifier hdc(&encoder);
  hdc.fit(problem.x, problem.y);
  for (auto _ : state) benchmark::DoNotOptimize(hdc.predict(problem.x[0]));
}
BENCHMARK(BM_HdcPredict)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(full_report)
