// E2 / Fig. 3: the SHE-aware timing flow. Compares the conventional
// worst-case corner against per-instance SHE-aware STA (exact transient
// characterization vs the ML-generated circuit-specific library), and
// measures the ML characterizer's speed advantage — the paper's "thousands
// of cells within seconds" claim ([9]).
#include <chrono>

#include "bench/bench_util.hpp"
#include "src/circuit/she_flow.hpp"

namespace {

using namespace lore;
using namespace lore::circuit;

void report() {
  bench::print_header("Fig. 3 — SHE-aware guardband flow",
                      "Typical corner vs worst-case corner vs per-instance SHE-aware "
                      "STA (exact and ML-generated libraries).");
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.2},
      device::SelfHeatingModel{});
  SheFlowConfig cfg;
  device::OperatingPoint typical{};
  typical.temperature = cfg.chip_temperature;
  characterizer.characterize_library(lib, typical);
  auto nl = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 3,
                                                   .regs_per_stage = 12,
                                                   .gates_per_stage = 120});
  StaEngine sta;
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 36, .temperature_samples = 4,
      .mlp = {.hidden = {40, 40}, .learning_rate = 3e-3, .epochs = 100, .batch_size = 32}});

  const auto report = run_guardband_flow(nl, lib, characterizer, ml, cfg, sta);

  Table t({"flow", "worst_arrival_ps", "guardband_vs_typical"});
  t.add_row({"typical corner", fmt_sig(report.typical_arrival_ps, 6), "1.0"});
  t.add_row({"worst-case corner", fmt_sig(report.worst_case_arrival_ps, 6),
             fmt_sig(report.worst_case_guardband(), 4)});
  t.add_row({"SHE-aware (exact per-instance)", fmt_sig(report.she_exact_arrival_ps, 6),
             fmt_sig(report.she_exact_arrival_ps / report.typical_arrival_ps, 4)});
  t.add_row({"SHE-aware (ML library)", fmt_sig(report.she_ml_arrival_ps, 6),
             fmt_sig(report.she_guardband(), 4)});
  bench::print_table(t);

  // Characterization cost: transient sims for the exact per-instance library
  // vs one-off ML training; the ML inference path re-generates instance
  // tables without any transient sim.
  Table cost({"library", "transient_sims"});
  cost.add_row({"exact per-instance", std::to_string(report.exact_evaluations)});
  cost.add_row({"ML training (one-off)", std::to_string(report.ml_training_evaluations)});
  cost.add_row({"ML per-instance generation", "0"});
  bench::print_table(cost);

  const double mape = ml.validation_mape(lib, characterizer, typical, 150, 7);
  bench::print_note("ML characterizer held-out delay MAPE: " + fmt_sig(mape * 100.0, 3) + "%");
  bench::print_note(
      "Expected: typical < SHE-aware < worst-case arrivals (less pessimistic "
      "guardbands with full SHE coverage); ML library within a few % of exact at a "
      "fraction of the transient-simulation cost.");
}

void BM_MlInstanceLibrary(benchmark::State& state) {
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer(
      CharacterizerConfig{.slew_axis_ps = {10.0, 40.0, 160.0},
                          .load_axis_ff = {1.0, 4.0, 16.0},
                          .timestep_ps = 0.4},
      device::SelfHeatingModel{});
  SheFlowConfig cfg;
  device::OperatingPoint typical{};
  typical.temperature = cfg.chip_temperature;
  characterizer.characterize_library(lib, typical);
  auto nl = generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 2,
                                                   .regs_per_stage = 8,
                                                   .gates_per_stage = 60});
  StaEngine sta;
  const auto sta_result = sta.run(nl, LibraryDelayModel());
  const auto she = instance_she_rise(nl, sta_result, 1.0);
  MlLibraryCharacterizer ml(MlCharacterizerConfig{
      .samples_per_cell = 20, .temperature_samples = 2,
      .mlp = {.hidden = {24}, .learning_rate = 3e-3, .epochs = 40, .batch_size = 32}});
  ml.train(lib, characterizer, typical);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ml.build_instance_library(nl, she, cfg, characterizer.config()));
}
BENCHMARK(BM_MlInstanceLibrary)->Unit(benchmark::kMillisecond);

void BM_TransientSim(benchmark::State& state) {
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer(CharacterizerConfig{.timestep_ps = 0.2},
                              device::SelfHeatingModel{});
  const auto& cell = lib.cell(*lib.find("NAND2_X2"));
  device::OperatingPoint op{};
  for (auto _ : state)
    benchmark::DoNotOptimize(characterizer.simulate(cell, false, 40.0, 4.0, op));
}
BENCHMARK(BM_TransientSim)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
