// E9 / Sec. III-C2: symptom-based detection. Two instruments from the paper:
//  - [30]-style activation anomaly detector (high recall/precision on
//    misclassification-causing faults at a small compute overhead);
//  - WarningNet [32]-style input monitor (early warning of perturbations
//    that will break the mission task, much smaller than the mission).
#include "bench/bench_util.hpp"
#include "src/arch/symptom.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

struct Mission {
  static constexpr std::size_t kDim = 16;
  ml::MlpClassifier classifier{ml::MlpConfig{.hidden = {48, 48}, .epochs = 150}};
  ml::Matrix inputs;

  Mission() {
    lore::Rng rng(900);
    std::vector<double> base(kDim);
    for (auto& v : base) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
    std::vector<std::vector<double>> prototypes(3, base);
    for (std::size_t k = 0; k < 3; ++k)
      for (std::size_t c = 3 * k; c < 3 * k + 3; ++c) prototypes[k][c] = -base[c];
    std::vector<int> y;
    std::vector<double> row(kDim);
    for (int i = 0; i < 360; ++i) {
      const int cls = i % 3;
      for (std::size_t c = 0; c < kDim; ++c)
        row[c] = prototypes[static_cast<std::size_t>(cls)][c] + rng.normal(0.0, 0.3);
      inputs.push_row(row);
      y.push_back(cls);
    }
    classifier.fit(inputs, y);
  }
};

void report() {
  bench::print_header("Symptom-based detection",
                      "Mission: 3-class sensor-frame classifier (48x48 MLP). Faults: "
                      "high-magnitude activation spikes; perturbations: input noise.");
  Mission mission;

  ActivationAnomalyDetector detector;
  detector.train(mission.classifier.network(), mission.inputs);
  const auto d = detector.evaluate(mission.classifier.network(), mission.inputs, 600, 5);

  InputPerturbationMonitor monitor;
  monitor.train(mission.classifier.network(), mission.inputs);
  const auto m = monitor.evaluate(mission.classifier.network(), mission.inputs, 600, 6);

  Table t({"detector", "recall", "precision", "auc", "overhead_or_speedup"});
  t.add_row({"activation anomaly [30]", fmt_sig(d.recall, 4), fmt_sig(d.precision, 4), "-",
             "overhead " + fmt_sig(d.overhead, 3) + "x"});
  t.add_row({"WarningNet input monitor [32]", fmt_sig(m.recall, 4), fmt_sig(m.precision, 4),
             fmt_sig(m.auc, 4), "speedup " + fmt_sig(m.speedup, 3) + "x"});
  bench::print_table(t);
  bench::print_note(
      "Expected ([30],[32] shape): anomaly recall/precision high at sub-1x overhead; "
      "the input monitor ranks failure-inducing inputs (AUC >> 0.5) while being many "
      "times smaller than the mission network.");
}

void BM_DetectorInference(benchmark::State& state) {
  static Mission mission;
  static ActivationAnomalyDetector detector = [] {
    ActivationAnomalyDetector d(AnomalyDetectorConfig{.train_samples = 400});
    d.train(mission.classifier.network(), mission.inputs);
    return d;
  }();
  const auto layers = mission.classifier.network().forward_layers(mission.inputs.row(0));
  for (auto _ : state) benchmark::DoNotOptimize(detector.flags(layers));
}
BENCHMARK(BM_DetectorInference)->Unit(benchmark::kMicrosecond);

void BM_MissionInference(benchmark::State& state) {
  static Mission mission;
  for (auto _ : state)
    benchmark::DoNotOptimize(mission.classifier.network().forward(mission.inputs.row(0)));
}
BENCHMARK(BM_MissionInference)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
