// E20 / Sec. VI-C: "characterize the effectiveness of applying linear and
// non-linear models in modeling resilience ... so that system designers can
// easily identify the ML models for their application-platform
// configuration". Cross-validated model selection over the full LORE
// classifier zoo on two real resilience datasets: register vulnerability
// (architecture layer) and gate criticality (circuit layer).
#include "bench/bench_util.hpp"
#include "src/arch/features.hpp"
#include "src/circuit/logicsim.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/model_selection.hpp"

namespace {

using namespace lore;

ml::Dataset register_dataset() {
  ml::Dataset all;
  lore::Rng rng(81);
  for (std::size_t scale : {1, 2, 3}) {
    for (const auto& w : arch::standard_workloads(scale, 700 + scale)) {
      arch::FaultInjector injector(w);
      const auto campaign = injector.campaign(350, arch::FaultTarget::kRegister, rng.next_u64());
      const auto d = arch::register_vulnerability_dataset(w, campaign, 0.15);
      for (std::size_t i = 0; i < d.size(); ++i) all.add(d.x.row(i), d.labels[i]);
    }
  }
  return all;
}

ml::Dataset gate_dataset() {
  ml::Dataset all;
  const auto lib = circuit::make_skeleton_library("lore-tech");
  lore::Rng rng(83);
  for (int i = 0; i < 4; ++i) {
    const auto nl = circuit::generate_random_logic(
        lib, circuit::RandomLogicConfig{.num_gates = 90,
                                        .seed = 800 + static_cast<unsigned>(i)});
    const auto campaign = circuit::stuck_at_campaign(nl, {.trials = 20, .base_seed = rng.next_u64()});
    const auto d = circuit::gate_criticality_dataset(nl, campaign, 0.3);
    for (std::size_t r = 0; r < d.size(); ++r) all.add(d.x.row(r), d.labels[r]);
  }
  return all;
}

void run_selection(const std::string& title, const ml::Dataset& data) {
  bench::print_header(title, std::to_string(data.size()) + " samples, " +
                                 std::to_string(data.features()) +
                                 " features; 5-fold cross-validation, paired splits.");
  lore::Rng rng(85);
  const auto scores = ml::select_model(ml::standard_classifier_candidates(), data, 5, rng);
  Table t({"rank", "model", "cv_accuracy", "stddev"});
  for (std::size_t i = 0; i < scores.size(); ++i)
    t.add_row({std::to_string(i + 1), scores[i].model,
               fmt_sig(scores[i].mean_accuracy, 4), fmt_sig(scores[i].stddev_accuracy, 3)});
  bench::print_table(t);
}

void report() {
  run_selection("Model selection — register vulnerability (architecture layer)",
                register_dataset());
  run_selection("Model selection — gate criticality (circuit layer)", gate_dataset());
  bench::print_note(
      "Expected (Sec. VI-C): non-linear families (trees/boosting/kNN/MLP) at or above "
      "the linear ones on both resilience tasks; the ranking is the deliverable a "
      "system designer would consult before deploying a resilience model.");
}

/// The textbook i-j-k ordering (strided column walk over the RHS) — the
/// baseline Matrix::matmul's cache-friendly i-k-j loop is measured against.
ml::Matrix matmul_ijk(const ml::Matrix& a, const ml::Matrix& b) {
  ml::Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(r, k) * b(k, c);
      out(r, c) = s;
    }
  return out;
}

void matmul_timing_report() {
  bench::print_header(
      "Matrix::matmul loop order (serial, square n x n)",
      "Library i-k-j ordering (unit-stride inner axpy from src/common/kernels) "
      "vs the naive i-j-k column walk.");
  Table t({"n", "ijk_ms", "ikj_ms", "speedup"});
  lore::Rng rng(89);
  for (const std::size_t n : {64u, 128u, 256u, 384u}) {
    ml::Matrix a(n, n), b(n, n);
    for (auto& v : a.flat()) v = rng.normal();
    for (auto& v : b.flat()) v = rng.normal();
    const std::size_t reps = std::max<std::size_t>(1, 96 / (n / 64));
    double sink = 0.0;
    const double naive_ms = bench::timed_seconds([&] {
                              for (std::size_t i = 0; i < reps; ++i)
                                sink += matmul_ijk(a, b)(0, 0);
                            }) * 1e3 / static_cast<double>(reps);
    const double ikj_ms = bench::timed_seconds([&] {
                            for (std::size_t i = 0; i < reps; ++i)
                              sink += a.matmul(b)(0, 0);
                          }) * 1e3 / static_cast<double>(reps);
    benchmark::DoNotOptimize(sink);
    t.add_row({std::to_string(n), fmt_sig(naive_ms, 4), fmt_sig(ikj_ms, 4),
               fmt_sig(naive_ms / ikj_ms, 3)});
  }
  bench::print_table(t);
}

void full_report() {
  report();
  matmul_timing_report();
}

void BM_FiveFoldCv(benchmark::State& state) {
  const auto data = register_dataset();
  for (auto _ : state) {
    lore::Rng rng(87);
    benchmark::DoNotOptimize(ml::cross_validate(
        [] { return std::make_unique<ml::KnnClassifier>(5); }, data, 5, rng));
  }
}
BENCHMARK(BM_FiveFoldCv)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(full_report)
