// E14 / Sec. V-D: "moving the wall". The paper notes the error-rate wall's
// position depends on system parameters — checkpoint granularity ([51]
// optimizes checkpoint counts) and processor speed (named as future work).
// This ablation sweeps both and reports where the wall lands.
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/common/stats.hpp"
#include "src/rollback/montecarlo.hpp"

namespace {

using namespace lore;
using namespace lore::rollback;

/// Split each segment into k sub-segments, each with its own checkpoint:
/// smaller vulnerable windows, more checkpoint overhead.
std::vector<Segment> split_segments(const std::vector<Segment>& segments, std::size_t k) {
  std::vector<Segment> out;
  out.reserve(segments.size() * k);
  for (const auto& s : segments)
    for (std::size_t i = 0; i < k; ++i) out.push_back(Segment{s.nominal_cycles / k});
  return out;
}

double hit_rate_at(const std::vector<Segment>& segments, double p,
                   const MitigationConfig& cfg, std::size_t runs, std::uint64_t seed) {
  const auto budgets = static_budgets(SchedulerKind::kDs2, segments, cfg.checkpoint);
  lore::RunningStats stats;
  for (std::size_t r = 0; r < runs; ++r) {
    lore::Rng rng(seed + r);
    stats.add(simulate_run(segments, budgets, p, cfg, rng).deadline_hit_rate);
  }
  return stats.mean();
}

double find_wall(const std::vector<Segment>& segments, const MitigationConfig& cfg) {
  for (double exponent = -7.5; exponent <= -3.0; exponent += 0.25) {
    const double p = std::pow(10.0, exponent);
    if (hit_rate_at(segments, p, cfg, 40, 777) < 0.5) return p;
  }
  return 1e-3;
}

void report() {
  bench::print_header("Error-rate-wall ablation",
                      "Wall = error probability where the DS-2x hit rate crosses 0.5. "
                      "Knobs: checkpoint granularity (sub-segmentation) and processor "
                      "speed headroom.");
  const auto base_segments = segment_adpcm_workload(SegmentationConfig{});

  Table granularity({"checkpoints_per_segment", "segments", "wall_p"});
  for (std::size_t k : {1, 2, 4, 8}) {
    const auto segments = split_segments(base_segments, k);
    MitigationConfig cfg{};
    granularity.add_row({std::to_string(k), std::to_string(segments.size()),
                         fmt_sig(find_wall(segments, cfg), 3)});
  }
  bench::print_table(granularity);

  Table speed({"speed_headroom", "wall_p"});
  for (double ratio : {1.25, 1.5, 2.0, 3.0, 4.0}) {
    MitigationConfig cfg{};
    cfg.speed_ratio = ratio;
    speed.add_row({fmt_sig(ratio, 3), fmt_sig(find_wall(base_segments, cfg), 3)});
  }
  bench::print_table(speed);
  bench::print_note(
      "Expected: finer checkpointing moves the wall toward higher error rates "
      "(smaller vulnerable windows beat the added checkpoint overhead), and more "
      "speed headroom also pushes it out — but only by fractions of a decade, since "
      "rollback growth past the wall is exponential.");
}

void BM_FindWall(benchmark::State& state) {
  const auto segments = segment_adpcm_workload(SegmentationConfig{.num_segments = 8});
  MitigationConfig cfg{};
  for (auto _ : state) benchmark::DoNotOptimize(find_wall(segments, cfg));
}
BENCHMARK(BM_FindWall)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
