// E11 / Sec. IV-A3 [2]: reliability-aware task mapping for heterogeneous
// multicores. An NN learns per-(task, core type, V-f) execution time and
// vulnerability; mapping maximizes mean workload to failure (MWTF) against
// random and performance-only baselines, also validated in full simulation.
#include "bench/bench_util.hpp"
#include "src/os/governor.hpp"
#include "src/os/mapper.hpp"

namespace {

using namespace lore;
using namespace lore::os;

void report() {
  bench::print_header("MWTF-aware task mapping (heterogeneous multicore)",
                      "2 big + 2 little cores at mixed V-f; 14 tasks; NN-predicted "
                      "vulnerability/time drives a greedy MWTF-maximizing assignment.");
  Platform platform({make_big_core(), make_big_core(), make_little_core(),
                     make_little_core()});
  platform.set_vf(0, 4);
  platform.set_vf(1, 4);
  platform.set_vf(2, 2);
  platform.set_vf(3, 2);
  SerModel ser(SerParams{.lambda0_per_s = 1e-4});
  const auto tasks = generate_taskset(
      TaskSetConfig{.num_tasks = 14, .total_utilization = 1.3, .seed = 19});

  MwtfMapper mapper;
  mapper.train(platform, ser);

  struct Candidate {
    std::string name;
    std::vector<std::size_t> mapping;
  };
  lore::Rng rng(23);
  std::vector<Candidate> candidates;
  candidates.push_back({"random", map_random(tasks, platform.num_cores(), rng)});
  candidates.push_back({"performance-only", map_performance_only(tasks, platform)});
  candidates.push_back(
      {"worst-fit (load balance)",
       partition_worst_fit(tasks, {1.0, 1.0, 0.45, 0.45})});
  candidates.push_back({"thermal-aware [39,40]", map_thermal_aware(tasks, platform)});
  candidates.push_back({"NN MWTF mapper [2]", mapper.map(tasks, platform, ser)});

  Table t({"mapping", "analytic_mwtf", "pred_peak_T_K", "sim_miss_rate", "sim_sdc",
           "sim_mwtf"});
  for (const auto& c : candidates) {
    SimConfig cfg{.duration_ms = 6000.0, .ser = {.lambda0_per_s = 0.5}, .seed = 31};
    Platform sim_platform = platform;
    SystemSimulator sim(sim_platform, tasks, c.mapping, cfg);
    StaticGovernor keep_current(4);  // bigs at top; littles follow ladder idx
    // Note: StaticGovernor sets every core to one level; to preserve the
    // heterogeneous levels we evaluate without a governor instead.
    const auto r = sim.run(nullptr);
    (void)keep_current;
    double pred_peak = 0.0;
    for (double temp : predicted_core_temperatures(tasks, c.mapping, platform))
      pred_peak = std::max(pred_peak, temp);
    t.add_row({c.name, fmt_sig(mapping_mwtf(tasks, c.mapping, platform, ser), 5),
               fmt_sig(pred_peak, 5), fmt_sig(r.deadline_miss_rate(), 4),
               std::to_string(r.sdc_failures), fmt_sig(r.mwtf, 5)});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected ([2] shape): the NN mapper's MWTF beats random and performance-only "
      "mappings while keeping the miss rate competitive (balances performance and "
      "vulnerability).");
}

void BM_MapperTraining(benchmark::State& state) {
  Platform platform({make_big_core(), make_little_core()});
  SerModel ser;
  for (auto _ : state) {
    MwtfMapper mapper(MwtfMapperConfig{.training_samples = 150,
                                       .mlp = {.hidden = {16}, .epochs = 60}});
    mapper.train(platform, ser);
    benchmark::DoNotOptimize(mapper);
  }
}
BENCHMARK(BM_MapperTraining)->Unit(benchmark::kMillisecond);

void BM_GreedyMapping(benchmark::State& state) {
  Platform platform({make_big_core(), make_big_core(), make_little_core(),
                     make_little_core()});
  SerModel ser;
  MwtfMapper mapper(MwtfMapperConfig{.training_samples = 200});
  mapper.train(platform, ser);
  const auto tasks = generate_taskset(TaskSetConfig{.num_tasks = 14});
  for (auto _ : state) benchmark::DoNotOptimize(mapper.map(tasks, platform, ser));
}
BENCHMARK(BM_GreedyMapping)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
