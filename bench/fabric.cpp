// Fleet throughput of the sharded campaign fabric (DESIGN.md §12): the same
// fault-injection campaign run single-process and through the coordinator at
// 1/2/4 worker processes, with the bit-identity contract checked on every
// row. The workers are re-exec'd copies of this binary (spawn_self_worker),
// because by the time the report runs the bench's telemetry pipeline already
// owns threads and a plain fork() would be unsafe.
#include "bench/bench_util.hpp"

#include <vector>

#include "src/arch/fault.hpp"
#include "src/common/campaign.hpp"
#include "src/common/table.hpp"
#include "src/fabric/coordinator.hpp"
#include "src/fabric/runners.hpp"
#include "src/fabric/spawn.hpp"

namespace {

using namespace lore;

constexpr std::size_t kTrials = 4000;
constexpr std::size_t kScale = 16;
constexpr std::uint64_t kSeed = 42;

obs::Json campaign_params() {
  obs::Json params = obs::Json::object();
  params["workload"] = "matmul";
  params["scale"] = static_cast<std::int64_t>(kScale);
  params["wseed"] = static_cast<std::int64_t>(7);
  params["target"] = "register";
  return params;
}

CampaignSpec campaign_spec() {
  CampaignSpec spec;
  spec.trials = kTrials;
  spec.base_seed = kSeed;
  spec.threads = 1;  // scaling comes from processes, not threads
  return spec;
}

std::vector<arch::FaultRecord> run_fleet(std::size_t workers, double& seconds) {
  const obs::Json params = campaign_params();
  const auto spec = fabric::resolve_job_spec("arch.fault", params, campaign_spec());
  fabric::CoordinatorConfig cfg;
  cfg.expected_workers = static_cast<unsigned>(workers);
  fabric::Coordinator coord;
  if (!spec || !coord.bind(cfg)) return {};

  std::vector<pid_t> kids;
  fabric::SpawnOptions sopts;
  sopts.threads = 1;
  sopts.metrics_port = 0;
  for (std::size_t i = 0; i < workers; ++i)
    kids.push_back(fabric::spawn_self_worker(coord.port(), sopts));

  CampaignCheckpoint merged;
  seconds = bench::timed_seconds([&] {
    coord.serve({"arch.fault", params, *spec});
    coord.wait();
    merged = coord.finish();
  });
  for (const pid_t pid : kids) fabric::wait_worker(pid);
  const auto result = fabric::records_from_checkpoint("arch.fault", *spec, merged);
  return result ? result->records : std::vector<arch::FaultRecord>{};
}

void run_experiment_report() {
  fabric::maybe_run_worker_from_env();  // re-exec'd children become workers here

  bench::print_header("Fabric fleet throughput",
                      "Sharded multi-process campaign vs single-process, matmul "
                      "scale " + std::to_string(kScale) + ", " +
                      std::to_string(kTrials) + " register-fault trials. Speedup is\n"
                      "bounded by the host's core count (this table is honest, not ideal).");

  const auto w = fabric::workload_from_params(campaign_params());
  const arch::FaultInjector inj(*w);
  double base_s = 0.0;
  std::vector<arch::FaultRecord> reference;
  base_s = bench::timed_seconds([&] {
    reference = inj.campaign_run(campaign_spec(), arch::FaultTarget::kRegister).records;
  });

  Table t({"config", "workers", "seconds", "trials/s", "speedup", "identical"});
  t.add_row({"single-process", "-", fmt_sig(base_s, 3),
             fmt_sig(kTrials / base_s, 4), "1.00", "-"});
  for (const std::size_t workers : {1u, 2u, 4u}) {
    double s = 0.0;
    const auto records = run_fleet(workers, s);
    t.add_row({"fabric", std::to_string(workers), fmt_sig(s, 3),
               fmt_sig(kTrials / s, 4), fmt_sig(base_s / s, 3),
               records == reference ? "yes" : "NO"});
  }
  bench::print_table(t);
  bench::print_note("identical = merged fleet records match the single-process run "
                    "bit for bit (the fabric's correctness contract).");
}

void BM_checkpoint_roundtrip(benchmark::State& state) {
  const auto w = fabric::workload_from_params(campaign_params());
  const arch::FaultInjector inj(*w);
  CampaignSpec spec = campaign_spec();
  spec.trials = 256;
  const CampaignCheckpoint ck =
      inj.campaign_shard(inj.resolved_spec(spec, arch::FaultTarget::kRegister),
                         {0, 256}, arch::FaultTarget::kRegister);
  const auto resolved = inj.resolved_spec(spec, arch::FaultTarget::kRegister);
  for (auto _ : state) {
    const std::string wire = encode_checkpoint(ck);
    auto back = decode_checkpoint(wire, resolved, "bench");
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * encode_checkpoint(ck).size()));
}
BENCHMARK(BM_checkpoint_roundtrip);

}  // namespace

LORE_BENCH_MAIN(run_experiment_report)
