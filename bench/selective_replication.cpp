// E8 / Sec. III-C1 [27] (IPAS): selective instruction replication guided by
// an SVM trained on fault-injection outcomes. The figure of merit matches
// IPAS: similar coverage to heavier protection at much less slowdown.
#include "bench/bench_util.hpp"
#include "src/arch/replicate.hpp"
#include "src/arch/features.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

void report() {
  bench::print_header("Selective replication — coverage vs slowdown",
                      "Policies: none / heuristic (mem+branch) / SVM-selected (IPAS) / "
                      "full duplication; register-fault campaigns per kernel.");
  lore::Rng rng(71);
  Table t({"kernel", "policy", "protected_insns", "slowdown", "coverage"});

  for (const auto& w : {make_checksum(14, 61), make_dot_product(14, 62)}) {
    // Train the IPAS SVM on an instruction-level campaign.
    FaultInjector injector(w);
    const auto campaign = injector.campaign(800, FaultTarget::kInstruction, rng.next_u64());
    const auto labels = instruction_vulnerability_labels(w.program, campaign, 0.25);
    ml::Matrix x;
    std::vector<int> y;
    for (std::size_t i = 0; i < w.program.size(); ++i) {
      x.push_row(instruction_features(w.program, i));
      y.push_back(labels[i]);
    }
    ml::LinearSvm svm;
    svm.fit(x, y);

    struct Policy {
      std::string name;
      std::vector<bool> mask;
    };
    const std::vector<Policy> policies{
        {"none", protect_none(w.program)},
        {"heuristic", protect_heuristic(w.program)},
        {"svm (IPAS)", protect_by_model(w.program, svm)},
        {"full", protect_all(w.program)},
    };
    for (const auto& policy : policies) {
      lore::Rng eval_rng(81);  // same campaign for every policy
      const auto eval = evaluate_policy(w, policy.mask, 160, eval_rng);
      t.add_row({w.name, policy.name, std::to_string(eval.protected_count),
                 fmt_sig(eval.slowdown, 4), fmt_sig(eval.coverage, 4)});
    }
  }
  bench::print_table(t);
  bench::print_note(
      "Expected (IPAS shape): the SVM policy approaches full-duplication coverage at "
      "clearly lower slowdown; the heuristic under-covers or over-pays.");

  // Budget-constrained ranking comparison: with only k protected
  // instructions, whose ranking catches the most failures?
  bench::print_header("Budget-constrained protection (top-k ranking quality)",
                      "At an equal instruction budget, rank by SVM margin vs random "
                      "vs static fan-out.");
  Table budget({"kernel", "k", "svm_coverage", "fanout_coverage", "random_coverage"});
  for (const auto& w : {make_checksum(14, 61), make_dot_product(14, 62)}) {
    FaultInjector injector(w);
    const auto campaign = injector.campaign(800, FaultTarget::kInstruction, rng.next_u64());
    const auto labels = instruction_vulnerability_labels(w.program, campaign, 0.25);
    ml::Matrix x;
    std::vector<int> y;
    for (std::size_t i = 0; i < w.program.size(); ++i) {
      x.push_row(instruction_features(w.program, i));
      y.push_back(labels[i]);
    }
    ml::LinearSvm svm;
    svm.fit(x, y);

    std::vector<double> svm_scores(w.program.size()), fanout_scores(w.program.size()),
        random_scores(w.program.size());
    lore::Rng score_rng(91);
    for (std::size_t i = 0; i < w.program.size(); ++i) {
      svm_scores[i] = svm.decision(instruction_features(w.program, i));
      fanout_scores[i] = instruction_features(w.program, i)[6];  // result fan-out
      random_scores[i] = score_rng.uniform();
    }
    for (std::size_t k : {2, 4, 6}) {
      lore::Rng ra(95), rb(95), rc(95);
      const auto svm_eval =
          evaluate_policy(w, protect_top_k(w.program, svm_scores, k), 140, ra);
      const auto fan_eval =
          evaluate_policy(w, protect_top_k(w.program, fanout_scores, k), 140, rb);
      const auto rnd_eval =
          evaluate_policy(w, protect_top_k(w.program, random_scores, k), 140, rc);
      budget.add_row({w.name, std::to_string(k), fmt_sig(svm_eval.coverage, 4),
                      fmt_sig(fan_eval.coverage, 4), fmt_sig(rnd_eval.coverage, 4)});
    }
  }
  bench::print_table(budget);
  bench::print_note(
      "Expected: from budgets of ~4 instructions up, the SVM ranking clearly beats "
      "random and fan-out selection (IPAS's point: learned selection concentrates "
      "protection where failures actually flow).");
}

void BM_TaintDetection(benchmark::State& state) {
  const auto w = make_checksum(14, 61);
  SelectiveReplication repl(w, protect_all(w.program));
  const FaultSite site{FaultTarget::kRegister, 3, 12, 20};
  for (auto _ : state) benchmark::DoNotOptimize(repl.detects(site));
}
BENCHMARK(BM_TaintDetection)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
