// E4 / Sec. II [18]: an HDC model mimics the foundry's confidential
// physics-based aging model. LORE's reaction-diffusion NBTI+HCI model plays
// the confidential role: the HDC regressor trains on (stress stimulus ->
// delta-Vth) pairs and, once trained, exposes a non-pessimistic aging
// estimate without revealing the physics parameters — enabling
// close-to-the-edge guardbands instead of worst-case ones.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/common/stats.hpp"
#include "src/device/aging.hpp"
#include "src/ml/hdc.hpp"

namespace {

using namespace lore;
using namespace lore::ml;

void report() {
  bench::print_header("HDC aging-model mimicry (delta-Vth prediction)",
                      "Ground truth: reaction-diffusion NBTI + HCI ('confidential "
                      "foundry model'); HDC regressor trained on stress stimuli.");
  device::AgingModel foundry_model;

  // Stimulus space: vdd, temperature, duty, activity, log-time.
  const std::vector<std::pair<double, double>> ranges{
      {0.6, 1.1}, {300.0, 400.0}, {0.05, 1.0}, {0.05, 2.0}, {-1.0, 1.3}};
  RecordEncoder encoder(ranges, RecordEncoderConfig{.dim = 8192, .levels = 48});
  HdcRegressor hdc(&encoder, HdcRegressorConfig{.target_levels = 40});

  lore::Rng rng(31);
  auto sample_stress = [&](device::StressCondition* stress, std::vector<double>* features) {
    stress->vdd = rng.uniform(0.6, 1.1);
    stress->temperature = rng.uniform(300.0, 400.0);
    stress->duty_cycle = rng.uniform(0.05, 1.0);
    stress->toggle_rate_ghz = rng.uniform(0.05, 2.0);
    const double log_years = rng.uniform(-1.0, 1.3);  // 0.1 .. 20 years
    stress->years = std::pow(10.0, log_years);
    *features = {stress->vdd, stress->temperature, stress->duty_cycle,
                 stress->toggle_rate_ghz, log_years};
  };

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 1500; ++i) {
    device::StressCondition stress;
    std::vector<double> features;
    sample_stress(&stress, &features);
    x.push_back(std::move(features));
    y.push_back(foundry_model.delta_vth(stress));
  }
  hdc.fit(x, y);

  // Held-out evaluation against the worst-case estimate designers would
  // otherwise use (the model's maximum over the stimulus space).
  const double worst_case = *std::max_element(y.begin(), y.end());
  RunningStats abs_err, margin_hdc, margin_wc;
  for (int i = 0; i < 400; ++i) {
    device::StressCondition stress;
    std::vector<double> features;
    sample_stress(&stress, &features);
    const double truth = foundry_model.delta_vth(stress);
    const double pred = hdc.predict(features);
    abs_err.add(std::abs(pred - truth));
    // Guardband margin: how much headroom each approach reserves over truth.
    margin_hdc.add(std::max(0.0, pred - truth));
    margin_wc.add(worst_case - truth);
  }

  Table t({"estimator", "mean_abs_err_mV", "mean_overmargin_mV"});
  t.add_row({"HDC mimic", fmt_sig(abs_err.mean() * 1000.0, 4),
             fmt_sig(margin_hdc.mean() * 1000.0, 4)});
  t.add_row({"worst-case corner", "-", fmt_sig(margin_wc.mean() * 1000.0, 4)});
  bench::print_table(t);
  bench::print_note(
      "Expected: HDC prediction error of a few mV — orders of magnitude less "
      "pessimism than the worst-case margin, while the physics parameters stay "
      "hidden inside hypervectors.");
}

// End-to-end cost of the aging-mimicry pipeline on the packed engine vs the
// retained scalar reference path (LORE_HDC_SCALAR mode: every kernel
// round-trips through the original int8 loops).
void packed_vs_scalar_report() {
  bench::print_header(
      "HDC aging model — packed engine vs scalar reference path (dim 8192)",
      "Regressor fit (600 samples) and predict (200 queries) with the "
      "word-parallel kernels vs LORE_HDC_SCALAR reference mode.");
  const std::vector<std::pair<double, double>> ranges{
      {0.6, 1.1}, {300.0, 400.0}, {0.05, 1.0}, {0.05, 2.0}, {-1.0, 1.3}};

  lore::Rng rng(33);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  device::AgingModel foundry_model;
  for (int i = 0; i < 600; ++i) {
    device::StressCondition stress;
    stress.vdd = rng.uniform(0.6, 1.1);
    stress.temperature = rng.uniform(300.0, 400.0);
    stress.duty_cycle = rng.uniform(0.05, 1.0);
    stress.toggle_rate_ghz = rng.uniform(0.05, 2.0);
    const double log_years = rng.uniform(-1.0, 1.3);
    stress.years = std::pow(10.0, log_years);
    x.push_back({stress.vdd, stress.temperature, stress.duty_cycle,
                 stress.toggle_rate_ghz, log_years});
    y.push_back(foundry_model.delta_vth(stress));
  }

  struct Run {
    double fit_ms = 0.0, predict_ms = 0.0, checksum = 0.0;
  };
  auto run_mode = [&](bool scalar) {
    ml::set_hdc_scalar_reference_mode(scalar);
    Run r;
    RecordEncoder encoder(ranges, RecordEncoderConfig{.dim = 8192, .levels = 48});
    HdcRegressor hdc(&encoder, HdcRegressorConfig{.target_levels = 40, .threads = 1});
    r.fit_ms = bench::timed_seconds([&] { hdc.fit(x, y); }) * 1e3;
    r.predict_ms = bench::timed_seconds([&] {
      for (int i = 0; i < 200; ++i) r.checksum += hdc.predict(x[static_cast<std::size_t>(i)]);
    }) * 1e3;
    return r;
  };
  const Run scalar = run_mode(true);
  const Run packed = run_mode(false);
  ml::set_hdc_scalar_reference_mode(false);

  Table t({"stage", "scalar_ms", "packed_ms", "speedup", "bit_identical"});
  const char* same = scalar.checksum == packed.checksum ? "yes" : "NO";
  t.add_row({"fit (600 samples)", fmt_sig(scalar.fit_ms, 4), fmt_sig(packed.fit_ms, 4),
             fmt_sig(scalar.fit_ms / packed.fit_ms, 3), "-"});
  t.add_row({"predict (200 queries)", fmt_sig(scalar.predict_ms, 4),
             fmt_sig(packed.predict_ms, 4),
             fmt_sig(scalar.predict_ms / packed.predict_ms, 3), same});
  bench::print_table(t);
  bench::print_note(
      "Reference mode pays pack/unpack on every kernel on top of the scalar "
      "loops; it exists for differential testing, not production.");
}

void full_report() {
  report();
  packed_vs_scalar_report();
}

void BM_HdcAgingPredict(benchmark::State& state) {
  const std::vector<std::pair<double, double>> ranges{
      {0.6, 1.1}, {300.0, 400.0}, {0.05, 1.0}, {0.05, 2.0}, {-1.0, 1.3}};
  RecordEncoder encoder(ranges, RecordEncoderConfig{.dim = 4096, .levels = 32});
  HdcRegressor hdc(&encoder);
  std::vector<std::vector<double>> x{{0.8, 350.0, 0.5, 0.5, 0.0}, {1.0, 380.0, 0.9, 1.5, 1.0}};
  std::vector<double> y{0.01, 0.05};
  hdc.fit(x, y);
  for (auto _ : state) benchmark::DoNotOptimize(hdc.predict(x[0]));
}
BENCHMARK(BM_HdcAgingPredict)->Unit(benchmark::kMicrosecond);

void BM_FoundryModel(benchmark::State& state) {
  device::AgingModel model;
  device::StressCondition stress{};
  for (auto _ : state) benchmark::DoNotOptimize(model.delta_vth(stress));
}
BENCHMARK(BM_FoundryModel);

}  // namespace

LORE_BENCH_MAIN(full_report)
