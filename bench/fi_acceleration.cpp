// E5 / Sec. III-B1 [20]: ML models predict flip-flop (register) vulnerability
// from structural/dynamic features, cutting the injection budget — [20]
// reached comparable accuracy with ~20 % of the training data. The sweep
// trains kNN / SVM / GBDT on growing fractions of the campaign and reports
// held-out accuracy.
#include "bench/bench_util.hpp"
#include "src/arch/features.hpp"
#include "src/common/campaign.hpp"
#include "src/common/kernels.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/predictor.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

ml::Dataset build_dataset() {
  // Registers across all standard workloads form the sample population.
  ml::Dataset all;
  lore::Rng rng(41);
  std::size_t campaign_idx = 0;
  for (std::size_t scale : {1, 2, 3}) {
    for (const auto& w : standard_workloads(scale, 100 + scale)) {
      FaultInjector injector(w);
      // One checkpoint per (scale, workload) campaign; resumable under
      // LORE_CHECKPOINT_DIR, a no-op when the variable is unset.
      lore::CampaignSpec spec;
      spec.trials = 400;
      spec.base_seed = rng.next_u64();
      spec.checkpoint_path = lore::default_checkpoint_path(
          "fi_acceleration_" + std::to_string(campaign_idx++));
      const auto campaign = injector.campaign(spec, FaultTarget::kRegister);
      const auto d = register_vulnerability_dataset(w, campaign, 0.15);
      for (std::size_t i = 0; i < d.size(); ++i)
        all.add(d.x.row(i), d.labels[i], d.targets[i]);
    }
  }
  return all;
}

void report_parallel_campaign();
void report_batch_modes(const FaultInjector& injector);
void report_obs_overhead(const FaultInjector& injector,
                         const std::vector<FaultRecord>& reference);
void report_batched_inference(const ml::Dataset& data);
void report_prune_campaign();

void report() {
  bench::print_header("Fault-injection acceleration — accuracy vs training fraction",
                      "Register vulnerability prediction (failure rate > 0.15) across "
                      "the workload suite; features: usage counts, fanout, address/"
                      "branch roles.");
  const auto data = build_dataset();
  lore::Rng rng(43);
  const auto [train_full, test] = ml::train_test_split(data, 0.3, rng);

  Table t({"train_fraction", "knn_acc", "svm_acc", "gbdt_acc"});
  for (double fraction : {0.1, 0.2, 0.4, 0.7, 1.0}) {
    const auto n = std::max<std::size_t>(
        6, static_cast<std::size_t>(fraction * static_cast<double>(train_full.size())));
    lore::Rng pick(47);
    const auto idx = pick.sample_indices(train_full.size(), std::min(n, train_full.size()));
    const auto train = train_full.subset(idx);

    ml::KnnClassifier knn(5);
    ml::LinearSvm svm;
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 40});
    knn.fit(train.x, train.labels);
    svm.fit(train.x, train.labels);
    gbdt.fit(train.x, train.labels);
    t.add_numeric_row({fraction,
                       ml::accuracy(test.labels, knn.predict_batch(test.x)),
                       ml::accuracy(test.labels, svm.predict_batch(test.x)),
                       ml::accuracy(test.labels, gbdt.predict_batch(test.x))},
                      4);
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: accuracy at 20% of the data within a few points of the full-data "
      "accuracy — the injection campaign can shrink ~5x ([20]'s observation).");
  report_batched_inference(data);
  report_parallel_campaign();
  report_prune_campaign();
}

/// Tentpole section for the batched ML inference hot path (DESIGN.md §13):
/// panel-packed SoA features + blocked SIMD kernels vs the per-sample
/// reference loop, on the same trained models. Predictions must match
/// exactly — the batched path is a faster arrangement of the same
/// arithmetic, not an approximation.
void report_batched_inference(const ml::Dataset& data) {
  bench::print_header(
      "ML inference — per-sample reference vs batched SIMD hot path",
      "kNN / linear SVM / GBDT trained on the register-vulnerability data, "
      "then scoring a 4096-row query block: per-sample virtual predict() loop "
      "vs predict_batch() (blocked multi-query / interleaved-row kernels, "
      "Arena scratch; best of 3 runs per cell).");
  ml::KnnClassifier knn(5);
  ml::LinearSvm svm;
  ml::GradientBoostingClassifier gbdt(
      ml::GradientBoostingClassifierConfig{.num_rounds = 40});
  knn.fit(data.x, data.labels);
  svm.fit(data.x, data.labels);
  gbdt.fit(data.x, data.labels);

  // A query block big enough to measure: the dataset rows tiled to 4096.
  constexpr std::size_t kRows = 4096;
  ml::Matrix queries(kRows, data.x.cols());
  for (std::size_t r = 0; r < kRows; ++r) {
    const auto src = data.x.row(r % data.x.rows());
    std::copy(src.begin(), src.end(), queries.row(r).begin());
  }

  Table t({"model", "rows", "per_sample_s", "batched_s", "speedup", "identical"});
  const auto add_model = [&](const char* name, const ml::Classifier& model) {
    std::vector<int> ref(kRows);
    const double ref_s = bench::best_of_seconds(3, [&] {
      for (std::size_t r = 0; r < kRows; ++r) ref[r] = model.predict(queries.row(r));
    });
    std::vector<int> batched;
    const double batched_s =
        bench::best_of_seconds(3, [&] { batched = model.predict_batch(queries); });
    t.add_row({name, std::to_string(kRows), fmt_sig(ref_s, 4), fmt_sig(batched_s, 4),
               fmt_sig(ref_s / batched_s, 3), batched == ref ? "yes" : "NO"});
  };
  add_model("knn", knn);
  add_model("linear-svm", svm);
  add_model("gbdt", gbdt);
  bench::print_table(t);
  bench::print_note(
      "Expected: identical=yes on every row, speedup ~1.5-4x by model on a "
      "1-core host (kNN gains most: its panel passes are shared across query "
      "tiles). The ceiling is architectural, not implementation slack: "
      "the per-sample loop's iterations are independent, so out-of-order "
      "hardware already overlaps them, and the bit-identity contract forbids "
      "FMA/reassociation; batching wins by shared panel passes, interleaved "
      "dependency chains, and zero per-query allocation. The campaign-level "
      "speedup compounds this with 1/(1-prune_rate) — next section.");
}

void report_parallel_campaign() {
  bench::print_header(
      "Campaign engine — serial vs parallel throughput",
      "10k-trial register fault-injection campaign on the checksum workload; "
      "counter-based per-trial seeding keeps every thread count bit-identical "
      "to the serial path (threads=1).");
  const auto w = make_checksum(12, 5);
  const FaultInjector injector(w);
  constexpr std::size_t kTrials = 10000;
  constexpr std::uint64_t kSeed = 2024;

  std::vector<FaultRecord> serial;
  const double serial_s = bench::timed_seconds(
      [&] { serial = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, 1); });

  Table t({"threads", "seconds", "trials_per_s", "speedup_vs_serial", "bit_identical"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<FaultRecord> records;
    const double elapsed =
        threads == 1 ? serial_s : bench::timed_seconds([&] {
          records = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, threads);
        });
    const bool identical = threads == 1 || records == serial;
    t.add_row({std::to_string(threads), fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               fmt_sig(serial_s / elapsed, 3), identical ? "yes" : "NO"});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: near-linear scaling up to the machine's core count with "
      "bit_identical=yes on every row (the determinism contract).");
  report_batch_modes(injector);
  report_obs_overhead(injector, serial);
}

/// Tentpole section for the allocation-free trial hot path (DESIGN.md §11):
/// the legacy per-trial reference engine (fresh Cpu + full golden replay per
/// trial) vs the SoA batch engine restoring golden snapshots from
/// arena-backed scratch, with scalar and runtime-dispatched SIMD kernels.
/// All three modes must produce bit-identical records — speed is the only
/// permitted difference.
void report_batch_modes(const FaultInjector& injector) {
  bench::print_header(
      "Trial hot path — reference vs SoA batch (scalar / SIMD kernels)",
      "100k-trial serial register campaign on the checksum workload. "
      "`reference` forces the legacy engine (set_campaign_batch_enabled(false), "
      "also reachable via LORE_SIMD_SCALAR=1); `soa+scalar` pins the batch "
      "engine to scalar kernels; `soa+simd` uses the best runtime dispatch.");
  constexpr std::size_t kTrials = 100000;
  constexpr std::uint64_t kSeed = 2024;
  const bool engine_saved = lore::campaign_batch_enabled();
  const auto dispatch_saved = kernels::active_dispatch();

  std::vector<FaultRecord> reference;
  Table t({"mode", "threads", "seconds", "trials_per_s", "speedup_vs_reference",
           "bit_identical"});
  double reference_s = 0.0;
  const auto add_mode = [&](const char* mode, unsigned threads) {
    std::vector<FaultRecord> records;
    const double elapsed = bench::timed_seconds([&] {
      records = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, threads);
    });
    if (reference.empty()) {
      reference = std::move(records);
      reference_s = elapsed;
    }
    const bool identical = records.empty() || records == reference;
    t.add_row({mode, std::to_string(threads), fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               fmt_sig(reference_s / elapsed, 3), identical ? "yes" : "NO"});
  };

  lore::set_campaign_batch_enabled(false);
  add_mode("reference", 1);
  lore::set_campaign_batch_enabled(true);
  kernels::set_dispatch(kernels::Dispatch::kScalar);
  add_mode("soa+scalar", 1);
  kernels::set_dispatch(kernels::best_dispatch());
  const bool simd = kernels::active_dispatch() == kernels::Dispatch::kAvx2;
  add_mode(simd ? "soa+simd" : "soa+simd (no avx2: scalar)", 1);

  kernels::set_dispatch(dispatch_saved);
  lore::set_campaign_batch_enabled(engine_saved);
  bench::print_table(t);
  bench::print_note(
      "Expected: bit_identical=yes on every row; the SoA rows amortize golden "
      "re-execution into snapshot restores (undo-logged memory writes), so "
      "speedup_vs_reference should be >= 5x on the serial row.");
}

/// Satellite check for the observability subsystem: the instrumented
/// campaign path must cost (nearly) the same with metrics collection off,
/// on, and on with the whole live pipeline — event ring + Aggregator +
/// /metrics exposition server — running alongside (DESIGN.md §10). The off
/// path is also reachable at compile time via -DLORE_OBS=OFF.
void report_obs_overhead(const FaultInjector& injector,
                         const std::vector<FaultRecord>& reference) {
  bench::print_header(
      "Observability overhead — off vs on vs on+serve",
      "Same 10k-trial serial campaign with (1) the metrics registry disabled "
      "(LORE_OBS runtime switch), (2) enabled, and (3) enabled with the live "
      "pipeline running: event ring drained by a 50 ms Aggregator plus the "
      "HTTP exposition server bound on an ephemeral port.");
  constexpr std::size_t kTrials = 10000;
  constexpr std::uint64_t kSeed = 2024;
  const bool was_enabled = obs::enabled();
  // The section manages its own pipeline so the three rows are comparable
  // even when LORE_SERVE already started the global one.
  const bool global_pipeline = obs::Pipeline::global().running();
  if (global_pipeline) obs::Pipeline::global().stop();

  Table t({"mode", "seconds", "trials_per_s", "overhead_vs_off"});
  double off_s = 0.0;
  for (int mode = 0; mode < 3; ++mode) {
    obs::set_enabled(mode != 0);
    obs::AggregatorConfig acfg;
    acfg.interval = std::chrono::milliseconds(50);
    obs::Aggregator agg(acfg);
    obs::MetricsServer server(&agg);
    if (mode == 2) {
      agg.start();
      server.start(obs::ServeConfig{.port = 0});
    }
    std::vector<FaultRecord> records;
    const double elapsed = bench::timed_seconds(
        [&] { records = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, 1); });
    if (mode == 2) {
      server.stop();
      agg.stop();
    }
    obs::set_enabled(was_enabled);
    if (records != reference)
      bench::print_note("WARNING: obs toggle changed campaign results");
    if (mode == 0) off_s = elapsed;
    const char* label = mode == 0 ? "off" : mode == 1 ? "on" : "on+serve";
    t.add_row({label, fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               mode ? fmt_sig(elapsed / off_s, 3) : std::string("1.000")});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: overhead_vs_off ~ 1.0 on every row (instrumentation is "
      "zero-cost when compiled out, branch-cheap when disabled, and the "
      "pipeline rides on one CAS + 64-byte copy per event).");

  if (global_pipeline && !obs::start_pipeline_from_env())
    obs::Pipeline::global().start();
}

/// Tentpole section for the online predict-and-prune campaign loop
/// (DESIGN.md §13): a warm-up campaign feeds the Predictor, then the same
/// campaign runs full vs pruned at several benign thresholds. Effective
/// throughput counts every trial the campaign covered (executed + pruned)
/// per wall second; the audit rows keep the accuracy cost honest.
void report_prune_campaign() {
  bench::print_header(
      "Predict-and-prune campaign — full vs pruned effective throughput",
      "20k-trial register campaign on the matmul workload (trial cost is a "
      "partial golden replay, so heavier workloads gain more from skipping). "
      "Warm-up: 3k trials with an untrained predictor (nothing prunes, every "
      "trial feeds the model), then train. Pruned rows skip predicted-benign "
      "trials except a 5% seeded audit; false_benign_rate is the "
      "audit-measured share of the pruned class that was NOT benign.");
  if (!lore::campaign_uses_batch({})) {
    bench::print_note("batch engine disabled (LORE_SIMD_SCALAR=1?) — section skipped");
    return;
  }
  const auto w = make_matmul(8, 5);
  const FaultInjector injector(w);
  constexpr std::size_t kTrials = 20000;

  ml::PredictorConfig pcfg;
  pcfg.model = ml::PredictorModel::kGbdt;
  pcfg.gbdt.num_rounds = 30;
  ml::Predictor predictor(pcfg);

  lore::CampaignSpec warmup;
  warmup.trials = 3000;
  warmup.base_seed = 7;
  warmup.threads = 1;
  PruneCampaignOptions warmup_opt;
  warmup_opt.feedback_stride = 1;
  injector.campaign_run_pruned(warmup, FaultTarget::kRegister, predictor, warmup_opt);
  predictor.train_now();
  const auto snap = predictor.snapshot();
  if (!snap) {
    bench::print_note("predictor never reached the validation floor — section skipped");
    return;
  }
  bench::print_note("predictor: " + std::string(ml::predictor_model_name(snap->family())) +
                    " v" + std::to_string(snap->version()) + ", holdout accuracy " +
                    fmt_sig(snap->validation_accuracy(), 3));

  lore::CampaignSpec spec;
  spec.trials = kTrials;
  spec.base_seed = 2024;
  spec.threads = 1;

  std::vector<FaultRecord> full;
  const double full_s = bench::timed_seconds(
      [&] { full = injector.campaign(spec, FaultTarget::kRegister); });

  Table t({"mode", "threshold", "executed", "pruned", "audits", "false_benign_rate",
           "seconds", "effective_trials_per_s", "speedup_vs_full"});
  t.add_row({"full", "-", std::to_string(kTrials), "0", "-", "-", fmt_sig(full_s, 4),
             fmt_sig(static_cast<double>(kTrials) / full_s, 4), "1.00"});
  for (double threshold : {0.9, 0.8, 0.7, 0.6}) {
    PruneCampaignOptions opt;
    opt.benign_threshold = threshold;
    opt.audit_fraction = 0.05;
    lore::CampaignResult<FaultRecord> pruned;
    const double elapsed = bench::timed_seconds([&] {
      pruned = injector.campaign_run_pruned(spec, FaultTarget::kRegister, predictor, opt);
    });
    const auto& rep = pruned.report;
    const double fb_rate = rep.prune_audits
                               ? static_cast<double>(rep.prune_false_benign) /
                                     static_cast<double>(rep.prune_audits)
                               : 0.0;
    t.add_row({"pruned", fmt_sig(threshold, 2), std::to_string(rep.completed),
               std::to_string(rep.pruned), std::to_string(rep.prune_audits),
               fmt_sig(fb_rate, 3), fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               fmt_sig(full_s / elapsed, 3)});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: effective trials/s >= 2x the full row at the 0.7 operating "
      "point (GBDT sigmoid margins top out near 0.84, so 0.9 prunes nothing), "
      "with a small audit-measured false_benign_rate — the accuracy-for-speed "
      "trade, fed back into training and fused by the PruneController when it "
      "degrades).");
}

void BM_RegisterFeatures(benchmark::State& state) {
  const auto w = make_dot_product(16, 1);
  for (auto _ : state) benchmark::DoNotOptimize(register_features(w, 3));
}
BENCHMARK(BM_RegisterFeatures)->Unit(benchmark::kMicrosecond);

void BM_SingleInjection(benchmark::State& state) {
  const auto w = make_dot_product(16, 1);
  FaultInjector injector(w);
  const FaultSite site{FaultTarget::kRegister, 3, 12, 40};
  for (auto _ : state) benchmark::DoNotOptimize(injector.inject(site));
}
BENCHMARK(BM_SingleInjection)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
