// E5 / Sec. III-B1 [20]: ML models predict flip-flop (register) vulnerability
// from structural/dynamic features, cutting the injection budget — [20]
// reached comparable accuracy with ~20 % of the training data. The sweep
// trains kNN / SVM / GBDT on growing fractions of the campaign and reports
// held-out accuracy.
#include "bench/bench_util.hpp"
#include "src/arch/features.hpp"
#include "src/common/campaign.hpp"
#include "src/common/kernels.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

ml::Dataset build_dataset() {
  // Registers across all standard workloads form the sample population.
  ml::Dataset all;
  lore::Rng rng(41);
  std::size_t campaign_idx = 0;
  for (std::size_t scale : {1, 2, 3}) {
    for (const auto& w : standard_workloads(scale, 100 + scale)) {
      FaultInjector injector(w);
      // One checkpoint per (scale, workload) campaign; resumable under
      // LORE_CHECKPOINT_DIR, a no-op when the variable is unset.
      lore::CampaignSpec spec;
      spec.trials = 400;
      spec.base_seed = rng.next_u64();
      spec.checkpoint_path = lore::default_checkpoint_path(
          "fi_acceleration_" + std::to_string(campaign_idx++));
      const auto campaign = injector.campaign(spec, FaultTarget::kRegister);
      const auto d = register_vulnerability_dataset(w, campaign, 0.15);
      for (std::size_t i = 0; i < d.size(); ++i)
        all.add(d.x.row(i), d.labels[i], d.targets[i]);
    }
  }
  return all;
}

void report_parallel_campaign();
void report_batch_modes(const FaultInjector& injector);
void report_obs_overhead(const FaultInjector& injector,
                         const std::vector<FaultRecord>& reference);

void report() {
  bench::print_header("Fault-injection acceleration — accuracy vs training fraction",
                      "Register vulnerability prediction (failure rate > 0.15) across "
                      "the workload suite; features: usage counts, fanout, address/"
                      "branch roles.");
  const auto data = build_dataset();
  lore::Rng rng(43);
  const auto [train_full, test] = ml::train_test_split(data, 0.3, rng);

  Table t({"train_fraction", "knn_acc", "svm_acc", "gbdt_acc"});
  for (double fraction : {0.1, 0.2, 0.4, 0.7, 1.0}) {
    const auto n = std::max<std::size_t>(
        6, static_cast<std::size_t>(fraction * static_cast<double>(train_full.size())));
    lore::Rng pick(47);
    const auto idx = pick.sample_indices(train_full.size(), std::min(n, train_full.size()));
    const auto train = train_full.subset(idx);

    ml::KnnClassifier knn(5);
    ml::LinearSvm svm;
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 40});
    knn.fit(train.x, train.labels);
    svm.fit(train.x, train.labels);
    gbdt.fit(train.x, train.labels);
    t.add_numeric_row({fraction,
                       ml::accuracy(test.labels, knn.predict_batch(test.x)),
                       ml::accuracy(test.labels, svm.predict_batch(test.x)),
                       ml::accuracy(test.labels, gbdt.predict_batch(test.x))},
                      4);
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: accuracy at 20% of the data within a few points of the full-data "
      "accuracy — the injection campaign can shrink ~5x ([20]'s observation).");
  report_parallel_campaign();
}

void report_parallel_campaign() {
  bench::print_header(
      "Campaign engine — serial vs parallel throughput",
      "10k-trial register fault-injection campaign on the checksum workload; "
      "counter-based per-trial seeding keeps every thread count bit-identical "
      "to the serial path (threads=1).");
  const auto w = make_checksum(12, 5);
  const FaultInjector injector(w);
  constexpr std::size_t kTrials = 10000;
  constexpr std::uint64_t kSeed = 2024;

  std::vector<FaultRecord> serial;
  const double serial_s = bench::timed_seconds(
      [&] { serial = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, 1); });

  Table t({"threads", "seconds", "trials_per_s", "speedup_vs_serial", "bit_identical"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<FaultRecord> records;
    const double elapsed =
        threads == 1 ? serial_s : bench::timed_seconds([&] {
          records = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, threads);
        });
    const bool identical = threads == 1 || records == serial;
    t.add_row({std::to_string(threads), fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               fmt_sig(serial_s / elapsed, 3), identical ? "yes" : "NO"});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: near-linear scaling up to the machine's core count with "
      "bit_identical=yes on every row (the determinism contract).");
  report_batch_modes(injector);
  report_obs_overhead(injector, serial);
}

/// Tentpole section for the allocation-free trial hot path (DESIGN.md §11):
/// the legacy per-trial reference engine (fresh Cpu + full golden replay per
/// trial) vs the SoA batch engine restoring golden snapshots from
/// arena-backed scratch, with scalar and runtime-dispatched SIMD kernels.
/// All three modes must produce bit-identical records — speed is the only
/// permitted difference.
void report_batch_modes(const FaultInjector& injector) {
  bench::print_header(
      "Trial hot path — reference vs SoA batch (scalar / SIMD kernels)",
      "100k-trial serial register campaign on the checksum workload. "
      "`reference` forces the legacy engine (set_campaign_batch_enabled(false), "
      "also reachable via LORE_SIMD_SCALAR=1); `soa+scalar` pins the batch "
      "engine to scalar kernels; `soa+simd` uses the best runtime dispatch.");
  constexpr std::size_t kTrials = 100000;
  constexpr std::uint64_t kSeed = 2024;
  const bool engine_saved = lore::campaign_batch_enabled();
  const auto dispatch_saved = kernels::active_dispatch();

  std::vector<FaultRecord> reference;
  Table t({"mode", "threads", "seconds", "trials_per_s", "speedup_vs_reference",
           "bit_identical"});
  double reference_s = 0.0;
  const auto add_mode = [&](const char* mode, unsigned threads) {
    std::vector<FaultRecord> records;
    const double elapsed = bench::timed_seconds([&] {
      records = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, threads);
    });
    if (reference.empty()) {
      reference = std::move(records);
      reference_s = elapsed;
    }
    const bool identical = records.empty() || records == reference;
    t.add_row({mode, std::to_string(threads), fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               fmt_sig(reference_s / elapsed, 3), identical ? "yes" : "NO"});
  };

  lore::set_campaign_batch_enabled(false);
  add_mode("reference", 1);
  lore::set_campaign_batch_enabled(true);
  kernels::set_dispatch(kernels::Dispatch::kScalar);
  add_mode("soa+scalar", 1);
  kernels::set_dispatch(kernels::best_dispatch());
  const bool simd = kernels::active_dispatch() == kernels::Dispatch::kAvx2;
  add_mode(simd ? "soa+simd" : "soa+simd (no avx2: scalar)", 1);

  kernels::set_dispatch(dispatch_saved);
  lore::set_campaign_batch_enabled(engine_saved);
  bench::print_table(t);
  bench::print_note(
      "Expected: bit_identical=yes on every row; the SoA rows amortize golden "
      "re-execution into snapshot restores (undo-logged memory writes), so "
      "speedup_vs_reference should be >= 5x on the serial row.");
}

/// Satellite check for the observability subsystem: the instrumented
/// campaign path must cost (nearly) the same with metrics collection off,
/// on, and on with the whole live pipeline — event ring + Aggregator +
/// /metrics exposition server — running alongside (DESIGN.md §10). The off
/// path is also reachable at compile time via -DLORE_OBS=OFF.
void report_obs_overhead(const FaultInjector& injector,
                         const std::vector<FaultRecord>& reference) {
  bench::print_header(
      "Observability overhead — off vs on vs on+serve",
      "Same 10k-trial serial campaign with (1) the metrics registry disabled "
      "(LORE_OBS runtime switch), (2) enabled, and (3) enabled with the live "
      "pipeline running: event ring drained by a 50 ms Aggregator plus the "
      "HTTP exposition server bound on an ephemeral port.");
  constexpr std::size_t kTrials = 10000;
  constexpr std::uint64_t kSeed = 2024;
  const bool was_enabled = obs::enabled();
  // The section manages its own pipeline so the three rows are comparable
  // even when LORE_SERVE already started the global one.
  const bool global_pipeline = obs::Pipeline::global().running();
  if (global_pipeline) obs::Pipeline::global().stop();

  Table t({"mode", "seconds", "trials_per_s", "overhead_vs_off"});
  double off_s = 0.0;
  for (int mode = 0; mode < 3; ++mode) {
    obs::set_enabled(mode != 0);
    obs::AggregatorConfig acfg;
    acfg.interval = std::chrono::milliseconds(50);
    obs::Aggregator agg(acfg);
    obs::MetricsServer server(&agg);
    if (mode == 2) {
      agg.start();
      server.start(obs::ServeConfig{.port = 0});
    }
    std::vector<FaultRecord> records;
    const double elapsed = bench::timed_seconds(
        [&] { records = injector.campaign(kTrials, FaultTarget::kRegister, kSeed, 1); });
    if (mode == 2) {
      server.stop();
      agg.stop();
    }
    obs::set_enabled(was_enabled);
    if (records != reference)
      bench::print_note("WARNING: obs toggle changed campaign results");
    if (mode == 0) off_s = elapsed;
    const char* label = mode == 0 ? "off" : mode == 1 ? "on" : "on+serve";
    t.add_row({label, fmt_sig(elapsed, 4),
               fmt_sig(static_cast<double>(kTrials) / elapsed, 4),
               mode ? fmt_sig(elapsed / off_s, 3) : std::string("1.000")});
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: overhead_vs_off ~ 1.0 on every row (instrumentation is "
      "zero-cost when compiled out, branch-cheap when disabled, and the "
      "pipeline rides on one CAS + 64-byte copy per event).");

  if (global_pipeline && !obs::start_pipeline_from_env())
    obs::Pipeline::global().start();
}

void BM_RegisterFeatures(benchmark::State& state) {
  const auto w = make_dot_product(16, 1);
  for (auto _ : state) benchmark::DoNotOptimize(register_features(w, 3));
}
BENCHMARK(BM_RegisterFeatures)->Unit(benchmark::kMicrosecond);

void BM_SingleInjection(benchmark::State& state) {
  const auto w = make_dot_product(16, 1);
  FaultInjector injector(w);
  const FaultSite site{FaultTarget::kRegister, 3, 12, 40};
  for (auto _ : state) benchmark::DoNotOptimize(injector.inject(site));
}
BENCHMARK(BM_SingleInjection)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
