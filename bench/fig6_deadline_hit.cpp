// E13 / Fig. 6: average deadline hit rate vs error probability for the four
// cycle-noise mitigation schedulers (DS, DS-1.5x, DS-2x, WCET) plus LORE's
// learning-based extension (DS-ML). Paper shape: all near 1 below the wall,
// conservative schedulers win inside the 1e-6..1e-5 window, all collapse to
// 0 beyond it regardless of algorithm.
//
// The experiment itself is declarative: the spec below is byte-for-byte the
// committed scenarios/fig6_deadline_hit.scenario.json, and the numbers
// printed here are the scenario engine's — `lore_scenario` reproduces this
// bench from the file alone.
#include "bench/bench_util.hpp"
#include "src/rollback/montecarlo.hpp"
#include "src/scenario/scenario.hpp"

namespace {

using namespace lore;
using namespace lore::rollback;
using namespace lore::scenario;

constexpr const char* kSpec = R"json({
  "schema": "lore.scenario.v1",
  "name": "fig6_deadline_hit",
  "seed": 97,
  "rollback": {
    "schedulers": ["ds", "ds-1.5x", "ds-2x", "wcet", "ds-ml"],
    "runs_per_point": 100,
    "base_seed": 97
  }
})json";

void report() {
  bench::print_header("Fig. 6 — deadline hit rate vs error probability",
                      "Cycle-noise mitigation with speed headroom 2x; 100 Monte Carlo "
                      "runs per point; schedulers DS / DS 1.5x / DS 2x / WCET (+ DS-ML "
                      "learning extension). Declarative twin: "
                      "scenarios/fig6_deadline_hit.scenario.json.");
  const ScenarioResult result = run_scenario(parse_scenario(kSpec, "fig6_deadline_hit"));
  const RollbackStageResult& rb = *result.rollback;

  std::vector<std::string> headers{"error_prob"};
  for (auto kind : rb.schedulers) headers.push_back(scheduler_name(kind));
  Table t(headers);
  for (const auto& point : rb.experiment.points) {
    std::vector<double> row{point.p};
    for (auto kind : rb.schedulers) row.push_back(point.hit_rate.at(kind));
    t.add_numeric_row(row, 4);
  }
  bench::print_table(t);

  Table walls({"scheduler", "wall_position(p where hit<0.5)"});
  for (auto kind : rb.schedulers)
    walls.add_row({scheduler_name(kind), fmt_sig(rb.experiment.wall_position(kind), 3)});
  bench::print_table(walls);
  bench::print_note(
      "Expected: hit rates ~1 at p<=1e-7; ordered WCET >= DS2x >= DS1.5x >= DS inside "
      "the 1e-6..1e-5 window; all -> 0 past the wall.");
}

void BM_SimulateRun(benchmark::State& state) {
  const auto segments = segment_adpcm_workload(SegmentationConfig{});
  const MitigationConfig cfg{};
  const auto budgets = static_budgets(SchedulerKind::kWcet, segments, cfg.checkpoint);
  lore::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(simulate_run(segments, budgets, 3e-6, cfg, rng));
}
BENCHMARK(BM_SimulateRun);

}  // namespace

LORE_BENCH_MAIN(report)
