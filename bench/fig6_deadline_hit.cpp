// E13 / Fig. 6: average deadline hit rate vs error probability for the four
// cycle-noise mitigation schedulers (DS, DS-1.5x, DS-2x, WCET) plus LORE's
// learning-based extension (DS-ML). Paper shape: all near 1 below the wall,
// conservative schedulers win inside the 1e-6..1e-5 window, all collapse to
// 0 beyond it regardless of algorithm.
#include "bench/bench_util.hpp"
#include "src/rollback/montecarlo.hpp"

namespace {

using namespace lore;
using namespace lore::rollback;

void report() {
  bench::print_header("Fig. 6 — deadline hit rate vs error probability",
                      "Cycle-noise mitigation with speed headroom 2x; 100 Monte Carlo "
                      "runs per point; schedulers DS / DS 1.5x / DS 2x / WCET (+ DS-ML "
                      "learning extension).");
  const std::vector<SchedulerKind> schedulers{SchedulerKind::kDs, SchedulerKind::kDs15,
                                              SchedulerKind::kDs2, SchedulerKind::kWcet,
                                              SchedulerKind::kDsLearned};
  ExperimentConfig cfg;
  const auto result = run_experiment(cfg, schedulers);

  std::vector<std::string> headers{"error_prob"};
  for (auto kind : schedulers) headers.push_back(scheduler_name(kind));
  Table t(headers);
  for (const auto& point : result.points) {
    std::vector<double> row{point.p};
    for (auto kind : schedulers) row.push_back(point.hit_rate.at(kind));
    t.add_numeric_row(row, 4);
  }
  bench::print_table(t);

  Table walls({"scheduler", "wall_position(p where hit<0.5)"});
  for (auto kind : schedulers)
    walls.add_row({scheduler_name(kind), fmt_sig(result.wall_position(kind), 3)});
  bench::print_table(walls);
  bench::print_note(
      "Expected: hit rates ~1 at p<=1e-7; ordered WCET >= DS2x >= DS1.5x >= DS inside "
      "the 1e-6..1e-5 window; all -> 0 past the wall.");
}

void BM_SimulateRun(benchmark::State& state) {
  const auto segments = segment_adpcm_workload(SegmentationConfig{});
  const MitigationConfig cfg{};
  const auto budgets = static_budgets(SchedulerKind::kWcet, segments, cfg.checkpoint);
  lore::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(simulate_run(segments, budgets, 3e-6, cfg, rng));
}
BENCHMARK(BM_SimulateRun);

}  // namespace

LORE_BENCH_MAIN(report)
