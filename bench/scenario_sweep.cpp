// Scenario sweep bench: enumerate a counter-seeded batch of generated
// cross-layer scenarios, run each through the composition engine, and hand
// every result to the differential invariant checker. The series reports
// sweep coverage (scenarios / trials / findings) and throughput, plus a
// planted-defect recall row: with planted_violation_rate=1 every scenario
// carries a deliberate guardband violation the checker must catch.
#include "bench/bench_util.hpp"
#include "src/scenario/scenario.hpp"

namespace {

using namespace lore;
using namespace lore::scenario;

void report() {
  bench::print_header("Scenario sweep — generative cross-layer campaigns",
                      "Counter-seeded ScenarioGenerator: same seed, same scenarios, "
                      "same findings at any thread count. Each scenario composes "
                      "device aging, fault campaigns, OS governors, and schedulers; "
                      "the invariant checker cross-examines the layers.");
  GeneratorConfig cfg;
  const SweepReport sweep = run_sweep(cfg, 24);

  Table t({"scenarios", "trials", "violations", "warnings", "trials_per_s"});
  t.add_row({std::to_string(sweep.scenarios), std::to_string(sweep.trials),
             std::to_string(sweep.violations), std::to_string(sweep.warnings),
             fmt_sig(sweep.trials_per_second(), 4)});
  bench::print_table(t);

  // Planted-defect recall: force a guardband violation into every generated
  // scenario and count how many the checker flags.
  GeneratorConfig planted = cfg;
  planted.planted_violation_rate = 1.0;
  const SweepReport recall = run_sweep(planted, 12);
  std::size_t caught = 0;
  for (const SweepOutcome& out : recall.outcomes) {
    for (const InvariantFinding& f : out.findings)
      if (f.id == "guardband.os_vs_circuit" && f.severity == Severity::kViolation) {
        ++caught;
        break;
      }
  }
  Table r({"planted_scenarios", "violations_caught", "recall"});
  r.add_row({std::to_string(recall.scenarios), std::to_string(caught),
             fmt_sig(static_cast<double>(caught) /
                         static_cast<double>(recall.scenarios),
                     4)});
  bench::print_table(r);
  bench::print_note(
      "Expected: the unplanted sweep surfaces only organic findings (occasional "
      "thermal-ceiling breaches the generator does not guard against) and recall 1.0 "
      "on the planted batch — the checker catches every deliberate guardband breach.");
}

void BM_GenerateScenario(benchmark::State& state) {
  ScenarioGenerator gen{GeneratorConfig{}};
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(gen.at(i++ % 64));
}
BENCHMARK(BM_GenerateScenario)->Unit(benchmark::kMicrosecond);

void BM_ScenarioRun(benchmark::State& state) {
  ScenarioGenerator gen{GeneratorConfig{}};
  const ScenarioSpec spec = gen.at(1);
  for (auto _ : state) benchmark::DoNotOptimize(run_scenario(spec));
}
BENCHMARK(BM_ScenarioRun)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
