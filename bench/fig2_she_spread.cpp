// E1 / Fig. 2: transistor self-heating temperatures within a processor-like
// circuit. The paper's observation: although only ~59 distinct standard
// cells are used, per-instance SHE temperatures spread widely because each
// instance sees different input slews, loads, and switching activity.
#include "bench/bench_util.hpp"
#include "src/circuit/she_flow.hpp"
#include "src/common/stats.hpp"

namespace {

using namespace lore;
using namespace lore::circuit;

struct Setup {
  CellLibrary lib = make_skeleton_library("lore-tech");
  Characterizer characterizer{CharacterizerConfig{.timestep_ps = 0.2},
                              device::SelfHeatingModel{}};
  Netlist netlist;
  StaEngine sta{};

  Setup()
      : netlist([this] {
          device::OperatingPoint op{};
          op.temperature = 330.0;
          characterizer.characterize_library(lib, op);
          return generate_core_like(lib, CoreLikeConfig{.pipeline_stages = 4,
                                                        .regs_per_stage = 24,
                                                        .gates_per_stage = 260});
        }()) {}
};

void report() {
  bench::print_header("Fig. 2 — per-instance SHE temperature spread",
                      "Core-like pipelined netlist; SHE characterized per cell, looked "
                      "up per instance at its STA slew/load and scaled by its activity.");
  Setup s;
  const auto sta = s.sta.run(s.netlist, LibraryDelayModel());
  const auto she = instance_she_rise(s.netlist, sta,
                                     s.characterizer.config().she_reference_toggle_ghz);

  RunningStats stats;
  for (double t : she) stats.add(t);
  Table summary({"instances", "distinct_cell_types", "she_min_K", "she_mean_K",
                 "she_p95_K", "she_max_K"});
  summary.add_numeric_row({static_cast<double>(s.netlist.num_instances()),
                           static_cast<double>(s.netlist.distinct_cell_types()),
                           stats.min(), stats.mean(), quantile(she, 0.95), stats.max()},
                          4);
  bench::print_table(summary);

  // The figure itself: the distribution of SHE temperatures.
  Histogram hist(0.0, stats.max() * 1.0001 + 1e-9, 12);
  hist.add(she);
  Table dist({"she_range_K", "instances", "fraction"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    dist.add_row({fmt_sig(hist.bin_lo(b), 3) + ".." + fmt_sig(hist.bin_hi(b), 3),
                  std::to_string(hist.count(b)), fmt_sig(hist.fraction(b), 3)});
  }
  bench::print_table(dist);

  // SDF with temperatures (the Fig. 3 upper-path artifact).
  const auto sdf = write_sdf(s.netlist, she, "SHE_TEMP_K");
  bench::print_note("SHE-annotated SDF bytes: " + std::to_string(sdf.size()));
  bench::print_note(
      "Expected: wide temperature variety (max >> mean) from few distinct cell "
      "types, reproducing the Fig. 2 observation.");
}

void BM_SheAnnotation(benchmark::State& state) {
  static Setup s;
  const auto sta = s.sta.run(s.netlist, LibraryDelayModel());
  for (auto _ : state)
    benchmark::DoNotOptimize(instance_she_rise(
        s.netlist, sta, s.characterizer.config().she_reference_toggle_ghz));
}
BENCHMARK(BM_SheAnnotation)->Unit(benchmark::kMillisecond);

void BM_StaRun(benchmark::State& state) {
  static Setup s;
  for (auto _ : state) benchmark::DoNotOptimize(s.sta.run(s.netlist, LibraryDelayModel()));
}
BENCHMARK(BM_StaRun)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
