// E18 / Sec. VI-B: mixed-criticality reliability. HI tasks must never miss
// even when they overrun their optimistic budgets; LO-task QoS degrades
// gracefully with overrun severity. Plus the adaptive replica manager
// responding to a drifting fault environment (Sec. IV-A4, [45]).
#include "bench/bench_util.hpp"
#include "src/os/replica.hpp"

namespace {

using namespace lore;
using namespace lore::os;

void report() {
  bench::print_header("Mixed-criticality scheduling under overruns",
                      "Single-core EDF with LO budgets; HI overruns trigger mode "
                      "switches that shed LO jobs until an idle instant.");
  TaskSet tasks = generate_taskset(TaskSetConfig{.num_tasks = 8,
                                                 .total_utilization = 0.6,
                                                 .high_criticality_fraction = 0.35,
                                                 .seed = 41});
  tasks[0].criticality = Criticality::kHigh;
  tasks[1].criticality = Criticality::kLow;

  Table t({"overrun_factor", "hi_miss_rate", "lo_qos", "mode_switches"});
  for (double overrun : {0.9, 1.1, 1.4, 1.8, 2.4}) {
    const auto r = simulate_mixed_criticality(
        tasks, McSimConfig{.duration_ms = 30000.0, .overrun_factor = overrun});
    t.add_numeric_row({overrun,
                       r.hi_jobs ? static_cast<double>(r.hi_misses) /
                                       static_cast<double>(r.hi_jobs)
                                 : 0.0,
                       r.lo_qos(), static_cast<double>(r.mode_switches)},
                      4);
  }
  bench::print_table(t);
  bench::print_note(
      "Expected: HI miss rate pinned near zero at every overrun level; LO QoS "
      "degrades monotonically as overruns (and mode switches) grow.");

  bench::print_header("Adaptive replica management under a drifting environment",
                      "Fault rate steps 0.1% -> 8% -> 0.1%; the manager learns the "
                      "rate from observations and re-tunes the replica count.");
  ReplicaManager mgr;
  lore::Rng rng(43);
  Table r({"phase", "true_fault_rate", "estimated_rate", "replicas"});
  auto run_phase = [&](const std::string& name, double rate, int windows) {
    for (int w = 0; w < windows; ++w) {
      std::size_t faults = 0;
      for (int j = 0; j < 1000; ++j) faults += rng.bernoulli(rate);
      mgr.observe(faults, 1000);
    }
    r.add_row({name, fmt_sig(rate, 3), fmt_sig(mgr.fault_probability(), 3),
               std::to_string(mgr.recommended_replicas())});
  };
  run_phase("calm", 0.001, 10);
  run_phase("radiation burst", 0.08, 10);
  run_phase("recovered", 0.001, 25);
  bench::print_table(r);
  bench::print_note(
      "Expected: 1 replica in calm phases, >=2 during the burst, back to 1 after "
      "recovery — redundancy priced to the environment ([45]).");
}

void BM_McSimulation(benchmark::State& state) {
  const auto tasks = generate_taskset(TaskSetConfig{.num_tasks = 8,
                                                    .total_utilization = 0.6,
                                                    .seed = 41});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_mixed_criticality(tasks, McSimConfig{.duration_ms = 5000.0}));
}
BENCHMARK(BM_McSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
