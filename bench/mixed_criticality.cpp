// E18 / Sec. VI-B: mixed-criticality reliability. HI tasks must never miss
// even when they overrun their optimistic budgets; LO-task QoS degrades
// gracefully with overrun severity. Plus the adaptive replica manager
// responding to a drifting fault environment (Sec. IV-A4, [45]).
//
// The experiment itself is declarative: the spec below is byte-for-byte the
// committed scenarios/mixed_criticality.scenario.json, and the numbers
// printed here are the scenario engine's — `lore_scenario` reproduces this
// bench from the file alone.
#include "bench/bench_util.hpp"
#include "src/os/replica.hpp"
#include "src/scenario/scenario.hpp"

namespace {

using namespace lore;
using namespace lore::scenario;

constexpr const char* kSpec = R"json({
  "schema": "lore.scenario.v1",
  "name": "mixed_criticality",
  "seed": 41,
  "mixed_criticality": {
    "tasks": {
      "num_tasks": 8,
      "utilization": 0.6,
      "hi_fraction": 0.35,
      "seed": 41
    },
    "force_criticality": [
      { "task": 0, "level": "high" },
      { "task": 1, "level": "low" }
    ],
    "overrun_factors": [0.9, 1.1, 1.4, 1.8, 2.4],
    "duration_ms": 30000,
    "sim_seed": 83
  },
  "replica_drift": {
    "seed": 43,
    "jobs_per_window": 1000,
    "phases": [
      { "name": "calm", "fault_rate": 0.001, "windows": 10 },
      { "name": "radiation burst", "fault_rate": 0.08, "windows": 10 },
      { "name": "recovered", "fault_rate": 0.001, "windows": 25 }
    ]
  }
})json";

void report() {
  bench::print_header("Mixed-criticality scheduling under overruns",
                      "Single-core EDF with LO budgets; HI overruns trigger mode "
                      "switches that shed LO jobs until an idle instant. Declarative "
                      "twin: scenarios/mixed_criticality.scenario.json.");
  const ScenarioResult result = run_scenario(parse_scenario(kSpec, "mixed_criticality"));

  Table t({"overrun_factor", "hi_miss_rate", "lo_qos", "mode_switches"});
  for (const MixedCritRow& row : result.mixed_criticality->rows)
    t.add_numeric_row({row.overrun_factor,
                       row.hi_jobs ? static_cast<double>(row.hi_misses) /
                                         static_cast<double>(row.hi_jobs)
                                   : 0.0,
                       row.lo_qos, static_cast<double>(row.mode_switches)},
                      4);
  bench::print_table(t);
  bench::print_note(
      "Expected: HI miss rate pinned near zero at every overrun level; LO QoS "
      "degrades monotonically as overruns (and mode switches) grow.");

  bench::print_header("Adaptive replica management under a drifting environment",
                      "Fault rate steps 0.1% -> 8% -> 0.1%; the manager learns the "
                      "rate from observations and re-tunes the replica count.");
  Table r({"phase", "true_fault_rate", "estimated_rate", "replicas"});
  for (const ReplicaPhaseRow& row : result.replica_drift->rows)
    r.add_row({row.phase, fmt_sig(row.true_rate, 3), fmt_sig(row.estimated_rate, 3),
               std::to_string(row.replicas)});
  bench::print_table(r);
  bench::print_note(
      "Expected: 1 replica in calm phases, >=2 during the burst, back to 1 after "
      "recovery — redundancy priced to the environment ([45]).");
}

void BM_McSimulation(benchmark::State& state) {
  const auto tasks = os::generate_taskset(os::TaskSetConfig{.num_tasks = 8,
                                                            .total_utilization = 0.6,
                                                            .seed = 41});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        os::simulate_mixed_criticality(tasks, os::McSimConfig{.duration_ms = 5000.0}));
}
BENCHMARK(BM_McSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
