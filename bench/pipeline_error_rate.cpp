// E22 / Sec. V-A grounding: the Section V model abstracts the machine as "a
// cycle is erroneous if any register of a pipeline stage contains a wrong
// value" with probability p. This bench derives p from below: inject
// single-bit upsets into the actual 5-stage pipeline latches, measure which
// fraction corrupts architectural state (many upsets are masked — invalid
// latches, dead fields, squashed wrong-path work), and map raw per-bit upset
// rates to the effective p the Section V wall is stated in.
#include <array>
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/arch/pipeline.hpp"
#include "src/rollback/error_model.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

void report() {
  bench::print_header("Pipeline-latch upsets -> effective Sec. V error probability",
                      "Single-bit faults into IF/ID/EX/MEM/WB latch fields of the "
                      "5-stage pipeline; masked fraction measured per workload.");
  lore::Rng rng(31);
  Table t({"workload", "cpi", "arch_corruption_factor", "sdc_share", "crash_share"});
  double mean_factor = 0.0;
  std::size_t counted = 0;
  for (const auto& w : standard_workloads(2, 900)) {
    PipelineCpu probe(w.memory_words);
    probe.load_program(w.program);
    for (const auto& [addr, value] : w.memory_init) probe.set_mem(addr, value);
    probe.run(4 * w.max_cycles + 64);

    const auto records = pipeline_campaign(w, 250, rng.next_u64());
    const auto mix = summarize(records);
    const double factor = architectural_corruption_factor(records);
    mean_factor += factor;
    ++counted;
    t.add_row({w.name, fmt_sig(probe.cpi(), 3), fmt_sig(factor, 3),
               fmt_sig(static_cast<double>(mix.sdc) / static_cast<double>(mix.total()), 3),
               fmt_sig(static_cast<double>(mix.crash + mix.hang) /
                           static_cast<double>(mix.total()),
                       3)});
  }
  mean_factor /= static_cast<double>(counted);
  bench::print_table(t);

  // Per-latch-field vulnerability (the gemV-style breakdown): which stage
  // registers matter most. Aggregated over the whole suite.
  static const char* kFieldNames[] = {"PC",        "IF/ID.instr", "ID/EX.opA",
                                      "ID/EX.opB", "EX/MEM.alu",  "MEM/WB.value"};
  std::array<std::size_t, 6> field_total{};
  std::array<std::size_t, 6> field_fail{};
  lore::Rng field_rng(32);
  for (const auto& w : standard_workloads(2, 900)) {
    for (const auto& rec : pipeline_campaign(w, 150, field_rng.next_u64())) {
      const auto field = rec.site.index;
      ++field_total[field];
      field_fail[field] += rec.outcome != Outcome::kBenign;
    }
  }
  Table f({"latch_field", "injections", "avf"});
  for (std::size_t i = 0; i < 6; ++i) {
    f.add_row({kFieldNames[i], std::to_string(field_total[i]),
               fmt_sig(field_total[i] ? static_cast<double>(field_fail[i]) /
                                            static_cast<double>(field_total[i])
                                      : 0.0,
                       3)});
  }
  bench::print_table(f);

  // Map raw upset rates to the Sec. V wall. The pipeline carries ~6 latch
  // fields x 32 bits of injectable state.
  const double latch_bits = 6.0 * 32.0;
  Table map({"raw_upset_rate_per_bit_cycle", "effective_p", "E[rollbacks] @150k-cycle segment",
             "verdict vs 1e-6..1e-5 wall"});
  for (double q : {1e-12, 1e-10, 1e-9, 1e-8, 1e-7}) {
    const double p_eff = q * latch_bits * mean_factor;
    const double rollbacks = rollback::expected_rollbacks(p_eff, 150000 + 100);
    std::string verdict = p_eff < 1e-6 ? "inside (safe)"
                          : p_eff < 1e-5 ? "at the wall"
                                         : "beyond (infeasible)";
    map.add_row({fmt_sig(q, 3), fmt_sig(p_eff, 3), fmt_sig(rollbacks, 4), verdict});
  }
  bench::print_table(map);
  bench::print_note(
      "Expected: a large masked fraction (invalid latches, dead fields, squashed "
      "wrong-path state keep the corruption factor well below 1), so the raw-upset "
      "budget the checkpointing system can absorb is correspondingly larger than "
      "the architectural wall suggests.");
}

void BM_PipelineStep(benchmark::State& state) {
  const auto w = make_checksum(20, 1);
  PipelineCpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  for (auto _ : state) {
    if (cpu.state() != RunState::kRunning) {
      cpu.reset();
      for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
    }
    benchmark::DoNotOptimize(cpu.step());
  }
}
BENCHMARK(BM_PipelineStep);

void BM_PipelineInjection(benchmark::State& state) {
  const auto w = make_checksum(12, 2);
  const PipelineFaultSite site{LatchField::kExMemAlu, 7, 50};
  for (auto _ : state) benchmark::DoNotOptimize(pipeline_inject(w, site));
}
BENCHMARK(BM_PipelineInjection)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
