// E6 / Sec. III-B1 [21]: predict fault behaviour at large scale from
// small-scale training. [21] found boosting methods (AdaBoost / stochastic
// gradient boosting) more consistently accurate than MLP / naive Bayes /
// SVM because they keep learning from mispredicted samples. Here models
// train on registers of small-scale workloads and predict vulnerability on
// larger-scale instances of the same kernels.
#include <memory>

#include "bench/bench_util.hpp"
#include "src/arch/features.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/naive_bayes.hpp"
#include "src/ml/svm.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

ml::Dataset scale_dataset(std::size_t scale, std::uint64_t seed) {
  ml::Dataset all;
  lore::Rng rng(seed);
  for (const auto& w : standard_workloads(scale, 200 + scale)) {
    FaultInjector injector(w);
    const auto campaign = injector.campaign(350, FaultTarget::kRegister, rng.next_u64());
    const auto d = register_vulnerability_dataset(w, campaign, 0.15);
    for (std::size_t i = 0; i < d.size(); ++i) all.add(d.x.row(i), d.labels[i]);
  }
  return all;
}

void report() {
  bench::print_header("Scale-dependent fault-behaviour prediction",
                      "Train on scale-1 kernels, predict register vulnerability on "
                      "scale-4 instances (the [21] small-to-large setting).");
  const auto train = scale_dataset(1, 51);
  const auto test = scale_dataset(4, 52);

  struct Entry {
    std::string family;  // per [21]: boosting vs the simpler families
    std::unique_ptr<ml::Classifier> model;
  };
  std::vector<Entry> entries;
  entries.push_back({"simple", std::make_unique<ml::MlpClassifier>(
                                   ml::MlpConfig{.hidden = {16}, .epochs = 150})});
  entries.push_back({"simple", std::make_unique<ml::GaussianNaiveBayes>()});
  entries.push_back({"simple", std::make_unique<ml::LinearSvm>()});
  entries.push_back({"boosting", std::make_unique<ml::AdaBoostClassifier>()});
  entries.push_back({"boosting", std::make_unique<ml::GradientBoostingClassifier>(
                                     ml::GradientBoostingClassifierConfig{.num_rounds = 60})});

  Table t({"model", "family", "large_scale_accuracy", "f1"});
  double best_simple = 0.0, best_boost = 0.0;
  for (auto& e : entries) {
    e.model->fit(train.x, train.labels);
    const auto pred = e.model->predict_batch(test.x);
    const double acc = ml::accuracy(test.labels, pred);
    const double f1 = ml::binary_confusion(test.labels, pred).f1();
    if (e.family == "simple") best_simple = std::max(best_simple, acc);
    else best_boost = std::max(best_boost, acc);
    t.add_row({e.model->name(), e.family, fmt_sig(acc, 4), fmt_sig(f1, 4)});
  }
  bench::print_table(t);
  bench::print_note("best boosting acc: " + fmt_sig(best_boost, 4) +
                    " vs best simple acc: " + fmt_sig(best_simple, 4));
  bench::print_note(
      "Expected: ~90% large-scale accuracy from small-scale training, with the "
      "boosting family at least matching the simpler models ([21]).");
}

void BM_TrainGbdt(benchmark::State& state) {
  const auto train = scale_dataset(1, 53);
  for (auto _ : state) {
    ml::GradientBoostingClassifier gbdt(
        ml::GradientBoostingClassifierConfig{.num_rounds = 30});
    gbdt.fit(train.x, train.labels);
    benchmark::DoNotOptimize(gbdt);
  }
}
BENCHMARK(BM_TrainGbdt)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
