// E19 / Sec. III-B2 ([22],[23]): mining production error logs. A synthetic
// fleet trace (nodes with temperature/utilization/ECC telemetry and a hidden
// degradation process) stands in for the 6-month HPC logs of [22]; GBDT
// predicts upcoming node failures, and k-means surfaces the defective
// population without labels ([23]'s unsupervised pass).
#include "bench/bench_util.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/kmeans.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/naive_bayes.hpp"
#include "src/ml/svm.hpp"
#include "src/os/telemetry.hpp"

namespace {

using namespace lore;
using namespace lore::os;

void report() {
  bench::print_header("Error-log mining — node-failure prediction from telemetry",
                      "Fleet of 80 nodes x 240 epochs, 30% latently defective; "
                      "features: trailing-window temperature/utilization/CE stats; "
                      "label: uncorrected failure within the next 10 epochs.");
  const auto train_trace = generate_fleet_telemetry(
      FleetConfig{.nodes = 80, .epochs = 240, .defective_fraction = 0.3, .seed = 11});
  const auto test_trace = generate_fleet_telemetry(
      FleetConfig{.nodes = 80, .epochs = 240, .defective_fraction = 0.3, .seed = 12});
  const auto train = failure_prediction_dataset(train_trace, 12, 10);
  const auto test = failure_prediction_dataset(test_trace, 12, 10);

  Table t({"model", "auc", "accuracy"});
  auto eval = [&](const std::string& name, ml::Classifier& model) {
    model.fit(train.x, train.labels);
    std::vector<double> scores;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const auto p = model.predict_proba(test.x.row(i));
      scores.push_back(p.size() > 1 ? p[1] : 0.0);
    }
    t.add_row({name, fmt_sig(ml::roc_auc(test.labels, scores), 4),
               fmt_sig(ml::accuracy(test.labels, model.predict_batch(test.x)), 4)});
  };
  ml::GradientBoostingClassifier gbdt(ml::GradientBoostingClassifierConfig{.num_rounds = 80});
  ml::GaussianNaiveBayes nb;
  ml::LinearSvm svm;
  eval("gbdt [22]", gbdt);
  eval("naive-bayes", nb);
  eval("linear-svm", svm);
  bench::print_table(t);

  // Unsupervised pass: cluster end-of-trace node summaries.
  ml::Matrix x;
  std::vector<bool> had_failure(80, false);
  for (const auto& r : test_trace)
    if (r.failure) had_failure[r.node] = true;
  for (std::size_t node = 0; node < 80; ++node)
    x.push_row(telemetry_features(test_trace, node, 239, 80));
  ml::KMeans km(ml::KMeansConfig{.k = 2});
  km.fit(x);
  const auto assign = km.assign_batch(x);
  std::size_t agree = 0;
  for (std::size_t node = 0; node < 80; ++node)
    agree += (assign[node] == 1) == had_failure[node];
  const double purity = std::max(agree, 80 - agree) / 80.0;
  bench::print_note("k-means(2) cluster purity vs failure flag: " + fmt_sig(purity, 4));
  bench::print_note(
      "Expected ([22] shape): GBDT AUC at or above the simpler baselines and above "
      "0.8; the unsupervised clustering already separates most of the failing "
      "population (CE trend is the dominant symptom).");
}

void BM_TelemetryGeneration(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        generate_fleet_telemetry(FleetConfig{.nodes = 40, .epochs = 120}));
}
BENCHMARK(BM_TelemetryGeneration)->Unit(benchmark::kMillisecond);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto trace = generate_fleet_telemetry(FleetConfig{.nodes = 40, .epochs = 120});
  for (auto _ : state)
    benchmark::DoNotOptimize(telemetry_features(trace, 7, 100, 12));
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMicrosecond);

}  // namespace

LORE_BENCH_MAIN(report)
