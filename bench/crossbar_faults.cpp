// E21 / Sec. III-C1 [28]: efficient identification of critical faults in
// memristor crossbars. Paper numbers: a small NN predicts fault criticality
// with ~99 % accuracy; protecting only critical faults cuts the redundancy
// required for fault tolerance by ~93 %. The bench reproduces both
// quantities on LORE's crossbar accelerator.
#include "bench/bench_util.hpp"
#include "src/arch/crossbar.hpp"
#include "src/ml/metrics.hpp"

namespace {

using namespace lore;
using namespace lore::arch;

struct Mission {
  ml::MlpClassifier classifier{ml::MlpConfig{.hidden = {24, 16}, .epochs = 150}};
  ml::Matrix inputs;

  Mission() {
    lore::Rng rng(920);
    std::vector<std::vector<double>> centers(4, std::vector<double>(10));
    for (auto& c : centers)
      for (auto& v : c) v = rng.uniform(-1.0, 1.0);
    std::vector<int> labels;
    std::vector<double> row(10);
    for (int i = 0; i < 400; ++i) {
      const int cls = i % 4;
      for (std::size_t c = 0; c < 10; ++c)
        row[c] = centers[static_cast<std::size_t>(cls)][c] + rng.normal(0.0, 0.25);
      inputs.push_row(row);
      labels.push_back(cls);
    }
    classifier.fit(inputs, labels);
  }
};

/// Duplicate positive rows until classes balance (the standard fix for the
/// heavy benign-majority of crossbar faults).
ml::Dataset oversample_positives(const ml::Dataset& d) {
  ml::Dataset out = d;
  std::size_t pos = 0;
  for (int label : d.labels) pos += label;
  if (pos == 0 || pos * 2 >= d.size()) return out;
  const std::size_t copies = (d.size() - pos) / pos;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] != 1) continue;
    for (std::size_t c = 1; c < copies; ++c) out.add(d.x.row(i), 1);
  }
  return out;
}

void report() {
  bench::print_header("Memristor-crossbar fault criticality ([28])",
                      "4-class DNN on differential-conductance crossbars; stuck-at "
                      "cell faults; a small NN classifies criticality (>2% accuracy "
                      "impact) from fault features.");
  Mission m;
  CrossbarAccelerator accel(m.classifier.network());
  lore::Rng rng(921);

  const auto train = oversample_positives(crossbar_fault_dataset(
      accel, m.classifier.network(), m.inputs, 700, 0.02, rng));
  const auto test =
      crossbar_fault_dataset(accel, m.classifier.network(), m.inputs, 300, 0.02, rng);
  ml::MlpClassifier predictor(ml::MlpConfig{.hidden = {16}, .epochs = 300});
  predictor.fit(train.x, train.labels);
  const auto pred = predictor.predict_batch(test.x);
  const auto conf = ml::binary_confusion(test.labels, pred);
  const double acc = ml::accuracy(test.labels, pred);

  // Redundancy reduction: full protection backs up every cell; selective
  // protection backs up only cells the predictor flags (plus its misses are
  // the residual risk, reported as recall).
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < test.size(); ++i) flagged += pred[i] == 1;
  const double redundancy_fraction =
      static_cast<double>(flagged) / static_cast<double>(test.size());

  Table t({"metric", "value", "paper_reference"});
  t.add_row({"criticality prediction accuracy", fmt_sig(acc, 4), "~0.99"});
  t.add_row({"critical-fault recall", fmt_sig(conf.recall(), 4), "-"});
  t.add_row({"cells needing protection", fmt_sig(redundancy_fraction, 4), "-"});
  t.add_row({"redundancy reduction", fmt_sig(1.0 - redundancy_fraction, 4), "~0.93"});
  bench::print_table(t);
  bench::print_note(
      "Expected ([28] shape): high-90s prediction accuracy and a large redundancy "
      "cut — most stuck-at faults land on small-magnitude weights and never flip a "
      "prediction, so only a small critical minority needs backup columns.");
}

void BM_CrossbarInference(benchmark::State& state) {
  static Mission m;
  static CrossbarAccelerator accel(m.classifier.network());
  for (auto _ : state) benchmark::DoNotOptimize(accel.classify(m.inputs.row(0)));
}
BENCHMARK(BM_CrossbarInference)->Unit(benchmark::kMicrosecond);

void BM_FaultCriticality(benchmark::State& state) {
  static Mission m;
  static CrossbarAccelerator accel(m.classifier.network());
  lore::Rng rng(922);
  const auto fault = accel.random_fault(rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(fault_criticality(accel, fault, m.inputs));
}
BENCHMARK(BM_FaultCriticality)->Unit(benchmark::kMillisecond);

}  // namespace

LORE_BENCH_MAIN(report)
